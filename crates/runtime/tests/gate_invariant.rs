//! Property test: the gate's admission invariant under arbitrary
//! operation interleavings.
//!
//! The contract from §4.3 is admission-only control: an arrival is
//! admitted iff the actual load is below the current bound, and a
//! lowered bound never displaces holders — the population drains to the
//! new limit by normal departures. Proptest drives a [`ControlLoop`]
//! through arbitrary admit / complete / re-bound / tick sequences and
//! checks, after every step, that admitted − completed (the permits
//! actually held) matches the gate's accounting and never passes the
//! bound that was in force at admission time.

use alc_core::measure::PerfIndicator;
use alc_runtime::{AdmissionPolicy, AimdLaw, AimdParams, ControlLoop, Outcome, PaperLaw};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Try to enter the gate (shed if full).
    Admit,
    /// Finish a held unit of work (slot taken modulo the held count).
    Complete { slot: usize, abort: bool },
    /// Controller-style live bound change.
    SetBound(u32),
    /// Close the measurement window and let the law move the bound.
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Admit),
        3 => (any::<usize>(), any::<bool>())
            .prop_map(|(slot, abort)| Op::Complete { slot, abort }),
        1 => (0u32..6).prop_map(Op::SetBound),
        1 => Just(Op::Tick),
    ]
}

proptest! {
    #[test]
    fn admitted_minus_completed_never_exceeds_the_bound(
        initial_bound in 1u32..5,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let rt = ControlLoop::new(
            Box::new(AimdLaw::new(AimdParams {
                initial_bound,
                min_bound: 1,
                max_bound: 6,
                ..AimdParams::default()
            })),
            PerfIndicator::Throughput,
            AdmissionPolicy::Shed,
        );
        let mut held = Vec::new();
        for op in ops {
            match op {
                Op::Admit => {
                    let limit = rt.gate().limit();
                    let before = rt.gate().in_use();
                    match rt.admit() {
                        Some(permit) => {
                            // Admission happened strictly under the bound.
                            prop_assert!(before < limit,
                                "admitted at load {before} with bound {limit}");
                            held.push(permit);
                        }
                        None => prop_assert!(before >= limit,
                            "shed at load {before} under bound {limit}"),
                    }
                }
                Op::Complete { slot, abort } => {
                    if !held.is_empty() {
                        let permit = held.swap_remove(slot % held.len());
                        let outcome = if abort {
                            Outcome::Abort { conflicts: 1 }
                        } else {
                            Outcome::Commit { response_ms: 5.0, conflicts: 0 }
                        };
                        rt.complete(permit, outcome);
                    }
                }
                Op::SetBound(bound) => rt.gate().set_limit(bound),
                Op::Tick => {
                    let decision = rt.tick();
                    prop_assert_eq!(rt.gate().limit(), decision.bound);
                }
            }
            // admitted − completed is exactly the permits we hold, and the
            // gate's own accounting agrees after every interleaving step.
            prop_assert_eq!(rt.gate().in_use() as usize, held.len());
        }
    }
}

/// The same invariant under real thread interleavings: a fixed-bound
/// paper controller caps concurrency at 3, sixteen workers hammer the
/// loop, and the observed concurrent peak never passes the bound.
#[test]
fn concurrent_workers_never_exceed_the_bound() {
    use std::sync::atomic::{AtomicI32, Ordering};

    let rt = ControlLoop::new(
        Box::new(PaperLaw::new(Box::new(alc_core::controller::FixedBound::new(3)))),
        PerfIndicator::Throughput,
        AdmissionPolicy::Queue,
    );
    let concurrent = AtomicI32::new(0);
    let peak = AtomicI32::new(0);
    std::thread::scope(|s| {
        for _ in 0..16 {
            s.spawn(|| {
                for i in 0..50 {
                    let permit = rt.admit().expect("Queue policy never sheds");
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                    rt.complete(
                        permit,
                        Outcome::Commit {
                            response_ms: f64::from(i),
                            conflicts: 0,
                        },
                    );
                }
            });
        }
    });
    assert!(peak.load(Ordering::SeqCst) <= 3, "peak {peak:?} above bound 3");
    assert_eq!(rt.gate().in_use(), 0);
    assert_eq!(rt.gate().stats().total_admitted, 16 * 50);
    let d = rt.tick();
    assert_eq!(d.window.measurement.departures, 16 * 50);
}
