//! Allocation gate: the runtime's admit/complete/tick fast path must be
//! zero-allocation after warm-up.
//!
//! This test binary installs a counting global allocator and drives a
//! warmed-up [`ControlLoop`] through admit → complete cycles with
//! periodic ticks, exactly as an embedding server would. After warm-up,
//! *no* operation may touch the allocator: the gate admits by counter
//! arithmetic, telemetry accumulates into fixed-size P² marker arrays,
//! and the AIMD law is pure arithmetic. (The JSONL gate-log sink is the
//! documented exception — logging buys bytes with allocations — so the
//! measured loop runs without one.)
//!
//! Kept as its own integration-test binary so the global allocator
//! cannot race with unrelated tests, and built with `harness = false`:
//! libtest's runner thread lazily allocates its parking state the first
//! time it blocks waiting on a test, which intermittently lands inside
//! the measurement window. A plain `main` keeps the process truly
//! single-threaded, so the counter sees only the workload.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use alc_core::measure::PerfIndicator;
use alc_runtime::{AdmissionPolicy, AimdLaw, AimdParams, ControlLoop, Outcome};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One batch of server-shaped work: admit, "run" (pure arithmetic),
/// complete with a mix of commits and aborts, tick every `tick_every`
/// cycles. The bound stays far above 1 so `Queue` admissions never park
/// the thread.
fn churn(rt: &ControlLoop, ops: usize, tick_every: usize) {
    for i in 0..ops {
        let permit = rt.admit().expect("Queue policy never sheds");
        let response = 1.0 + (i * 31 % 89) as f64;
        let outcome = if i % 11 == 0 {
            Outcome::Abort {
                conflicts: (i % 3) as u64,
            }
        } else {
            Outcome::Commit {
                response_ms: response,
                conflicts: (i % 5 == 0) as u64,
            }
        };
        rt.complete(permit, outcome);
        if i % tick_every == tick_every - 1 {
            let d = rt.tick();
            assert!(d.bound >= 1);
        }
    }
}

fn main() {
    const WARMUP_OPS: usize = 10_000;
    const MEASURED_OPS: usize = 50_000;

    let rt = ControlLoop::new(
        Box::new(AimdLaw::new(AimdParams {
            initial_bound: 64,
            min_bound: 16,
            max_bound: 256,
            ..AimdParams::default()
        })),
        PerfIndicator::Throughput,
        AdmissionPolicy::Queue,
    );

    churn(&rt, WARMUP_OPS, 97);

    let before = allocations();
    churn(&rt, MEASURED_OPS, 97);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "admit/complete/tick fast path allocated {} times over {MEASURED_OPS} steady-state ops",
        after - before
    );
    println!("alloc_gate ok: admit/complete/tick fast path allocation-free");
}
