//! `alc-runtime` — an embeddable admission-control runtime, with the
//! simulator as its conformance harness.
//!
//! This crate carries the paper's control stack out of the simulator and
//! into a shape a real server can link: worker threads call
//! [`ControlLoop::admit`] around each unit of work and report how it
//! ended; a timer calls [`ControlLoop::tick`] once per measurement
//! interval; the loop's [`ControlLaw`] adjusts the MPL bound the gate
//! enforces. The pieces:
//!
//! * [`control`] — [`ControlLoop`], the thread-safe wall-clock shell,
//!   wrapped around [`LoopCore`], the deterministic event-time core that
//!   owns telemetry + law + logging and never reads a clock.
//! * [`law`] — the pure decision logic: [`ControlLaw`] over
//!   [`WindowSnapshot`]s, with [`PaperLaw`] running any `alc_core`
//!   controller unchanged, plus [`AimdLaw`] and [`RetryBudgetLaw`] as
//!   self-*-style alternatives.
//! * [`telemetry`] — [`TelemetryWindow`]: the simulator's own
//!   `IntervalSampler` plus allocation-free P² latency quantiles and
//!   shed counting.
//! * [`log`] — the JSONL gate-log format ([`JsonlSink`] writer,
//!   [`read_gate_log`] reader) over `alc_core::gatelog::GateEvent`.
//! * [`metrics`] — [`MetricsSnapshot`]: the loop's live state (gate
//!   occupancy, cumulative counters, last window with P² quantiles)
//!   flattened for export, with a byte-round-tripping JSONL form.
//! * [`replay`] — [`check_conformance`]: feed a recorded log back
//!   through a fresh [`LoopCore`] and require the decision sequence to
//!   match byte-for-byte.
//!
//! # Why the simulator is the conformance harness
//!
//! A controller's decisions are a pure function of its sampler's input
//! stream and harvest instants. The simulator records exactly that
//! stream (`Simulator::set_gate_log`), the JSONL format round-trips
//! every `f64` exactly, and [`LoopCore`] drives the *same* sampler and
//! controller code — so replaying a simulated scenario through this
//! crate must reproduce the simulation's decision sequence bit-for-bit.
//! The checked-in traces under `scenarios/traces/` pin that property in
//! CI: the simulator's validated behavior *is* the runtime's acceptance
//! test.

#![warn(missing_docs)]

pub mod control;
pub mod law;
pub mod log;
pub mod metrics;
pub mod replay;
pub mod telemetry;

pub use control::{AdmissionPolicy, AdmittedPermit, ControlLoop, Decision, LoopCore};
pub use law::{
    AimdLaw, AimdParams, ControlLaw, PaperLaw, RetryBudgetLaw, RetryBudgetParams, WindowSnapshot,
};
pub use log::{event_line, read_gate_log, write_gate_log, GateLogError, GateLogHeader, JsonlSink};
pub use metrics::{
    metrics_line, read_metrics_jsonl, write_metrics_jsonl, MetricsError, MetricsSnapshot,
};
pub use replay::{check_conformance, replay, Conformance};
pub use telemetry::{Outcome, TelemetryWindow};
