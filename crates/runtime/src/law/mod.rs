//! Control laws: pure decision logic mapping window telemetry to MPL
//! bounds.
//!
//! Everything in this directory is deterministic, clock-free, I/O-free
//! policy code — the same discipline `alc-core`'s `controller/` obeys,
//! enforced by the repo's suppression-free `purity` lint scope. The
//! real-time machinery (locks, clocks, threads) lives in the crate root
//! and calls in here with explicit event-time arguments.
//!
//! Three families implement [`ControlLaw`]:
//!
//! * [`PaperLaw`] — adapts any `alc_core` [`LoadController`] (Incremental
//!   Steps, Parabola Approximation, the hybrids, self-tuning loops,
//!   Tay/Iyer rules) unchanged. The decision sequence is a function of
//!   the [`Measurement`] alone, which is what makes simulator replay
//!   conformance exact.
//! * [`AimdLaw`] — additive-increase / multiplicative-decrease on an
//!   overload signal (abort ratio or tail latency), the classic
//!   congestion-avoidance shape used by self-* overload controllers.
//! * [`RetryBudgetLaw`] — retry-budget admission: completions earn retry
//!   credit, aborts spend it, and exhausting the budget triggers a
//!   multiplicative backoff.
//!
//! [`LoadController`]: alc_core::controller::LoadController
//! [`Measurement`]: alc_core::measure::Measurement

mod aimd;
mod paper;
mod retry;

pub use aimd::{AimdLaw, AimdParams};
pub use paper::PaperLaw;
pub use retry::{RetryBudgetLaw, RetryBudgetParams};

use alc_core::measure::Measurement;

/// One harvested telemetry window, as seen by a control law.
///
/// The embedded [`Measurement`] is produced by the same
/// `alc_core::sampler::IntervalSampler` the simulator uses; the extra
/// fields (latency quantiles, shed count, queue depth) are runtime-only
/// observations that never perturb the measurement, so paper controllers
/// driven through [`PaperLaw`] see byte-identical inputs in simulation
/// and in the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// The interval measurement (throughput, conflict ratio, restart
    /// rate, observed MPL, mean response time).
    pub measurement: Measurement,
    /// Median response time over the window, ms (0 when idle).
    pub p50_ms: f64,
    /// 95th-percentile response time over the window, ms (0 when idle).
    pub p95_ms: f64,
    /// 99th-percentile response time over the window, ms (0 when idle).
    pub p99_ms: f64,
    /// Admissions shed (rejected without queueing) during the window.
    pub shed: u64,
    /// Depth of the admission queue at harvest time.
    pub queue_depth: u32,
}

impl WindowSnapshot {
    /// A snapshot carrying only a measurement (quantiles and gate state
    /// zeroed) — what replay drivers construct from logged events.
    pub fn from_measurement(measurement: Measurement) -> Self {
        WindowSnapshot {
            measurement,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            shed: 0,
            queue_depth: 0,
        }
    }
}

/// A decision rule over telemetry windows: the runtime's generalization
/// of `alc_core`'s [`LoadController`], widened to see the full
/// [`WindowSnapshot`].
///
/// Implementations must be pure state machines: the bound returned by
/// [`ControlLaw::decide`] may depend only on the law's parameters, its
/// accumulated state, and the snapshots it has been shown.
///
/// [`LoadController`]: alc_core::controller::LoadController
pub trait ControlLaw: Send {
    /// Short identifier for reports and logs.
    fn name(&self) -> &'static str;

    /// Absorbs one window and returns the MPL bound to enforce next.
    fn decide(&mut self, window: &WindowSnapshot) -> u32;

    /// The bound currently in force (last decision, or the initial
    /// bound before any).
    fn current_bound(&self) -> u32;

    /// Returns to the initial state.
    fn reset(&mut self);
}
