//! Additive-increase / multiplicative-decrease admission control.

use super::{ControlLaw, WindowSnapshot};

/// Parameters of [`AimdLaw`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AimdParams {
    /// Bound before the first decision.
    pub initial_bound: u32,
    /// Floor of the bound.
    pub min_bound: u32,
    /// Ceiling of the bound.
    pub max_bound: u32,
    /// Additive step applied per healthy window.
    pub increase: u32,
    /// Multiplicative factor applied per overloaded window (in `(0, 1)`).
    pub decrease: f64,
    /// Overload when the window's abort ratio exceeds this.
    pub abort_ratio_high: f64,
    /// Overload when the window's p95 response time exceeds this, ms
    /// (`0.0` disables the latency signal).
    pub latency_target_ms: f64,
}

impl Default for AimdParams {
    fn default() -> Self {
        AimdParams {
            initial_bound: 8,
            min_bound: 1,
            max_bound: 1024,
            increase: 1,
            decrease: 0.5,
            abort_ratio_high: 0.3,
            latency_target_ms: 0.0,
        }
    }
}

/// The classic congestion-avoidance shape applied to MPL control: grow
/// the bound by a constant while the system looks healthy, cut it by a
/// factor the moment an overload signal fires.
///
/// Compared to the paper's hill-climbing controllers this law never
/// models the load–throughput function — it only reacts to distress
/// (restart ratio, tail latency), which makes it robust to noisy
/// throughput but systematically conservative near the optimum. It is
/// the "self-* overload control" baseline the runtime offers next to the
/// Heiss–Wagner controllers.
#[derive(Debug, Clone)]
pub struct AimdLaw {
    params: AimdParams,
    bound: u32,
}

impl AimdLaw {
    /// Creates the law at its initial bound.
    pub fn new(params: AimdParams) -> Self {
        assert!(params.min_bound >= 1, "min_bound must be at least 1");
        assert!(
            params.min_bound <= params.max_bound,
            "min_bound must not exceed max_bound"
        );
        assert!(
            params.decrease > 0.0 && params.decrease < 1.0,
            "decrease must be in (0, 1)"
        );
        let bound = params.initial_bound.clamp(params.min_bound, params.max_bound);
        AimdLaw { params, bound }
    }

    fn overloaded(&self, window: &WindowSnapshot) -> bool {
        let m = &window.measurement;
        m.abort_ratio() > self.params.abort_ratio_high
            || (self.params.latency_target_ms > 0.0 && window.p95_ms > self.params.latency_target_ms)
    }
}

impl ControlLaw for AimdLaw {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn decide(&mut self, window: &WindowSnapshot) -> u32 {
        let m = &window.measurement;
        if m.departures == 0 && m.aborts == 0 {
            // Starved window: no evidence either way — hold the bound.
            return self.bound;
        }
        self.bound = if self.overloaded(window) {
            let cut = (f64::from(self.bound) * self.params.decrease).floor() as u32;
            cut.clamp(self.params.min_bound, self.params.max_bound)
        } else {
            self.bound
                .saturating_add(self.params.increase)
                .clamp(self.params.min_bound, self.params.max_bound)
        };
        self.bound
    }

    fn current_bound(&self) -> u32 {
        self.bound
    }

    fn reset(&mut self) {
        self.bound = self
            .params
            .initial_bound
            .clamp(self.params.min_bound, self.params.max_bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alc_core::measure::Measurement;

    fn window(departures: u64, aborts: u64, p95_ms: f64) -> WindowSnapshot {
        let mut w = WindowSnapshot::from_measurement(Measurement {
            departures,
            aborts,
            ..Measurement::basic(0.0, 1000.0, 10.0, 100.0)
        });
        w.p95_ms = p95_ms;
        w
    }

    #[test]
    fn grows_additively_while_healthy() {
        let mut law = AimdLaw::new(AimdParams {
            initial_bound: 4,
            increase: 2,
            ..AimdParams::default()
        });
        assert_eq!(law.decide(&window(100, 0, 10.0)), 6);
        assert_eq!(law.decide(&window(100, 5, 10.0)), 8);
        assert_eq!(law.current_bound(), 8);
    }

    #[test]
    fn cuts_multiplicatively_on_abort_storm() {
        let mut law = AimdLaw::new(AimdParams {
            initial_bound: 40,
            decrease: 0.5,
            abort_ratio_high: 0.3,
            ..AimdParams::default()
        });
        // 60 aborts on 100 departures: ratio 0.375 > 0.3.
        assert_eq!(law.decide(&window(100, 60, 10.0)), 20);
        assert_eq!(law.decide(&window(100, 60, 10.0)), 10);
    }

    #[test]
    fn latency_signal_fires_only_when_enabled() {
        let mut off = AimdLaw::new(AimdParams {
            initial_bound: 10,
            latency_target_ms: 0.0,
            ..AimdParams::default()
        });
        assert_eq!(off.decide(&window(100, 0, 5000.0)), 11);
        let mut on = AimdLaw::new(AimdParams {
            initial_bound: 10,
            latency_target_ms: 1000.0,
            ..AimdParams::default()
        });
        assert_eq!(on.decide(&window(100, 0, 5000.0)), 5);
    }

    #[test]
    fn holds_on_starved_windows_and_respects_caps() {
        let mut law = AimdLaw::new(AimdParams {
            initial_bound: 3,
            min_bound: 2,
            max_bound: 4,
            ..AimdParams::default()
        });
        assert_eq!(law.decide(&window(0, 0, 0.0)), 3);
        assert_eq!(law.decide(&window(10, 0, 0.0)), 4);
        assert_eq!(law.decide(&window(10, 0, 0.0)), 4);
        assert_eq!(law.decide(&window(10, 9, 0.0)), 2);
        assert_eq!(law.decide(&window(10, 9, 0.0)), 2);
        law.reset();
        assert_eq!(law.current_bound(), 3);
    }
}
