//! Adapter running the paper's controllers unchanged as a [`ControlLaw`].

use alc_core::controller::LoadController;

use super::{ControlLaw, WindowSnapshot};

/// Wraps any `alc_core` [`LoadController`] as a [`ControlLaw`].
///
/// The adapter forwards only the snapshot's measurement, exactly as the
/// simulator feeds the controller — so a controller object driven
/// through the runtime reproduces its simulated decision sequence
/// bit-for-bit on the same event stream (the conformance property the
/// replay harness pins).
pub struct PaperLaw {
    inner: Box<dyn LoadController>,
}

impl PaperLaw {
    /// Adopts a controller.
    pub fn new(inner: Box<dyn LoadController>) -> Self {
        PaperLaw { inner }
    }

    /// Read access to the wrapped controller.
    pub fn controller(&self) -> &dyn LoadController {
        self.inner.as_ref()
    }
}

impl ControlLaw for PaperLaw {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn decide(&mut self, window: &WindowSnapshot) -> u32 {
        self.inner.update(&window.measurement)
    }

    fn current_bound(&self) -> u32 {
        self.inner.current_bound()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alc_core::controller::{IncrementalSteps, IsParams};
    use alc_core::measure::Measurement;

    #[test]
    fn forwards_measurements_and_name() {
        let params = IsParams {
            initial_bound: 10,
            min_bound: 1,
            max_bound: 100,
            ..IsParams::default()
        };
        let mut reference = IncrementalSteps::new(params);
        let mut law = PaperLaw::new(Box::new(IncrementalSteps::new(params)));
        assert_eq!(law.name(), reference.name());
        assert_eq!(law.current_bound(), reference.current_bound());
        for step in 0..12 {
            let m = Measurement::basic(
                f64::from(step) * 1000.0,
                1000.0,
                f64::from(reference.current_bound()),
                f64::from(reference.current_bound()),
            );
            let expect = reference.update(&m);
            let got = law.decide(&WindowSnapshot::from_measurement(m));
            assert_eq!(got, expect, "step {step}");
        }
        law.reset();
        reference.reset();
        assert_eq!(law.current_bound(), reference.current_bound());
    }
}
