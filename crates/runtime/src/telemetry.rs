//! Windowed telemetry: the runtime's measurement front-end.
//!
//! [`TelemetryWindow`] wraps the *same* `alc_core::sampler::IntervalSampler`
//! the simulator drives — that sharing is what makes replay conformance
//! exact: identical event streams produce identical [`Measurement`]s
//! because they run through identical code. On top of the sampler it
//! keeps runtime-only observations per window — response-time quantiles
//! (P² streaming estimates, allocation-free) and a shed counter — which
//! are reported in the [`WindowSnapshot`] but never perturb the
//! measurement.
//!
//! [`Measurement`]: alc_core::measure::Measurement

use alc_core::measure::PerfIndicator;
use alc_core::sampler::IntervalSampler;

use crate::law::WindowSnapshot;

/// How a unit of work admitted through the gate ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Committed with the given response time and the conflicts observed
    /// at (successful) certification.
    Commit {
        /// Submission → commit response time, ms.
        response_ms: f64,
        /// Conflicts observed while still committing.
        conflicts: u64,
    },
    /// Aborted (the caller will retry or give up) due to conflicts.
    Abort {
        /// Conflicts that caused the abort.
        conflicts: u64,
    },
}

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers track the target quantile without storing
/// observations — deterministic, allocation-free, O(1) per observation.
#[derive(Debug, Clone)]
struct P2Quantile {
    p: f64,
    count: usize,
    /// Marker heights (first `count` entries sorted while `count < 5`).
    q: [f64; 5],
    /// Actual marker positions, 1-based.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
}

impl P2Quantile {
    fn new(p: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&p));
        P2Quantile {
            p,
            count: 0,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    fn reset(&mut self) {
        *self = P2Quantile::new(self.p);
    }

    fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Insertion sort into the warm-up buffer.
            let mut i = self.count;
            while i > 0 && self.q[i - 1] > x {
                self.q[i] = self.q[i - 1];
                i -= 1;
            }
            self.q[i] = x;
            self.count += 1;
            return;
        }
        // Locate the cell and stretch the extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.q[k + 1] {
                k += 1;
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        self.count += 1;
        // Adjust the three interior markers toward their desired
        // positions (parabolic when it keeps the heights monotone,
        // linear otherwise).
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.q[i]
                    + d / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + d) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - d) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    let j = (i as f64 + d) as usize;
                    self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
                };
                self.n[i] += d;
            }
        }
    }

    /// The current estimate (exact for fewer than five observations,
    /// `0.0` when empty).
    fn estimate(&self) -> f64 {
        match self.count {
            0 => 0.0,
            c if c < 5 => {
                // Exact small-sample quantile by rank.
                let rank = ((self.p * c as f64).ceil() as usize).clamp(1, c);
                self.q[rank - 1]
            }
            _ => self.q[2],
        }
    }
}

/// Accumulates one telemetry window: the shared interval sampler plus
/// runtime-only quantile and shed tracking.
#[derive(Debug, Clone)]
pub struct TelemetryWindow {
    sampler: IntervalSampler,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    shed: u64,
}

impl TelemetryWindow {
    /// Creates a window starting at `now_ms` with `mpl` units in flight.
    pub fn new(indicator: PerfIndicator, now_ms: f64, mpl: u32) -> Self {
        TelemetryWindow {
            sampler: IntervalSampler::new(indicator, now_ms, mpl),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            shed: 0,
        }
    }

    /// Records that the in-system population changed.
    pub fn on_mpl_change(&mut self, now_ms: f64, mpl: u32) {
        self.sampler.on_mpl_change(now_ms, mpl);
    }

    /// Records a commit. Mirrors the simulator's sampler call order
    /// (conflicts, then the commit) so replayed streams stay identical.
    pub fn on_commit(&mut self, response_ms: f64, conflicts: u64) {
        self.sampler.on_conflicts(conflicts);
        self.sampler.on_commit(response_ms);
        self.p50.observe(response_ms);
        self.p95.observe(response_ms);
        self.p99.observe(response_ms);
    }

    /// Records an abort caused by `conflicts` conflicts.
    pub fn on_abort(&mut self, conflicts: u64) {
        self.sampler.on_abort(conflicts);
    }

    /// Records an admission rejected without queueing.
    pub fn on_shed(&mut self) {
        self.shed += 1;
    }

    /// Closes the window at `now_ms`, returning its snapshot and
    /// starting the next window.
    pub fn harvest(&mut self, now_ms: f64, queue_depth: u32) -> WindowSnapshot {
        let snapshot = WindowSnapshot {
            measurement: self.sampler.harvest(now_ms),
            p50_ms: self.p50.estimate(),
            p95_ms: self.p95.estimate(),
            p99_ms: self.p99.estimate(),
            shed: self.shed,
            queue_depth,
        };
        self.p50.reset();
        self.p95.reset();
        self.p99.reset();
        self.shed = 0;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_is_exact_for_small_samples() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), 0.0);
        q.observe(30.0);
        q.observe(10.0);
        q.observe(20.0);
        assert_eq!(q.estimate(), 20.0);
    }

    #[test]
    fn p2_tracks_quantiles_of_a_uniform_ramp() {
        let mut p50 = P2Quantile::new(0.5);
        let mut p95 = P2Quantile::new(0.95);
        // Deterministic shuffled-ish ramp: 1..=999 visited in stride-7
        // order (7 and 999 are coprime, so every value appears once).
        let mut v = 1u32;
        for _ in 0..999 {
            p50.observe(f64::from(v));
            p95.observe(f64::from(v));
            v = (v + 7 - 1) % 999 + 1;
        }
        assert!((p50.estimate() - 500.0).abs() < 25.0, "{}", p50.estimate());
        assert!((p95.estimate() - 950.0).abs() < 35.0, "{}", p95.estimate());
    }

    #[test]
    fn window_matches_a_raw_sampler_and_resets_extras() {
        let indicator = PerfIndicator::Throughput;
        let mut w = TelemetryWindow::new(indicator, 0.0, 0);
        let mut raw = IntervalSampler::new(indicator, 0.0, 0);
        w.on_mpl_change(10.0, 4);
        raw.on_mpl_change(10.0, 4);
        w.on_commit(25.0, 2);
        raw.on_conflicts(2);
        raw.on_commit(25.0);
        w.on_abort(3);
        raw.on_abort(3);
        w.on_shed();
        let snap = w.harvest(1000.0, 5);
        let m = raw.harvest(1000.0);
        assert_eq!(snap.measurement, m);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.queue_depth, 5);
        assert_eq!(snap.p50_ms, 25.0);
        // Next window starts clean.
        let next = w.harvest(2000.0, 0);
        assert_eq!(next.shed, 0);
        assert_eq!(next.p50_ms, 0.0);
    }
}
