//! Replay: feed a recorded gate log back through the runtime's control
//! core and compare decision sequences.
//!
//! A controller's decisions are a pure function of the sampler input
//! stream plus the harvest instants — both of which the gate log
//! captures. Replaying a log through a freshly built [`LoopCore`] with
//! an identically constructed law must therefore reproduce every
//! recorded [`GateEvent::Decision`] *byte-identically* (timestamps
//! round-trip exactly through the JSONL format). The simulator records
//! such logs via `Simulator::set_gate_log`, which turns every scenario
//! spec into a replayable acceptance test for this crate: if the runtime
//! core drifts from the simulated control stack by even one rounding
//! mode, the conformance pin snaps.

use alc_core::gatelog::GateEvent;
use alc_core::measure::PerfIndicator;

use crate::control::LoopCore;
use crate::law::ControlLaw;
use crate::log::event_line;

/// The result of replaying a log against a law.
#[derive(Debug, Clone, PartialEq)]
pub struct Conformance {
    /// Decision events found in the log, in order.
    pub recorded: Vec<GateEvent>,
    /// Decision events the replayed law produced, in order.
    pub replayed: Vec<GateEvent>,
    /// Index of the first differing decision (`None` when the sequences
    /// are identical, including their lengths).
    pub first_divergence: Option<usize>,
}

impl Conformance {
    /// Whether the replay reproduced the log exactly.
    pub fn is_identical(&self) -> bool {
        self.first_divergence.is_none()
    }

    /// The recorded and replayed decision sequences rendered as JSONL
    /// lines — the byte-level artifact the conformance pin compares.
    pub fn decision_lines(&self) -> (Vec<String>, Vec<String>) {
        (
            self.recorded.iter().map(event_line).collect(),
            self.replayed.iter().map(event_line).collect(),
        )
    }
}

/// Replays `events` through a fresh control core driving `law`,
/// returning the decisions the law produced at each recorded harvest.
///
/// The log's non-decision events feed the telemetry window exactly as
/// the original driver fed its sampler; each recorded decision triggers
/// a harvest at its timestamp. The recorded bound is ignored — the law
/// re-derives it.
pub fn replay(
    events: &[GateEvent],
    law: Box<dyn ControlLaw>,
    indicator: PerfIndicator,
) -> Vec<GateEvent> {
    let mut core = LoopCore::new(law, indicator);
    let mut decisions = Vec::new();
    for event in events {
        match *event {
            GateEvent::Mpl { at_ms, in_system } => core.on_mpl(at_ms, in_system),
            GateEvent::Commit {
                at_ms,
                response_ms,
                conflicts,
            } => core.on_commit(at_ms, response_ms, conflicts),
            GateEvent::Abort { at_ms, conflicts } => core.on_abort(at_ms, conflicts),
            GateEvent::Decision { at_ms, .. } => {
                let d = core.harvest(at_ms, 0);
                decisions.push(GateEvent::Decision {
                    at_ms,
                    bound: d.bound,
                });
            }
        }
    }
    decisions
}

/// Replays the log and lines its decisions up against the recorded ones.
pub fn check_conformance(
    events: &[GateEvent],
    law: Box<dyn ControlLaw>,
    indicator: PerfIndicator,
) -> Conformance {
    let recorded: Vec<GateEvent> = events
        .iter()
        .filter(|e| matches!(e, GateEvent::Decision { .. }))
        .cloned()
        .collect();
    let replayed = replay(events, law, indicator);
    let first_divergence = recorded
        .iter()
        .zip(&replayed)
        .position(|(a, b)| a != b)
        .or_else(|| {
            (recorded.len() != replayed.len()).then(|| recorded.len().min(replayed.len()))
        });
    Conformance {
        recorded,
        replayed,
        first_divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::law::{AimdLaw, AimdParams, PaperLaw};
    use alc_core::controller::{IncrementalSteps, IsParams, LoadController};
    use alc_core::sampler::IntervalSampler;

    /// Synthesizes a log the way a driver would: feed a sampler, harvest
    /// at fixed intervals, record the controller's decisions.
    fn synthetic_log(params: IsParams) -> Vec<GateEvent> {
        let indicator = PerfIndicator::Throughput;
        let mut sampler = IntervalSampler::new(indicator, 0.0, 0);
        let mut ctrl = IncrementalSteps::new(params);
        let mut events = Vec::new();
        let mut t = 0.0;
        // A deterministic little workload: population follows the bound,
        // throughput grows with it (so IS keeps climbing), with some
        // conflicts and an occasional abort sprinkled in.
        for step in 0..30u32 {
            let bound = ctrl.current_bound();
            let mpl = bound.min(step + 1);
            t += 10.0;
            sampler.on_mpl_change(t, mpl);
            events.push(GateEvent::Mpl {
                at_ms: t,
                in_system: mpl,
            });
            for k in 0..mpl.min(20) {
                t += 3.0;
                let response = 40.0 + f64::from(k) * 1.75;
                let conflicts = u64::from(k % 3 == 0);
                sampler.on_conflicts(conflicts);
                sampler.on_commit(response);
                events.push(GateEvent::Commit {
                    at_ms: t,
                    response_ms: response,
                    conflicts,
                });
            }
            if step % 7 == 3 {
                t += 1.0;
                sampler.on_abort(2);
                events.push(GateEvent::Abort { at_ms: t, conflicts: 2 });
            }
            t = f64::from(step + 1) * 500.0;
            let m = sampler.harvest(t);
            let bound = ctrl.update(&m);
            events.push(GateEvent::Decision { at_ms: t, bound });
        }
        events
    }

    fn is_params() -> IsParams {
        IsParams {
            initial_bound: 4,
            min_bound: 1,
            max_bound: 64,
            ..IsParams::default()
        }
    }

    #[test]
    fn replay_reproduces_a_synthetic_log_byte_identically() {
        let events = synthetic_log(is_params());
        let law = Box::new(PaperLaw::new(Box::new(IncrementalSteps::new(is_params()))));
        let c = check_conformance(&events, law, PerfIndicator::Throughput);
        assert!(c.is_identical(), "diverged at {:?}", c.first_divergence);
        assert_eq!(c.recorded.len(), 30);
        let (rec, rep) = c.decision_lines();
        assert_eq!(rec, rep);
    }

    #[test]
    fn a_different_law_diverges_and_is_reported() {
        let events = synthetic_log(is_params());
        let law = Box::new(AimdLaw::new(AimdParams::default()));
        let c = check_conformance(&events, law, PerfIndicator::Throughput);
        assert!(!c.is_identical());
        assert!(c.first_divergence.expect("diverges") < c.recorded.len());
    }

    #[test]
    fn a_tampered_decision_is_caught() {
        let mut events = synthetic_log(is_params());
        let last_decision = events
            .iter()
            .rposition(|e| matches!(e, GateEvent::Decision { .. }))
            .expect("log has decisions");
        if let GateEvent::Decision { bound, .. } = &mut events[last_decision] {
            *bound += 1;
        }
        let law = Box::new(PaperLaw::new(Box::new(IncrementalSteps::new(is_params()))));
        let c = check_conformance(&events, law, PerfIndicator::Throughput);
        assert_eq!(c.first_divergence, Some(c.recorded.len() - 1));
    }
}
