//! Runtime metrics snapshots and their JSONL export.
//!
//! [`ControlLoop::metrics`](crate::ControlLoop::metrics) flattens the
//! loop's live state — gate occupancy, cumulative outcome counters, and
//! the last harvested window (P² latency quantiles included) — into one
//! [`MetricsSnapshot`]. The JSONL form mirrors the gate-log format
//! (`log.rs`): one externally-tagged object per line, every `f64`
//! round-tripping exactly through the workspace shim's
//! shortest-representation formatting, so an exported series reads back
//! equal to what was written.

use std::io::{self, BufRead, Write};

use serde::{Deserialize, Serialize};

/// One flattened observation of a running [`ControlLoop`].
///
/// Cumulative counters (`commits`, `aborts`, `sheds`, `decisions`)
/// count since construction; the `window_*` and quantile fields carry
/// the last harvested window and are zero before the first tick.
///
/// [`ControlLoop`]: crate::ControlLoop
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Snapshot time, ms since the loop's epoch.
    pub at_ms: f64,
    /// The MPL bound currently enforced by the gate.
    pub bound: u32,
    /// Permits currently held.
    pub in_use: u32,
    /// Arrivals currently queued at the gate.
    pub waiting: u32,
    /// Commits reported since construction.
    pub commits: u64,
    /// Aborts reported since construction.
    pub aborts: u64,
    /// Arrivals shed since construction.
    pub sheds: u64,
    /// Harvest decisions taken since construction.
    pub decisions: u64,
    /// Committed transactions in the last harvested window.
    pub window_departures: u64,
    /// Aborts in the last harvested window.
    pub window_aborts: u64,
    /// Arrivals shed during the last harvested window.
    pub window_shed: u64,
    /// Time-averaged concurrency over the last window.
    pub observed_mpl: f64,
    /// Mean response time of the last window's commits, ms.
    pub mean_response_ms: f64,
    /// P² median response time of the last window, ms.
    pub p50_ms: f64,
    /// P² 95th-percentile response time of the last window, ms.
    pub p95_ms: f64,
    /// P² 99th-percentile response time of the last window, ms.
    pub p99_ms: f64,
    /// Gate queue depth at the last harvest.
    pub queue_depth: u32,
}

/// A problem reading a metrics JSONL stream.
#[derive(Debug)]
pub enum MetricsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is not a valid snapshot (1-based line number and
    /// message).
    Parse(usize, String),
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::Io(e) => write!(f, "metrics I/O error: {e}"),
            MetricsError::Parse(line, msg) => write!(f, "metrics line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MetricsError {}

impl From<io::Error> for MetricsError {
    fn from(e: io::Error) -> Self {
        MetricsError::Io(e)
    }
}

/// Renders one snapshot as its JSONL line (without the newline).
pub fn metrics_line(snapshot: &MetricsSnapshot) -> String {
    serde_json::to_string(snapshot).unwrap_or_else(|_| String::from("null"))
}

/// Writes a snapshot series to `w`, one JSONL line each.
pub fn write_metrics_jsonl<W: Write>(
    mut w: W,
    snapshots: &[MetricsSnapshot],
) -> io::Result<()> {
    for s in snapshots {
        writeln!(w, "{}", metrics_line(s))?;
    }
    Ok(())
}

/// Reads a snapshot series back, in order. Blank lines are skipped.
pub fn read_metrics_jsonl<R: BufRead>(r: R) -> Result<Vec<MetricsSnapshot>, MetricsError> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value: serde::Value = serde_json::from_str(trimmed)
            .map_err(|e| MetricsError::Parse(idx + 1, e.to_string()))?;
        out.push(
            MetricsSnapshot::from_value(&value)
                .map_err(|e| MetricsError::Parse(idx + 1, e.to_string()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MetricsSnapshot> {
        vec![
            MetricsSnapshot {
                at_ms: 0.0,
                bound: 4,
                in_use: 0,
                waiting: 0,
                commits: 0,
                aborts: 0,
                sheds: 0,
                decisions: 0,
                window_departures: 0,
                window_aborts: 0,
                window_shed: 0,
                observed_mpl: 0.0,
                mean_response_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                queue_depth: 0,
            },
            MetricsSnapshot {
                at_ms: 2000.125,
                bound: 7,
                in_use: 5,
                waiting: 2,
                commits: 341,
                aborts: 12,
                sheds: 3,
                decisions: 1,
                window_departures: 341,
                window_aborts: 12,
                window_shed: 3,
                observed_mpl: 4.833333333333333,
                mean_response_ms: 18.700000000000003,
                p50_ms: 14.5,
                p95_ms: 61.25,
                p99_ms: 90.0,
                queue_depth: 2,
            },
        ]
    }

    #[test]
    fn metrics_jsonl_round_trips_bytes() {
        let series = sample();
        let mut buf = Vec::new();
        write_metrics_jsonl(&mut buf, &series).expect("write");
        let back = read_metrics_jsonl(io::BufReader::new(&buf[..])).expect("read");
        assert_eq!(back, series);
        let mut again = Vec::new();
        write_metrics_jsonl(&mut again, &back).expect("rewrite");
        assert_eq!(buf, again);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "\nnot json\n";
        let err = read_metrics_jsonl(io::BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            MetricsError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
