//! JSONL gate logs: the on-disk form of [`GateEvent`] streams.
//!
//! A gate-log file is line-oriented: an optional first line
//! `{"Header": {...}}` describing where the log came from, then one
//! externally-tagged [`GateEvent`] per line (`{"Mpl": {...}}`,
//! `{"Commit": {...}}`, ...). The format is append-friendly (a crashed
//! writer loses at most its final partial line) and exactly
//! round-trips every `f64` through the workspace shim's
//! shortest-representation formatting — the property the byte-identical
//! conformance pin rests on.

use std::io::{self, BufRead, Write};

use alc_core::gatelog::{GateEvent, GateLogSink};
use serde::{Deserialize, Serialize, Value};

/// Provenance of a captured log, written as the file's first line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateLogHeader {
    /// Scenario name the log was captured from ("" for ad-hoc logs).
    pub scenario: String,
    /// Variant label within the scenario ("" for the implicit variant).
    pub variant: String,
    /// Replication index.
    pub replication: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Whether the scenario's quick (CI-scale) overrides were applied.
    pub quick: bool,
}

/// A problem reading a gate log.
#[derive(Debug)]
pub enum GateLogError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is not valid JSON or not a known event (1-based line
    /// number and message).
    Parse(usize, String),
}

impl std::fmt::Display for GateLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateLogError::Io(e) => write!(f, "gate log I/O error: {e}"),
            GateLogError::Parse(line, msg) => write!(f, "gate log line {line}: {msg}"),
        }
    }
}

impl std::error::Error for GateLogError {}

impl From<io::Error> for GateLogError {
    fn from(e: io::Error) -> Self {
        GateLogError::Io(e)
    }
}

/// Renders one event as its JSONL line (without the newline). This is
/// the canonical serialization the conformance pin compares.
pub fn event_line(event: &GateEvent) -> String {
    serde_json::to_string(event).unwrap_or_else(|_| String::from("null"))
}

fn header_line(header: &GateLogHeader) -> String {
    let map = vec![("Header".to_string(), header.to_value())];
    serde_json::to_string(&Value::Map(map)).unwrap_or_else(|_| String::from("null"))
}

/// Writes a complete log (header + events) to `w`.
pub fn write_gate_log<W: Write>(
    mut w: W,
    header: &GateLogHeader,
    events: &[GateEvent],
) -> io::Result<()> {
    writeln!(w, "{}", header_line(header))?;
    for e in events {
        writeln!(w, "{}", event_line(e))?;
    }
    Ok(())
}

/// Reads a log: the header (if the first line carries one) and every
/// event, in order.
pub fn read_gate_log<R: BufRead>(
    r: R,
) -> Result<(Option<GateLogHeader>, Vec<GateEvent>), GateLogError> {
    let mut header = None;
    let mut events = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(trimmed)
            .map_err(|e| GateLogError::Parse(idx + 1, e.to_string()))?;
        if idx == 0 {
            if let Some(h) = value.get("Header") {
                header = Some(
                    GateLogHeader::from_value(h)
                        .map_err(|e| GateLogError::Parse(idx + 1, e.to_string()))?,
                );
                continue;
            }
        }
        events.push(
            GateEvent::from_value(&value)
                .map_err(|e| GateLogError::Parse(idx + 1, e.to_string()))?,
        );
    }
    Ok((header, events))
}

/// A [`GateLogSink`] streaming each event to a writer as one JSONL line.
///
/// Buffer the writer (`BufWriter`) for hot-path use; `into_inner`
/// flushes and returns it.
pub struct JsonlSink<W: Write + Send> {
    w: W,
    /// First write error, kept so a lossy log is detectable after the run.
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer, emitting `header` first.
    pub fn new(mut w: W, header: &GateLogHeader) -> io::Result<Self> {
        writeln!(w, "{}", header_line(header))?;
        Ok(JsonlSink { w, error: None })
    }

    /// Wraps a writer without a header line (ad-hoc logs).
    pub fn headerless(w: W) -> Self {
        JsonlSink { w, error: None }
    }

    /// Flushes and returns the writer, or the first error any write hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write + Send> GateLogSink for JsonlSink<W> {
    fn record(&mut self, event: &GateEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.w, "{}", event_line(event)) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<GateEvent> {
        vec![
            GateEvent::Mpl {
                at_ms: 0.5,
                in_system: 1,
            },
            GateEvent::Commit {
                at_ms: 123.456,
                response_ms: 78.90000000000003,
                conflicts: 1,
            },
            GateEvent::Abort {
                at_ms: 130.0,
                conflicts: 4,
            },
            GateEvent::Decision {
                at_ms: 1000.0,
                bound: 9,
            },
        ]
    }

    fn sample_header() -> GateLogHeader {
        GateLogHeader {
            scenario: "jump".to_string(),
            variant: "is".to_string(),
            replication: 0,
            seed: 42,
            quick: true,
        }
    }

    #[test]
    fn log_round_trips_bytes() {
        let header = sample_header();
        let events = sample_events();
        let mut buf = Vec::new();
        write_gate_log(&mut buf, &header, &events).expect("write");
        let (h, back) = read_gate_log(io::BufReader::new(&buf[..])).expect("read");
        assert_eq!(h, Some(header.clone()));
        assert_eq!(back, events);
        // Re-serializing reproduces the file byte-for-byte.
        let mut again = Vec::new();
        write_gate_log(&mut again, &header, &back).expect("rewrite");
        assert_eq!(buf, again);
    }

    #[test]
    fn jsonl_sink_streams_the_same_bytes() {
        let header = sample_header();
        let events = sample_events();
        let mut whole = Vec::new();
        write_gate_log(&mut whole, &header, &events).expect("write");
        let mut sink = JsonlSink::new(Vec::new(), &header).expect("sink");
        for e in &events {
            sink.record(e);
        }
        assert_eq!(sink.finish().expect("finish"), whole);
    }

    #[test]
    fn headerless_logs_read_back() {
        let events = sample_events();
        let mut sink = JsonlSink::headerless(Vec::new());
        for e in &events {
            sink.record(e);
        }
        let buf = sink.finish().expect("finish");
        let (h, back) = read_gate_log(io::BufReader::new(&buf[..])).expect("read");
        assert_eq!(h, None);
        assert_eq!(back, events);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "{\"Mpl\": {\"at_ms\": 1.0, \"in_system\": 2}}\nnot json\n";
        let err = read_gate_log(io::BufReader::new(text.as_bytes())).unwrap_err();
        match err {
            GateLogError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
