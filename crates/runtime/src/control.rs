//! The runtime control loop: a deterministic event-time core inside a
//! thread-safe wall-clock shell.
//!
//! The split is the crate's load-bearing design decision:
//!
//! * [`LoopCore`] is the whole control stack — telemetry window, control
//!   law, optional gate-log recorder — driven exclusively by explicit
//!   `now_ms` arguments. It never reads a clock, spawns a thread, or
//!   touches I/O, so a recorded event stream replayed through it (see
//!   [`crate::replay`]) reproduces the original decision sequence
//!   bit-for-bit.
//! * [`ControlLoop`] is the embeddable shell: it owns an
//!   [`AdaptiveGate`], stamps events with wall-clock time since
//!   construction, and serializes access to the core. Server threads
//!   call [`ControlLoop::admit`] / [`ControlLoop::complete`]; any timer
//!   calls [`ControlLoop::tick`] once per measurement interval.
//!
//! The `admit`/`complete` fast path takes two short critical sections
//! (gate, then core) and allocates nothing after warm-up — the
//! counting-allocator test in `tests/alloc_gate.rs` pins that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use alc_core::gate::{AdaptiveGate, Permit};
use alc_core::gatelog::{GateEvent, GateLogSink};
use alc_core::measure::PerfIndicator;
use alc_trace::{cat as tcat, name as tname, Args as TraceArgs, TraceEvent, TraceSink};
use parking_lot::Mutex;

use crate::law::{ControlLaw, WindowSnapshot};
use crate::metrics::MetricsSnapshot;
use crate::telemetry::{Outcome, TelemetryWindow};

/// What happens to an arrival that finds the gate full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Queue FIFO until a slot frees (never sheds).
    Queue,
    /// Queue up to the given patience, then shed.
    QueueTimeout(Duration),
    /// Admit only if a slot is free right now; otherwise shed.
    Shed,
}

/// One harvested decision: the bound now in force and the window that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Harvest time, ms from the loop's epoch.
    pub at_ms: f64,
    /// The MPL bound the law chose.
    pub bound: u32,
    /// The telemetry window the law saw.
    pub window: WindowSnapshot,
}

/// The deterministic event-time control core (no clock, no threads, no
/// I/O). Drive it with monotonically non-decreasing `now_ms` values.
///
/// Time starts at `0.0` with an empty system — the same epoch the
/// simulator's sampler uses, which is what lets simulator-recorded logs
/// replay through this type unchanged.
pub struct LoopCore {
    telemetry: TelemetryWindow,
    law: Box<dyn ControlLaw>,
    log: Option<Box<dyn GateLogSink>>,
    commits: u64,
    aborts: u64,
    sheds: u64,
    decisions: u64,
    last: Option<Decision>,
}

impl LoopCore {
    /// Wires a law to a fresh telemetry window (epoch `0.0`, empty
    /// system).
    pub fn new(law: Box<dyn ControlLaw>, indicator: PerfIndicator) -> Self {
        LoopCore {
            telemetry: TelemetryWindow::new(indicator, 0.0, 0),
            law,
            log: None,
            commits: 0,
            aborts: 0,
            sheds: 0,
            decisions: 0,
            last: None,
        }
    }

    /// Installs a gate-log recorder mirroring every event fed in.
    pub fn set_gate_log(&mut self, sink: Box<dyn GateLogSink>) {
        self.log = Some(sink);
    }

    /// Removes and returns the recorder.
    pub fn take_gate_log(&mut self) -> Option<Box<dyn GateLogSink>> {
        self.log.take()
    }

    /// Read access to the law.
    pub fn law(&self) -> &dyn ControlLaw {
        self.law.as_ref()
    }

    /// Records that the in-system population changed to `in_system`.
    pub fn on_mpl(&mut self, now_ms: f64, in_system: u32) {
        self.telemetry.on_mpl_change(now_ms, in_system);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Mpl {
                at_ms: now_ms,
                in_system,
            });
        }
    }

    /// Records a commit.
    pub fn on_commit(&mut self, now_ms: f64, response_ms: f64, conflicts: u64) {
        self.commits += 1;
        self.telemetry.on_commit(response_ms, conflicts);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Commit {
                at_ms: now_ms,
                response_ms,
                conflicts,
            });
        }
    }

    /// Records an abort.
    pub fn on_abort(&mut self, now_ms: f64, conflicts: u64) {
        self.aborts += 1;
        self.telemetry.on_abort(conflicts);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Abort {
                at_ms: now_ms,
                conflicts,
            });
        }
    }

    /// Records a shed arrival (rejected without queueing).
    pub fn on_shed(&mut self) {
        self.sheds += 1;
        self.telemetry.on_shed();
    }

    /// Closes the window at `now_ms` and runs the law.
    pub fn harvest(&mut self, now_ms: f64, queue_depth: u32) -> Decision {
        let window = self.telemetry.harvest(now_ms, queue_depth);
        let bound = self.law.decide(&window);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Decision {
                at_ms: now_ms,
                bound,
            });
        }
        self.decisions += 1;
        let decision = Decision {
            at_ms: now_ms,
            bound,
            window,
        };
        self.last = Some(decision.clone());
        decision
    }

    /// Cumulative `(commits, aborts, sheds, decisions)` since
    /// construction.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (self.commits, self.aborts, self.sheds, self.decisions)
    }

    /// The last harvested decision, if any window has closed yet.
    pub fn last_decision(&self) -> Option<&Decision> {
        self.last.as_ref()
    }
}

/// The embeddable admission-control runtime: a thread-safe gate whose
/// limit a control law adjusts from live telemetry.
///
/// ```
/// use alc_runtime::{AdmissionPolicy, AimdLaw, AimdParams, ControlLoop, Outcome};
/// use alc_core::measure::PerfIndicator;
///
/// let gate = ControlLoop::new(
///     Box::new(AimdLaw::new(AimdParams::default())),
///     PerfIndicator::Throughput,
///     AdmissionPolicy::Queue,
/// );
/// let permit = gate.admit().expect("Queue policy never sheds");
/// // ... do the unit of work ...
/// gate.complete(permit, Outcome::Commit { response_ms: 12.5, conflicts: 0 });
/// let decision = gate.tick(); // from a timer, once per interval
/// assert!(decision.bound >= 1);
/// ```
pub struct ControlLoop {
    gate: Arc<AdaptiveGate>,
    policy: AdmissionPolicy,
    core: Mutex<LoopCore>,
    trace: Mutex<Option<Box<dyn TraceSink>>>,
    seq: AtomicU64,
    // alc-lint: allow(wall-clock, reason="the shell's one clock: stamps events with ms since construction; the deterministic core never reads it")
    epoch: std::time::Instant,
}

/// A held admission slot, returned by [`ControlLoop::admit`]. Wraps the
/// gate's permit with the admission timestamp and a sequence number, so
/// [`ControlLoop::complete`] can emit the attempt's lifecycle span
/// without any per-attempt bookkeeping in the loop. Dropping it releases
/// the slot (without reporting an outcome), exactly like the raw permit.
pub struct AdmittedPermit<'a> {
    inner: Permit<'a>,
    admitted_at_ms: f64,
    seq: u64,
}

impl AdmittedPermit<'_> {
    /// When this permit was granted, ms since the loop's epoch.
    pub fn admitted_at_ms(&self) -> f64 {
        self.admitted_at_ms
    }
}

/// How many worker lanes attempt spans are spread over in traces: the
/// sequence number is folded modulo this, keeping concurrent attempts on
/// distinct Perfetto rows without unbounded lane growth.
const TRACE_LANES: u64 = 32;

impl ControlLoop {
    /// Builds the runtime: the gate starts at the law's current bound.
    pub fn new(
        law: Box<dyn ControlLaw>,
        indicator: PerfIndicator,
        policy: AdmissionPolicy,
    ) -> Self {
        let gate = Arc::new(AdaptiveGate::new(law.current_bound()));
        ControlLoop {
            gate,
            policy,
            core: Mutex::new(LoopCore::new(law, indicator)),
            trace: Mutex::new(None),
            seq: AtomicU64::new(0),
            #[allow(clippy::disallowed_methods)] // real-time shell: the epoch is its time base
            // alc-lint: allow(wall-clock, reason="epoch stamp at construction; all later times are durations from it")
            epoch: std::time::Instant::now(),
        }
    }

    /// Installs a gate-log recorder (e.g. [`crate::log::JsonlSink`]).
    pub fn set_gate_log(&self, sink: Box<dyn GateLogSink>) {
        self.core.lock().set_gate_log(sink);
    }

    /// Removes and returns the recorder (to flush/inspect after a run).
    pub fn take_gate_log(&self) -> Option<Box<dyn GateLogSink>> {
        self.core.lock().take_gate_log()
    }

    /// Installs a span/event trace sink (e.g. an
    /// [`alc_trace::ChromeWriter`]). The loop then emits the same
    /// vocabulary the simulator uses: an `attempt` span per admitted
    /// unit of work (outcome-tagged at completion), `mpl`/`bound`
    /// counters, `gate.decision` instants on each tick, and
    /// `client.shed` instants for shed arrivals — all stamped with ms
    /// since the loop's epoch.
    pub fn set_trace_sink(&self, sink: Box<dyn TraceSink>) {
        let mut trace = self.trace.lock();
        *trace = Some(sink);
        if let Some(t) = trace.as_mut() {
            t.emit(&TraceEvent::process_name(alc_trace::PID_NODE, "runtime", None));
            t.emit(&TraceEvent::thread_name(
                alc_trace::PID_NODE,
                alc_trace::TID_CONTROL,
                "control",
                None,
            ));
            for lane in 0..TRACE_LANES {
                let lane = lane as u32;
                t.emit(&TraceEvent::thread_name(
                    alc_trace::PID_NODE,
                    1 + lane,
                    "worker-",
                    Some(lane),
                ));
            }
        }
    }

    /// Removes and returns the trace sink (to finish/flush it).
    pub fn take_trace_sink(&self) -> Option<Box<dyn TraceSink>> {
        self.trace.lock().take()
    }

    /// Milliseconds since construction — the loop's time base.
    pub fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1000.0
    }

    /// The underlying gate, for stats or direct sharing.
    pub fn gate(&self) -> &Arc<AdaptiveGate> {
        &self.gate
    }

    /// Requests admission under the configured policy. `None` means the
    /// arrival was shed (immediately under [`AdmissionPolicy::Shed`],
    /// after the patience under [`AdmissionPolicy::QueueTimeout`]; never
    /// under [`AdmissionPolicy::Queue`]). Hold the permit for the
    /// duration of the unit of work and pass it to
    /// [`ControlLoop::complete`].
    pub fn admit(&self) -> Option<AdmittedPermit<'_>> {
        let permit = match self.policy {
            AdmissionPolicy::Queue => Some(self.gate.acquire()),
            AdmissionPolicy::QueueTimeout(patience) => self.gate.acquire_timeout(patience),
            AdmissionPolicy::Shed => self.gate.try_acquire(),
        };
        let now = self.now_ms();
        {
            let mut core = self.core.lock();
            match permit {
                Some(_) => core.on_mpl(now, self.gate.in_use()),
                None => core.on_shed(),
            }
        }
        match permit {
            Some(inner) => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = self.trace.lock().as_mut() {
                    t.emit(&TraceEvent::counter(
                        tname::MPL,
                        now,
                        alc_trace::PID_NODE,
                        f64::from(self.gate.in_use()),
                    ));
                }
                Some(AdmittedPermit {
                    inner,
                    admitted_at_ms: now,
                    seq,
                })
            }
            None => {
                if let Some(t) = self.trace.lock().as_mut() {
                    t.emit(&TraceEvent::instant(
                        tname::CLIENT_SHED,
                        tcat::CLIENT,
                        now,
                        alc_trace::PID_NODE,
                        alc_trace::TID_CONTROL,
                    ));
                }
                None
            }
        }
    }

    /// Reports how an admitted unit of work ended, releasing its slot.
    pub fn complete(&self, permit: AdmittedPermit<'_>, outcome: Outcome) {
        let now = self.now_ms();
        let AdmittedPermit {
            inner,
            admitted_at_ms,
            seq,
        } = permit;
        let outcome_name = match outcome {
            Outcome::Commit { .. } => "commit",
            Outcome::Abort { .. } => "abort",
        };
        {
            let mut core = self.core.lock();
            match outcome {
                Outcome::Commit {
                    response_ms,
                    conflicts,
                } => core.on_commit(now, response_ms, conflicts),
                Outcome::Abort { conflicts } => core.on_abort(now, conflicts),
            }
            drop(inner); // release the slot, then observe the new population
            core.on_mpl(now, self.gate.in_use());
        }
        if let Some(t) = self.trace.lock().as_mut() {
            t.emit(
                &TraceEvent::complete(
                    tname::ATTEMPT,
                    tcat::TXN,
                    admitted_at_ms,
                    now - admitted_at_ms,
                    alc_trace::PID_NODE,
                    1 + (seq % TRACE_LANES) as u32,
                )
                .with(TraceArgs::Outcome(outcome_name)),
            );
            t.emit(&TraceEvent::counter(
                tname::MPL,
                now,
                alc_trace::PID_NODE,
                f64::from(self.gate.in_use()),
            ));
        }
    }

    /// Closes the measurement window, runs the law, and pushes the new
    /// bound into the gate. Call from a timer at the measurement cadence
    /// (`alc_core::sampler` has interval-sizing policies if the cadence
    /// itself should adapt).
    pub fn tick(&self) -> Decision {
        let now = self.now_ms();
        let queue_depth = self.gate.stats().waiting;
        let decision = self.core.lock().harvest(now, queue_depth);
        self.gate.set_limit(decision.bound);
        if let Some(t) = self.trace.lock().as_mut() {
            t.emit(
                &TraceEvent::instant(
                    tname::GATE_DECISION,
                    tcat::GATE,
                    now,
                    alc_trace::PID_NODE,
                    alc_trace::TID_CONTROL,
                )
                .with(TraceArgs::Bound(decision.bound)),
            );
            t.emit(&TraceEvent::counter(
                tname::BOUND,
                now,
                alc_trace::PID_NODE,
                f64::from(decision.bound),
            ));
        }
        decision
    }

    /// Flattens the loop's live state into one [`MetricsSnapshot`]:
    /// gate occupancy now, cumulative outcome counters, and the last
    /// harvested window (zeros before the first [`ControlLoop::tick`]).
    /// Export a sampled series with
    /// [`write_metrics_jsonl`](crate::metrics::write_metrics_jsonl).
    pub fn metrics(&self) -> MetricsSnapshot {
        let now = self.now_ms();
        let stats = self.gate.stats();
        let core = self.core.lock();
        let (commits, aborts, sheds, decisions) = core.totals();
        let last = core.last_decision();
        let (window, queue_depth) = match last {
            Some(d) => (Some(&d.window), d.window.queue_depth),
            None => (None, 0),
        };
        MetricsSnapshot {
            at_ms: now,
            bound: stats.limit,
            in_use: stats.in_use,
            waiting: stats.waiting,
            commits,
            aborts,
            sheds,
            decisions,
            window_departures: window.map_or(0, |w| w.measurement.departures),
            window_aborts: window.map_or(0, |w| w.measurement.aborts),
            window_shed: window.map_or(0, |w| w.shed),
            observed_mpl: window.map_or(0.0, |w| w.measurement.observed_mpl),
            mean_response_ms: window.map_or(0.0, |w| w.measurement.mean_response_ms),
            p50_ms: window.map_or(0.0, |w| w.p50_ms),
            p95_ms: window.map_or(0.0, |w| w.p95_ms),
            p99_ms: window.map_or(0.0, |w| w.p99_ms),
            queue_depth,
        }
    }

    /// Read access to the law under the loop's lock.
    pub fn with_law<R>(&self, f: impl FnOnce(&dyn ControlLaw) -> R) -> R {
        f(self.core.lock().law())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::law::{AimdLaw, AimdParams};

    fn aimd_loop(policy: AdmissionPolicy, initial_bound: u32) -> ControlLoop {
        ControlLoop::new(
            Box::new(AimdLaw::new(AimdParams {
                initial_bound,
                ..AimdParams::default()
            })),
            PerfIndicator::Throughput,
            policy,
        )
    }

    #[test]
    fn admit_complete_tick_cycle() {
        let rt = aimd_loop(AdmissionPolicy::Queue, 2);
        let p1 = rt.admit().expect("queue policy");
        let p2 = rt.admit().expect("queue policy");
        assert_eq!(rt.gate().in_use(), 2);
        rt.complete(
            p1,
            Outcome::Commit {
                response_ms: 10.0,
                conflicts: 0,
            },
        );
        rt.complete(p2, Outcome::Abort { conflicts: 1 });
        assert_eq!(rt.gate().in_use(), 0);
        let d = rt.tick();
        assert_eq!(d.window.measurement.departures, 1);
        assert_eq!(d.window.measurement.aborts, 1);
        assert_eq!(rt.gate().limit(), d.bound);
    }

    #[test]
    fn shed_policy_rejects_at_capacity_and_counts() {
        let rt = aimd_loop(AdmissionPolicy::Shed, 1);
        let held = rt.admit().expect("capacity free");
        assert!(rt.admit().is_none(), "full gate must shed");
        rt.complete(
            held,
            Outcome::Commit {
                response_ms: 5.0,
                conflicts: 0,
            },
        );
        let d = rt.tick();
        assert_eq!(d.window.shed, 1);
    }

    /// A sink sharing its buffer with the test body.
    struct SharedSink(Arc<Mutex<Vec<GateEvent>>>);

    impl GateLogSink for SharedSink {
        fn record(&mut self, event: &GateEvent) {
            self.0.lock().push(event.clone());
        }
    }

    #[test]
    fn gate_log_mirrors_the_event_stream() {
        let rt = aimd_loop(AdmissionPolicy::Queue, 4);
        let buffer = Arc::new(Mutex::new(Vec::new()));
        rt.set_gate_log(Box::new(SharedSink(Arc::clone(&buffer))));
        let p = rt.admit().expect("queue policy");
        rt.complete(
            p,
            Outcome::Commit {
                response_ms: 7.0,
                conflicts: 2,
            },
        );
        let d = rt.tick();
        let events = buffer.lock().clone();
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| match e {
                GateEvent::Mpl { .. } => "mpl",
                GateEvent::Commit { .. } => "commit",
                GateEvent::Abort { .. } => "abort",
                GateEvent::Decision { .. } => "decision",
            })
            .collect();
        assert_eq!(kinds, vec!["mpl", "commit", "mpl", "decision"]);
        match events.last().expect("non-empty") {
            GateEvent::Decision { bound, .. } => assert_eq!(*bound, d.bound),
            other => panic!("unexpected final event {other:?}"),
        }
    }

    /// A trace sink sharing its event buffer with the test body.
    struct SharedTrace(Arc<Mutex<Vec<TraceEvent>>>);

    impl TraceSink for SharedTrace {
        fn emit(&mut self, ev: &TraceEvent) {
            self.0.lock().push(*ev);
        }
    }

    #[test]
    fn trace_and_metrics_see_the_same_run() {
        let rt = aimd_loop(AdmissionPolicy::Shed, 1);
        let buffer = Arc::new(Mutex::new(Vec::new()));
        rt.set_trace_sink(Box::new(SharedTrace(Arc::clone(&buffer))));
        let held = rt.admit().expect("capacity free");
        assert!(held.admitted_at_ms() >= 0.0);
        assert!(rt.admit().is_none(), "full gate must shed");
        rt.complete(
            held,
            Outcome::Commit {
                response_ms: 5.0,
                conflicts: 0,
            },
        );
        let d = rt.tick();
        let events = buffer.lock().clone();
        let attempt = events
            .iter()
            .find(|e| e.ph == alc_trace::Phase::Complete && e.name == tname::ATTEMPT)
            .expect("attempt span");
        assert!(matches!(attempt.args, TraceArgs::Outcome("commit")));
        assert!(attempt.dur_ms >= 0.0);
        assert!(events
            .iter()
            .any(|e| e.ph == alc_trace::Phase::Mark && e.name == tname::CLIENT_SHED));
        assert!(events
            .iter()
            .any(|e| e.ph == alc_trace::Phase::Mark && e.name == tname::GATE_DECISION));
        assert!(events
            .iter()
            .any(|e| e.ph == alc_trace::Phase::Counter && e.name == tname::MPL));
        let m = rt.metrics();
        assert_eq!((m.commits, m.aborts, m.sheds, m.decisions), (1, 0, 1, 1));
        assert_eq!(m.window_departures, 1);
        assert_eq!(m.window_shed, 1);
        assert_eq!(m.bound, d.bound);
        assert_eq!(m.in_use, 0);
        assert!(rt.take_trace_sink().is_some());
    }

    #[test]
    fn queue_timeout_sheds_when_saturated() {
        let rt = aimd_loop(
            AdmissionPolicy::QueueTimeout(Duration::from_millis(10)),
            1,
        );
        let held = rt.admit().expect("first admit");
        assert!(rt.admit().is_none(), "second admit must time out");
        drop(held);
    }
}
