//! The runtime control loop: a deterministic event-time core inside a
//! thread-safe wall-clock shell.
//!
//! The split is the crate's load-bearing design decision:
//!
//! * [`LoopCore`] is the whole control stack — telemetry window, control
//!   law, optional gate-log recorder — driven exclusively by explicit
//!   `now_ms` arguments. It never reads a clock, spawns a thread, or
//!   touches I/O, so a recorded event stream replayed through it (see
//!   [`crate::replay`]) reproduces the original decision sequence
//!   bit-for-bit.
//! * [`ControlLoop`] is the embeddable shell: it owns an
//!   [`AdaptiveGate`], stamps events with wall-clock time since
//!   construction, and serializes access to the core. Server threads
//!   call [`ControlLoop::admit`] / [`ControlLoop::complete`]; any timer
//!   calls [`ControlLoop::tick`] once per measurement interval.
//!
//! The `admit`/`complete` fast path takes two short critical sections
//! (gate, then core) and allocates nothing after warm-up — the
//! counting-allocator test in `tests/alloc_gate.rs` pins that.

use std::sync::Arc;
use std::time::Duration;

use alc_core::gate::{AdaptiveGate, Permit};
use alc_core::gatelog::{GateEvent, GateLogSink};
use alc_core::measure::PerfIndicator;
use parking_lot::Mutex;

use crate::law::{ControlLaw, WindowSnapshot};
use crate::telemetry::{Outcome, TelemetryWindow};

/// What happens to an arrival that finds the gate full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Queue FIFO until a slot frees (never sheds).
    Queue,
    /// Queue up to the given patience, then shed.
    QueueTimeout(Duration),
    /// Admit only if a slot is free right now; otherwise shed.
    Shed,
}

/// One harvested decision: the bound now in force and the window that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Harvest time, ms from the loop's epoch.
    pub at_ms: f64,
    /// The MPL bound the law chose.
    pub bound: u32,
    /// The telemetry window the law saw.
    pub window: WindowSnapshot,
}

/// The deterministic event-time control core (no clock, no threads, no
/// I/O). Drive it with monotonically non-decreasing `now_ms` values.
///
/// Time starts at `0.0` with an empty system — the same epoch the
/// simulator's sampler uses, which is what lets simulator-recorded logs
/// replay through this type unchanged.
pub struct LoopCore {
    telemetry: TelemetryWindow,
    law: Box<dyn ControlLaw>,
    log: Option<Box<dyn GateLogSink>>,
}

impl LoopCore {
    /// Wires a law to a fresh telemetry window (epoch `0.0`, empty
    /// system).
    pub fn new(law: Box<dyn ControlLaw>, indicator: PerfIndicator) -> Self {
        LoopCore {
            telemetry: TelemetryWindow::new(indicator, 0.0, 0),
            law,
            log: None,
        }
    }

    /// Installs a gate-log recorder mirroring every event fed in.
    pub fn set_gate_log(&mut self, sink: Box<dyn GateLogSink>) {
        self.log = Some(sink);
    }

    /// Removes and returns the recorder.
    pub fn take_gate_log(&mut self) -> Option<Box<dyn GateLogSink>> {
        self.log.take()
    }

    /// Read access to the law.
    pub fn law(&self) -> &dyn ControlLaw {
        self.law.as_ref()
    }

    /// Records that the in-system population changed to `in_system`.
    pub fn on_mpl(&mut self, now_ms: f64, in_system: u32) {
        self.telemetry.on_mpl_change(now_ms, in_system);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Mpl {
                at_ms: now_ms,
                in_system,
            });
        }
    }

    /// Records a commit.
    pub fn on_commit(&mut self, now_ms: f64, response_ms: f64, conflicts: u64) {
        self.telemetry.on_commit(response_ms, conflicts);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Commit {
                at_ms: now_ms,
                response_ms,
                conflicts,
            });
        }
    }

    /// Records an abort.
    pub fn on_abort(&mut self, now_ms: f64, conflicts: u64) {
        self.telemetry.on_abort(conflicts);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Abort {
                at_ms: now_ms,
                conflicts,
            });
        }
    }

    /// Records a shed arrival (rejected without queueing).
    pub fn on_shed(&mut self) {
        self.telemetry.on_shed();
    }

    /// Closes the window at `now_ms` and runs the law.
    pub fn harvest(&mut self, now_ms: f64, queue_depth: u32) -> Decision {
        let window = self.telemetry.harvest(now_ms, queue_depth);
        let bound = self.law.decide(&window);
        if let Some(log) = self.log.as_mut() {
            log.record(&GateEvent::Decision {
                at_ms: now_ms,
                bound,
            });
        }
        Decision {
            at_ms: now_ms,
            bound,
            window,
        }
    }
}

/// The embeddable admission-control runtime: a thread-safe gate whose
/// limit a control law adjusts from live telemetry.
///
/// ```
/// use alc_runtime::{AdmissionPolicy, AimdLaw, AimdParams, ControlLoop, Outcome};
/// use alc_core::measure::PerfIndicator;
///
/// let gate = ControlLoop::new(
///     Box::new(AimdLaw::new(AimdParams::default())),
///     PerfIndicator::Throughput,
///     AdmissionPolicy::Queue,
/// );
/// let permit = gate.admit().expect("Queue policy never sheds");
/// // ... do the unit of work ...
/// gate.complete(permit, Outcome::Commit { response_ms: 12.5, conflicts: 0 });
/// let decision = gate.tick(); // from a timer, once per interval
/// assert!(decision.bound >= 1);
/// ```
pub struct ControlLoop {
    gate: Arc<AdaptiveGate>,
    policy: AdmissionPolicy,
    core: Mutex<LoopCore>,
    // alc-lint: allow(wall-clock, reason="the shell's one clock: stamps events with ms since construction; the deterministic core never reads it")
    epoch: std::time::Instant,
}

impl ControlLoop {
    /// Builds the runtime: the gate starts at the law's current bound.
    pub fn new(
        law: Box<dyn ControlLaw>,
        indicator: PerfIndicator,
        policy: AdmissionPolicy,
    ) -> Self {
        let gate = Arc::new(AdaptiveGate::new(law.current_bound()));
        ControlLoop {
            gate,
            policy,
            core: Mutex::new(LoopCore::new(law, indicator)),
            #[allow(clippy::disallowed_methods)] // real-time shell: the epoch is its time base
            // alc-lint: allow(wall-clock, reason="epoch stamp at construction; all later times are durations from it")
            epoch: std::time::Instant::now(),
        }
    }

    /// Installs a gate-log recorder (e.g. [`crate::log::JsonlSink`]).
    pub fn set_gate_log(&self, sink: Box<dyn GateLogSink>) {
        self.core.lock().set_gate_log(sink);
    }

    /// Removes and returns the recorder (to flush/inspect after a run).
    pub fn take_gate_log(&self) -> Option<Box<dyn GateLogSink>> {
        self.core.lock().take_gate_log()
    }

    /// Milliseconds since construction — the loop's time base.
    pub fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1000.0
    }

    /// The underlying gate, for stats or direct sharing.
    pub fn gate(&self) -> &Arc<AdaptiveGate> {
        &self.gate
    }

    /// Requests admission under the configured policy. `None` means the
    /// arrival was shed (immediately under [`AdmissionPolicy::Shed`],
    /// after the patience under [`AdmissionPolicy::QueueTimeout`]; never
    /// under [`AdmissionPolicy::Queue`]). Hold the permit for the
    /// duration of the unit of work and pass it to
    /// [`ControlLoop::complete`].
    pub fn admit(&self) -> Option<Permit<'_>> {
        let permit = match self.policy {
            AdmissionPolicy::Queue => Some(self.gate.acquire()),
            AdmissionPolicy::QueueTimeout(patience) => self.gate.acquire_timeout(patience),
            AdmissionPolicy::Shed => self.gate.try_acquire(),
        };
        let now = self.now_ms();
        let mut core = self.core.lock();
        match permit {
            Some(_) => core.on_mpl(now, self.gate.in_use()),
            None => core.on_shed(),
        }
        permit
    }

    /// Reports how an admitted unit of work ended, releasing its slot.
    pub fn complete(&self, permit: Permit<'_>, outcome: Outcome) {
        let now = self.now_ms();
        let mut core = self.core.lock();
        match outcome {
            Outcome::Commit {
                response_ms,
                conflicts,
            } => core.on_commit(now, response_ms, conflicts),
            Outcome::Abort { conflicts } => core.on_abort(now, conflicts),
        }
        drop(permit); // release the slot, then observe the new population
        core.on_mpl(now, self.gate.in_use());
    }

    /// Closes the measurement window, runs the law, and pushes the new
    /// bound into the gate. Call from a timer at the measurement cadence
    /// (`alc_core::sampler` has interval-sizing policies if the cadence
    /// itself should adapt).
    pub fn tick(&self) -> Decision {
        let now = self.now_ms();
        let queue_depth = self.gate.stats().waiting;
        let decision = self.core.lock().harvest(now, queue_depth);
        self.gate.set_limit(decision.bound);
        decision
    }

    /// Read access to the law under the loop's lock.
    pub fn with_law<R>(&self, f: impl FnOnce(&dyn ControlLaw) -> R) -> R {
        f(self.core.lock().law())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::law::{AimdLaw, AimdParams};

    fn aimd_loop(policy: AdmissionPolicy, initial_bound: u32) -> ControlLoop {
        ControlLoop::new(
            Box::new(AimdLaw::new(AimdParams {
                initial_bound,
                ..AimdParams::default()
            })),
            PerfIndicator::Throughput,
            policy,
        )
    }

    #[test]
    fn admit_complete_tick_cycle() {
        let rt = aimd_loop(AdmissionPolicy::Queue, 2);
        let p1 = rt.admit().expect("queue policy");
        let p2 = rt.admit().expect("queue policy");
        assert_eq!(rt.gate().in_use(), 2);
        rt.complete(
            p1,
            Outcome::Commit {
                response_ms: 10.0,
                conflicts: 0,
            },
        );
        rt.complete(p2, Outcome::Abort { conflicts: 1 });
        assert_eq!(rt.gate().in_use(), 0);
        let d = rt.tick();
        assert_eq!(d.window.measurement.departures, 1);
        assert_eq!(d.window.measurement.aborts, 1);
        assert_eq!(rt.gate().limit(), d.bound);
    }

    #[test]
    fn shed_policy_rejects_at_capacity_and_counts() {
        let rt = aimd_loop(AdmissionPolicy::Shed, 1);
        let held = rt.admit().expect("capacity free");
        assert!(rt.admit().is_none(), "full gate must shed");
        rt.complete(
            held,
            Outcome::Commit {
                response_ms: 5.0,
                conflicts: 0,
            },
        );
        let d = rt.tick();
        assert_eq!(d.window.shed, 1);
    }

    /// A sink sharing its buffer with the test body.
    struct SharedSink(Arc<Mutex<Vec<GateEvent>>>);

    impl GateLogSink for SharedSink {
        fn record(&mut self, event: &GateEvent) {
            self.0.lock().push(event.clone());
        }
    }

    #[test]
    fn gate_log_mirrors_the_event_stream() {
        let rt = aimd_loop(AdmissionPolicy::Queue, 4);
        let buffer = Arc::new(Mutex::new(Vec::new()));
        rt.set_gate_log(Box::new(SharedSink(Arc::clone(&buffer))));
        let p = rt.admit().expect("queue policy");
        rt.complete(
            p,
            Outcome::Commit {
                response_ms: 7.0,
                conflicts: 2,
            },
        );
        let d = rt.tick();
        let events = buffer.lock().clone();
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| match e {
                GateEvent::Mpl { .. } => "mpl",
                GateEvent::Commit { .. } => "commit",
                GateEvent::Abort { .. } => "abort",
                GateEvent::Decision { .. } => "decision",
            })
            .collect();
        assert_eq!(kinds, vec!["mpl", "commit", "mpl", "decision"]);
        match events.last().expect("non-empty") {
            GateEvent::Decision { bound, .. } => assert_eq!(*bound, d.bound),
            other => panic!("unexpected final event {other:?}"),
        }
    }

    #[test]
    fn queue_timeout_sheds_when_saturated() {
        let rt = aimd_loop(
            AdmissionPolicy::QueueTimeout(Duration::from_millis(10)),
            1,
        );
        let held = rt.admit().expect("first admit");
        assert!(rt.admit().is_none(), "second admit must time out");
        drop(held);
    }
}
