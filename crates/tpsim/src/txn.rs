//! Per-transaction (terminal slot) state.
//!
//! The model is closed: each of the `N` terminals owns exactly one
//! transaction slot that cycles Thinking → (gate) → Running → … →
//! commit → Thinking forever. A slot's `generation` increments on every
//! abort/restart/displacement so that in-flight events belonging to a dead
//! run are recognized and dropped when they fire (lazy cancellation).

use alc_des::SimTime;

/// Which half of a phase the transaction is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Waiting for / receiving a CPU burst.
    Cpu,
    /// In the (infinite-server) disk.
    Disk,
}

/// Lifecycle state of a transaction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// At the terminal, waiting out the think time.
    Thinking,
    /// In the gate's FCFS queue.
    Queued,
    /// Executing phase `phase` (0 = init, 1..=k = accesses, k+1 = commit
    /// processing).
    Running {
        /// Current phase index.
        phase: u32,
        /// CPU or disk half of the phase.
        stage: Stage,
    },
    /// Blocked on a lock (2PL only), about to run phase `phase` once
    /// granted.
    Blocked {
        /// The phase whose access is pending.
        phase: u32,
    },
    /// Aborted, waiting out the restart delay inside the system.
    RestartWait,
}

/// One terminal's transaction slot.
#[derive(Debug, Clone)]
pub struct Txn {
    /// Lifecycle state.
    pub state: TxnState,
    /// Run generation for lazy event cancellation.
    pub generation: u64,
    /// Access set of the current instance: `(item, is_write)` per access
    /// phase, in access order.
    pub items: Vec<(u64, bool)>,
    /// Whether the instance is a read-only query.
    pub is_query: bool,
    /// When the instance was submitted by the terminal (queue wait counts
    /// toward response time).
    pub submitted_at: SimTime,
    /// When the current run began (for restart accounting).
    pub run_started_at: SimTime,
    /// Timestamp (priority) of the current run; larger = younger.
    pub ts: u64,
    /// Restarts of the current instance so far.
    pub restarts: u64,
}

impl Txn {
    /// A fresh slot, thinking at the terminal.
    pub fn new() -> Self {
        Txn {
            state: TxnState::Thinking,
            generation: 0,
            items: Vec::new(),
            is_query: false,
            submitted_at: SimTime::ZERO,
            run_started_at: SimTime::ZERO,
            ts: 0,
            restarts: 0,
        }
    }

    /// The number of access phases `k` of the current instance.
    pub fn k(&self) -> u32 {
        self.items.len() as u32
    }

    /// True if the slot is admitted (occupies an MPL slot): running,
    /// blocked or waiting to restart.
    pub fn in_system(&self) -> bool {
        matches!(
            self.state,
            TxnState::Running { .. } | TxnState::Blocked { .. } | TxnState::RestartWait
        )
    }

    /// Phases the current run has completed (0 while restarting or not in
    /// the system) — the "sunk work" measure the displacement victim
    /// policies compare.
    pub fn progress(&self) -> u32 {
        match self.state {
            TxnState::Running { phase, .. } | TxnState::Blocked { phase } => phase,
            _ => 0,
        }
    }
}

impl Default for Txn {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slot_is_thinking() {
        let t = Txn::new();
        assert_eq!(t.state, TxnState::Thinking);
        assert!(!t.in_system());
        assert_eq!(t.k(), 0);
    }

    #[test]
    fn in_system_classification() {
        let mut t = Txn::new();
        t.state = TxnState::Running {
            phase: 0,
            stage: Stage::Cpu,
        };
        assert!(t.in_system());
        t.state = TxnState::Blocked { phase: 3 };
        assert!(t.in_system());
        t.state = TxnState::RestartWait;
        assert!(t.in_system());
        t.state = TxnState::Queued;
        assert!(!t.in_system());
        t.state = TxnState::Thinking;
        assert!(!t.in_system());
    }

    #[test]
    fn k_reflects_access_set() {
        let mut t = Txn::new();
        t.items = vec![(1, false), (2, true), (3, false)];
        assert_eq!(t.k(), 3);
    }

    #[test]
    fn progress_reads_the_phase() {
        let mut t = Txn::new();
        assert_eq!(t.progress(), 0);
        t.state = TxnState::Running {
            phase: 4,
            stage: Stage::Disk,
        };
        assert_eq!(t.progress(), 4);
        t.state = TxnState::Blocked { phase: 2 };
        assert_eq!(t.progress(), 2);
        t.state = TxnState::RestartWait;
        assert_eq!(t.progress(), 0);
    }
}
