//! Physical resource stations (§7, Figure 11).
//!
//! * [`CpuStation`] — "a homogeneous multiprocessor system serving a
//!   shared queue": `m` servers, one FIFO ready queue, non-preemptive
//!   bursts. Jobs belonging to aborted runs are lazily skipped via a
//!   generation check when they reach the head of the queue.
//! * The disk ("constant service times and no contention") and the
//!   terminals are pure delays — they need no station type, the engine
//!   schedules their completion events directly.

use std::collections::VecDeque;

use alc_des::stats::TimeWeighted;
use alc_des::SimTime;

/// A job enqueued at the CPU: transaction slot, run generation (for lazy
/// abort of queued work), and the pre-drawn burst length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuJob {
    /// Transaction slot the burst belongs to.
    pub txn: usize,
    /// Run generation; stale generations are discarded at dispatch.
    pub generation: u64,
    /// Burst length in milliseconds.
    pub burst_ms: f64,
}

/// The multiprocessor CPU station.
pub struct CpuStation {
    servers: u32,
    busy: u32,
    queue: VecDeque<CpuJob>,
    utilization: TimeWeighted,
    queue_len: TimeWeighted,
    /// Time-weighted capacity, consulted by [`CpuStation::mean_utilization`]
    /// only once a fault event has varied the server count (`varied`): the
    /// constant-capacity path must keep dividing by the exact integer so
    /// fault-free runs reproduce bit-identical statistics.
    capacity_avg: TimeWeighted,
    capacity_varied: bool,
}

impl CpuStation {
    /// Creates a station with `servers` CPUs.
    pub fn new(servers: u32, t0: SimTime) -> Self {
        Self::with_queue_capacity(servers, t0, 0)
    }

    /// Creates a station with the ready queue pre-sized for `cap` jobs
    /// (the engine passes the terminal count: the queue can never exceed
    /// the transaction population, so steady state never reallocates).
    pub fn with_queue_capacity(servers: u32, t0: SimTime, cap: usize) -> Self {
        assert!(servers > 0);
        CpuStation {
            servers,
            busy: 0,
            queue: VecDeque::with_capacity(cap),
            utilization: TimeWeighted::new(t0, 0.0),
            queue_len: TimeWeighted::new(t0, 0.0),
            capacity_avg: TimeWeighted::new(t0, f64::from(servers)),
            capacity_varied: false,
        }
    }

    /// Servers currently installed (may be 0 during a total outage).
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Fault event: changes the installed server count to `servers`.
    ///
    /// Shrinking never preempts — busy servers finish their current
    /// bursts and simply aren't re-filled until the population drops
    /// below the new capacity. Growing dispatches queued live jobs onto
    /// the new servers immediately; they are appended to `started` and
    /// the caller schedules their completions (exactly the
    /// [`CpuStation::offer`] contract).
    pub fn set_servers_into(
        &mut self,
        now: SimTime,
        servers: u32,
        is_stale: impl Fn(&CpuJob) -> bool,
        started: &mut Vec<CpuJob>,
    ) {
        self.capacity_varied = true;
        self.capacity_avg.set(now, f64::from(servers));
        self.servers = servers;
        while self.busy < self.servers {
            let Some(job) = self.queue.pop_front() else {
                break;
            };
            if is_stale(&job) {
                continue;
            }
            self.busy += 1;
            started.push(job);
        }
        self.queue_len.set(now, self.queue.len() as f64);
        self.utilization.set(now, f64::from(self.busy));
    }

    /// Offers a job. Returns `Some(job)` if a server is free and the job
    /// starts service now (the caller schedules its completion); `None`
    /// if it was queued.
    pub fn offer(&mut self, now: SimTime, job: CpuJob) -> Option<CpuJob> {
        if self.busy < self.servers {
            self.busy += 1;
            self.utilization.set(now, f64::from(self.busy));
            Some(job)
        } else {
            self.queue.push_back(job);
            self.queue_len.set(now, self.queue.len() as f64);
            None
        }
    }

    /// A burst finished: frees its server and dispatches the next live
    /// queued job, if any. `is_stale` decides whether a queued job still
    /// belongs to a live run. Returns the job now entering service.
    pub fn complete(
        &mut self,
        now: SimTime,
        is_stale: impl Fn(&CpuJob) -> bool,
    ) -> Option<CpuJob> {
        debug_assert!(self.busy > 0, "completion without a busy server");
        self.busy -= 1;
        // A fault may have shrunk the capacity below the busy count; in
        // that case the freed server is one of the killed ones and must
        // not pick up new work. (With constant capacity the guard is
        // always true here: a non-empty queue implies a full station.)
        if self.busy < self.servers {
            while let Some(job) = self.queue.pop_front() {
                if is_stale(&job) {
                    continue;
                }
                self.busy += 1;
                self.queue_len.set(now, self.queue.len() as f64);
                self.utilization.set(now, f64::from(self.busy));
                return Some(job);
            }
        }
        self.queue_len.set(now, self.queue.len() as f64);
        self.utilization.set(now, f64::from(self.busy));
        None
    }

    /// Busy servers right now.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Jobs waiting in the ready queue (may include stale entries).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Time-averaged utilization (busy servers / installed servers).
    /// Under fault events the divisor is the time-weighted installed
    /// capacity; fault-free runs keep the exact constant divisor.
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        if self.capacity_varied {
            let cap = self.capacity_avg.average(now);
            if cap <= 0.0 {
                return 0.0;
            }
            self.utilization.average(now) / cap
        } else {
            self.utilization.average(now) / f64::from(self.servers)
        }
    }

    /// Time-averaged ready-queue length.
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        self.queue_len.average(now)
    }

    /// Restarts the running averages (end of warm-up).
    pub fn reset_stats(&mut self, now: SimTime) {
        self.utilization.reset(now);
        self.queue_len.reset(now);
        self.capacity_avg.reset(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::new(ms)
    }

    fn job(txn: usize, generation: u64) -> CpuJob {
        CpuJob {
            txn,
            generation,
            burst_ms: 10.0,
        }
    }

    #[test]
    fn serves_up_to_capacity_then_queues() {
        let mut cpu = CpuStation::new(2, t(0.0));
        assert!(cpu.offer(t(0.0), job(0, 0)).is_some());
        assert!(cpu.offer(t(0.0), job(1, 0)).is_some());
        assert!(cpu.offer(t(0.0), job(2, 0)).is_none());
        assert_eq!(cpu.busy(), 2);
        assert_eq!(cpu.queued(), 1);
    }

    #[test]
    fn completion_dispatches_fifo() {
        let mut cpu = CpuStation::new(1, t(0.0));
        cpu.offer(t(0.0), job(0, 0));
        cpu.offer(t(0.0), job(1, 0));
        cpu.offer(t(0.0), job(2, 0));
        let next = cpu.complete(t(10.0), |_| false).unwrap();
        assert_eq!(next.txn, 1);
        let next = cpu.complete(t(20.0), |_| false).unwrap();
        assert_eq!(next.txn, 2);
        assert!(cpu.complete(t(30.0), |_| false).is_none());
        assert_eq!(cpu.busy(), 0);
    }

    #[test]
    fn stale_jobs_are_skipped_at_dispatch() {
        let mut cpu = CpuStation::new(1, t(0.0));
        cpu.offer(t(0.0), job(0, 0));
        cpu.offer(t(0.0), job(1, 7)); // will be stale
        cpu.offer(t(0.0), job(2, 0));
        let next = cpu
            .complete(t(10.0), |j| j.generation == 7)
            .expect("live job expected");
        assert_eq!(next.txn, 2);
        assert_eq!(cpu.queued(), 0);
    }

    #[test]
    fn all_stale_leaves_server_idle() {
        let mut cpu = CpuStation::new(1, t(0.0));
        cpu.offer(t(0.0), job(0, 0));
        cpu.offer(t(0.0), job(1, 7));
        assert!(cpu.complete(t(10.0), |j| j.generation == 7).is_none());
        assert_eq!(cpu.busy(), 0);
    }

    #[test]
    fn utilization_average() {
        let mut cpu = CpuStation::new(2, t(0.0));
        cpu.offer(t(0.0), job(0, 0)); // busy 1 from t=0
        cpu.complete(t(50.0), |_| false); // idle from t=50
        // busy-server integral: 1 * 50 over [0, 100] => mean 0.5 servers
        // => utilization 0.25 of 2 servers.
        assert!((cpu.mean_utilization(t(100.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shrinking_capacity_retires_servers_as_they_free() {
        let mut cpu = CpuStation::new(3, t(0.0));
        for i in 0..3 {
            assert!(cpu.offer(t(0.0), job(i, 0)).is_some());
        }
        cpu.offer(t(0.0), job(3, 0)); // queued
        let mut started = Vec::new();
        cpu.set_servers_into(t(5.0), 1, |_| false, &mut started);
        assert!(started.is_empty(), "shrink must not start work");
        assert_eq!(cpu.servers(), 1);
        // Completions above the new capacity retire servers instead of
        // dispatching the queued job.
        assert!(cpu.complete(t(10.0), |_| false).is_none());
        assert!(cpu.complete(t(11.0), |_| false).is_none());
        assert_eq!(cpu.busy(), 1);
        assert_eq!(cpu.queued(), 1);
        // The last completion frees the one live server: dispatch resumes.
        let next = cpu.complete(t(12.0), |_| false).expect("dispatch");
        assert_eq!(next.txn, 3);
    }

    #[test]
    fn growing_capacity_dispatches_queued_jobs() {
        let mut cpu = CpuStation::new(1, t(0.0));
        cpu.offer(t(0.0), job(0, 0));
        cpu.offer(t(0.0), job(1, 0));
        cpu.offer(t(0.0), job(2, 9)); // stale
        cpu.offer(t(0.0), job(3, 0));
        let mut started = Vec::new();
        cpu.set_servers_into(t(5.0), 3, |j| j.generation == 9, &mut started);
        assert_eq!(
            started.iter().map(|j| j.txn).collect::<Vec<_>>(),
            vec![1, 3],
            "stale job skipped, live jobs started in FIFO order"
        );
        assert_eq!(cpu.busy(), 3);
        assert_eq!(cpu.queued(), 0);
    }

    #[test]
    fn zero_capacity_queues_everything_until_restart() {
        let mut cpu = CpuStation::new(2, t(0.0));
        let mut started = Vec::new();
        cpu.set_servers_into(t(0.0), 0, |_| false, &mut started);
        assert!(cpu.offer(t(1.0), job(0, 0)).is_none());
        assert_eq!(cpu.busy(), 0);
        cpu.set_servers_into(t(2.0), 2, |_| false, &mut started);
        assert_eq!(started.len(), 1);
        assert_eq!(cpu.busy(), 1);
    }

    #[test]
    fn varied_capacity_utilization_uses_time_weighted_divisor() {
        let mut cpu = CpuStation::new(2, t(0.0));
        cpu.offer(t(0.0), job(0, 0));
        // [0, 100): 2 servers, 1 busy; [100, 200): 1 server, 1 busy.
        let mut started = Vec::new();
        cpu.set_servers_into(t(100.0), 1, |_| false, &mut started);
        // busy integral 1*200; capacity integral 2*100 + 1*100 = 300.
        assert!((cpu.mean_utilization(t(200.0)) - 200.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_starts_fresh_window() {
        let mut cpu = CpuStation::new(1, t(0.0));
        cpu.offer(t(0.0), job(0, 0));
        cpu.reset_stats(t(100.0));
        // Still busy the whole post-reset window.
        assert!((cpu.mean_utilization(t(200.0)) - 1.0).abs() < 1e-12);
    }
}
