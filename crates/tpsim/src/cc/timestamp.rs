//! Basic timestamp ordering.
//!
//! The second non-blocking representative of §1 ("e.g. timestamp
//! ordering, optimistic CC"). Each item carries the largest reader
//! timestamp `rts` and the writer timestamp `wts`; accesses arriving "too
//! late" in timestamp order abort the transaction immediately, which then
//! restarts with a *fresh* timestamp (avoiding livelock on the same
//! ordering conflict).
//!
//! As usual in performance models, writes install at access time and are
//! not rolled back on abort — recoverability machinery (deferred writes,
//! commit dependencies) affects constants, not the contention shape this
//! study needs. The simplification is documented here deliberately.

use super::{AccessOutcome, ConcurrencyControl, TxnId, ValidateOutcome};

/// Direct-indexed per-item tables are preallocated up to this many items;
/// larger (or unknown-size) databases grow on first touch.
const PREALLOC_CAP: usize = 1 << 22;

#[derive(Debug, Clone, Copy, Default)]
struct ItemTs {
    rts: u64,
    wts: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct TxnState {
    ts: u64,
    conflicts: u64,
}

/// Basic T/O.
pub struct TimestampOrdering {
    /// Per-item timestamps, direct-indexed by item id. Untouched items
    /// hold `{rts: 0, wts: 0}` ("written before every start"), exactly
    /// the semantics the old hash-map `or_default` lookup provided.
    items: Vec<ItemTs>,
    txns: Vec<TxnState>,
}

impl TimestampOrdering {
    /// Creates the protocol for `slots` transaction slots; the item
    /// table grows on first touch.
    pub fn new(slots: usize) -> Self {
        Self::with_db_size(slots, 0)
    }

    /// Creates the protocol with the item table preallocated for
    /// `db_size` items, so steady state never touches the allocator.
    pub fn with_db_size(slots: usize, db_size: usize) -> Self {
        let prealloc = db_size.min(PREALLOC_CAP);
        TimestampOrdering {
            // alc-lint: allow(hot-alloc, reason="construction-time preallocation of the per-item table")
            items: vec![ItemTs::default(); prealloc],
            // alc-lint: allow(hot-alloc, reason="construction-time slot-table allocation")
            txns: vec![TxnState::default(); slots],
        }
    }

    fn item_mut(&mut self, item: u64) -> &mut ItemTs {
        let idx = item as usize;
        if idx >= self.items.len() {
            // First touch past the preallocation: grow (amortized; never
            // hit when `db_size` was known at construction).
            self.items.resize(idx + 1, ItemTs::default());
        }
        &mut self.items[idx]
    }
}

impl ConcurrencyControl for TimestampOrdering {
    fn name(&self) -> &'static str {
        "timestamp-ordering"
    }

    fn begin(&mut self, txn: TxnId, ts: u64) {
        self.txns[txn] = TxnState { ts, conflicts: 0 };
    }

    fn access(&mut self, txn: TxnId, item: u64, write: bool) -> AccessOutcome {
        let ts = self.txns[txn].ts;
        let e = self.item_mut(item);
        if write {
            if ts < e.rts || ts < e.wts {
                self.txns[txn].conflicts += 1;
                return AccessOutcome::Abort;
            }
            e.wts = ts;
        } else {
            if ts < e.wts {
                self.txns[txn].conflicts += 1;
                return AccessOutcome::Abort;
            }
            e.rts = e.rts.max(ts);
        }
        AccessOutcome::Granted
    }

    fn validate(&mut self, txn: TxnId) -> ValidateOutcome {
        ValidateOutcome {
            ok: true,
            conflicts: self.txns[txn].conflicts,
        }
    }

    fn commit(&mut self, _txn: TxnId) -> Vec<TxnId> {
        Vec::new() // alc-lint: allow(hot-alloc, reason="empty Vec::new is allocation-free; T/O never wakes blocked txns")
    }

    fn abort(&mut self, _txn: TxnId) -> Vec<TxnId> {
        Vec::new() // alc-lint: allow(hot-alloc, reason="empty Vec::new is allocation-free; T/O never wakes blocked txns")
    }

    fn deadlock_victim(&mut self, _requester: TxnId) -> Option<TxnId> {
        None // T/O never blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_accesses_proceed() {
        let mut cc = TimestampOrdering::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Granted);
        assert!(cc.validate(1).ok);
    }

    #[test]
    fn late_read_aborts() {
        let mut cc = TimestampOrdering::new(2);
        cc.begin(0, 1); // old
        cc.begin(1, 2); // young
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Granted); // wts=2
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Abort); // ts 1 < wts 2
    }

    #[test]
    fn late_write_after_read_aborts() {
        let mut cc = TimestampOrdering::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted); // rts=2
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Abort); // ts 1 < rts 2
    }

    #[test]
    fn read_after_older_write_is_fine() {
        let mut cc = TimestampOrdering::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted); // wts=1
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted); // ts 2 >= wts 1
    }

    #[test]
    fn restart_with_fresh_timestamp_succeeds() {
        let mut cc = TimestampOrdering::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.access(1, 5, true);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Abort);
        cc.abort(0);
        cc.begin(0, 3); // fresh, younger timestamp
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
    }

    #[test]
    fn conflicts_are_counted() {
        let mut cc = TimestampOrdering::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.access(1, 5, true);
        cc.access(0, 5, false);
        assert_eq!(cc.validate(0).conflicts, 1);
    }

    #[test]
    fn never_blocks_or_names_victims() {
        let mut cc = TimestampOrdering::new(1);
        cc.begin(0, 1);
        assert_eq!(cc.deadlock_victim(0), None);
    }

    #[test]
    fn reads_by_many_raise_rts_monotonically() {
        let mut cc = TimestampOrdering::new(3);
        cc.begin(0, 5);
        cc.begin(1, 3);
        cc.begin(2, 4);
        assert_eq!(cc.access(0, 7, false), AccessOutcome::Granted); // rts=5
        assert_eq!(cc.access(1, 7, false), AccessOutcome::Granted); // reads never conflict with reads
        // A writer younger than the max reader succeeds only at ts >= 5.
        assert_eq!(cc.access(2, 7, true), AccessOutcome::Abort); // ts 4 < rts 5
    }
}
