//! A tiny inline-first vector for lock-table hot-path collections.
//!
//! Lock entries overwhelmingly hold one or two holders ("most data items
//! are locked by a single transaction; shared read groups are small"), so
//! the first `N` elements live inline in the entry itself — no pointer
//! chase, no allocation. Rare larger groups spill into a `Vec` whose
//! capacity is retained when the entry is recycled through the arena, so
//! steady-state traffic stops touching the allocator entirely.

/// A vector of `Copy` elements whose first `N` live inline.
#[derive(Debug, Clone)]
pub(crate) struct InlineVec<T, const N: usize> {
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no allocation).
    pub(crate) fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(), // alc-lint: allow(hot-alloc, reason="empty spill vec is allocation-free; spill only allocates past the inline capacity")
        }
    }

    /// Number of elements.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element `i` (panics when out of bounds).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if i < N {
            self.inline[i]
        } else {
            self.spill[i - N]
        }
    }

    /// Overwrites element `i` (panics when out of bounds).
    #[inline]
    pub(crate) fn set(&mut self, i: usize, v: T) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if i < N {
            self.inline[i] = v;
        } else {
            self.spill[i - N] = v;
        }
    }

    /// Appends an element; spills past `N`.
    #[inline]
    pub(crate) fn push(&mut self, v: T) {
        if self.len < N {
            self.inline[self.len] = v;
        } else {
            // May allocate only while the spill grows beyond every size
            // this entry has seen before; capacity is retained by `clear`.
            let spill_len = self.len - N;
            if spill_len < self.spill.len() {
                self.spill[spill_len] = v;
            } else {
                self.spill.push(v);
            }
        }
        self.len += 1;
    }

    /// Removes all elements, keeping the spill capacity for reuse.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.len = 0;
    }

    /// Iterates the elements by value, in insertion order.
    #[inline]
    pub(crate) fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Keeps only the elements matching the predicate, preserving order.
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let mut w = 0;
        for r in 0..self.len {
            let v = self.get(r);
            if keep(&v) {
                if w < N {
                    self.inline[w] = v;
                } else {
                    self.spill[w - N] = v;
                }
                w += 1;
            }
        }
        self.len = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_inline_and_spill() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert_eq!(v.len(), 5);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        v.set(4, 40);
        assert_eq!(v.get(4), 40);
        v.set(1, 10);
        assert_eq!(v.get(1), 10);
    }

    #[test]
    fn retain_preserves_order_across_the_boundary() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..6 {
            v.push(i);
        }
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 2, 4]);
        // 4 moved from the spill into the inline region.
        assert_eq!(v.get(2), 4);
    }

    #[test]
    fn clear_then_reuse_keeps_working() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        v.clear();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(100 + i);
        }
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![100, 101, 102, 103]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_len_panics() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.get(1);
    }
}
