//! Timestamp-based deadlock *prevention*: wound-wait and wait-die.
//!
//! Two classic alternatives (Rosenkrantz et al. 1978; Bernstein et al.
//! 1987 §3) to the waits-for detection that [`super::TwoPhaseLocking`]
//! uses. Both order transactions by a priority timestamp (smaller =
//! older) and restrict who may wait for whom so that the waits-for graph
//! cannot contain a cycle:
//!
//! * **Wait-die** (non-preemptive): a requester may wait only for
//!   *younger* transactions; conflicting with an older one, it dies
//!   (aborts itself). Every wait edge points old → young.
//! * **Wound-wait** (preemptive): a requester *wounds* (aborts) every
//!   younger transaction in its way and waits only for older ones. Every
//!   wait edge points young → old.
//!
//! Either way cycles are impossible, so no detection pass is needed — the
//! price is aborts that a detector would have avoided. For the paper's
//! load-control question this is interesting because prevention converts
//! data contention into abort/restart work much earlier than detection
//! does, moving the thrashing knee.
//!
//! **Priority across restarts.** The liveness argument of both schemes
//! requires a restarted transaction to keep its original timestamp so it
//! eventually becomes the oldest and cannot be killed again. The engine
//! hands every rerun a fresh timestamp; this module therefore keeps the
//! first timestamp of an instance alive across abort/begin cycles and
//! only adopts a fresh one after a successful commit.

use super::locktable::{LockTable, Mode, RequestOutcome};
use super::{AccessOutcome, ConcurrencyControl, TxnId, ValidateOutcome};

/// Which prevention rule resolves a conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreventionPolicy {
    /// Older requesters wound (abort) younger lock holders.
    WoundWait,
    /// Younger requesters die (abort themselves) instead of waiting.
    WaitDie,
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// Priority timestamp, preserved across restarts of the same instance.
    eff_ts: u64,
    /// True between an abort and the next begin: the next begin keeps
    /// `eff_ts` instead of adopting the fresh engine timestamp.
    restart_pending: bool,
}

/// Strict 2PL with timestamp-based deadlock prevention.
pub struct Prevention {
    policy: PreventionPolicy,
    table: LockTable,
    slots: Vec<Slot>,
    /// Reusable buffer for the blocking-target scan of the wound/die rule.
    targets_scratch: Vec<TxnId>,
}

impl Prevention {
    /// Creates the protocol for `slots` transaction slots.
    pub fn new(policy: PreventionPolicy, slots: usize) -> Self {
        Prevention {
            policy,
            table: LockTable::new(slots),
            slots: vec![Slot::default(); slots], // alc-lint: allow(hot-alloc, reason="construction-time slot-table allocation")
            targets_scratch: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time scratch; retains capacity across calls")
        }
    }

    /// The effective (priority) timestamp of `txn` — differs from the
    /// engine's run timestamp while an instance is being retried.
    pub fn effective_ts(&self, txn: TxnId) -> u64 {
        self.slots[txn].eff_ts
    }

    /// Clears all lock state, retaining arena/queue capacity, for
    /// callers re-driving one protocol instance across runs.
    pub fn reset(&mut self) {
        self.table.reset();
        self.slots.fill(Slot::default());
    }
}

impl ConcurrencyControl for Prevention {
    fn name(&self) -> &'static str {
        match self.policy {
            PreventionPolicy::WoundWait => "wound-wait",
            PreventionPolicy::WaitDie => "wait-die",
        }
    }

    fn begin(&mut self, txn: TxnId, ts: u64) {
        self.table.begin(txn);
        let slot = &mut self.slots[txn];
        if slot.restart_pending {
            slot.restart_pending = false; // keep the original priority
        } else {
            slot.eff_ts = ts;
        }
    }

    fn access(&mut self, txn: TxnId, item: u64, write: bool) -> AccessOutcome {
        let mode = if write { Mode::Exclusive } else { Mode::Shared };
        match self.table.request(txn, item, mode) {
            RequestOutcome::Granted => AccessOutcome::Granted,
            // The engine follows a Blocked outcome with deadlock_victim()
            // calls, which is where the wound/die rule fires.
            RequestOutcome::Queued => AccessOutcome::Blocked,
        }
    }

    fn validate(&mut self, txn: TxnId) -> ValidateOutcome {
        ValidateOutcome {
            ok: true,
            conflicts: self.table.blocked_count(txn),
        }
    }

    fn commit(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut unblocked = Vec::new(); // alc-lint: allow(hot-alloc, reason="convenience wrapper; the engine hot path uses commit_into with a reusable buffer")
        self.commit_into(txn, &mut unblocked);
        unblocked
    }

    fn abort(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut unblocked = Vec::new(); // alc-lint: allow(hot-alloc, reason="convenience wrapper; the engine hot path uses abort_into with a reusable buffer")
        self.abort_into(txn, &mut unblocked);
        unblocked
    }

    fn commit_into(&mut self, txn: TxnId, unblocked: &mut Vec<TxnId>) {
        self.slots[txn].restart_pending = false;
        self.table.release_all_into(txn, unblocked);
    }

    fn abort_into(&mut self, txn: TxnId, unblocked: &mut Vec<TxnId>) {
        self.slots[txn].restart_pending = true;
        self.table.release_all_into(txn, unblocked);
    }

    /// The prevention rule, evaluated against everything the requester's
    /// pending request directly waits on. The engine calls this repeatedly
    /// until `None`, so wound-wait can kill several younger blockers one
    /// by one.
    fn deadlock_victim(&mut self, requester: TxnId) -> Option<TxnId> {
        let mut targets = std::mem::take(&mut self.targets_scratch);
        targets.clear();
        self.table.blocking_targets_into(requester, &mut targets);
        let my_ts = self.slots[requester].eff_ts;
        let victim = if targets.is_empty() {
            None // granted meanwhile, or not waiting at all
        } else {
            match self.policy {
                PreventionPolicy::WoundWait => targets
                    .iter()
                    .copied()
                    .filter(|&t| self.slots[t].eff_ts > my_ts)
                    .max_by_key(|&t| self.slots[t].eff_ts),
                PreventionPolicy::WaitDie => targets
                    .iter()
                    .any(|&t| self.slots[t].eff_ts < my_ts)
                    .then_some(requester),
            }
        };
        self.targets_scratch = targets;
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wound_wait(slots: usize) -> Prevention {
        Prevention::new(PreventionPolicy::WoundWait, slots)
    }

    fn wait_die(slots: usize) -> Prevention {
        Prevention::new(PreventionPolicy::WaitDie, slots)
    }

    #[test]
    fn names_differ_by_policy() {
        assert_eq!(wound_wait(1).name(), "wound-wait");
        assert_eq!(wait_die(1).name(), "wait-die");
    }

    #[test]
    fn compatible_readers_never_fight() {
        for mut cc in [wound_wait(2), wait_die(2)] {
            cc.begin(0, 1);
            cc.begin(1, 2);
            assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
            assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted);
            assert_eq!(cc.deadlock_victim(1), None);
        }
    }

    #[test]
    fn wound_wait_older_wounds_younger_holder() {
        let mut cc = wound_wait(2);
        cc.begin(0, 10); // older
        cc.begin(1, 20); // younger
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), Some(1), "younger holder is wounded");
        // After the wound is executed (engine aborts 1), 0 is granted.
        let unblocked = cc.abort(1);
        assert_eq!(unblocked, vec![0]);
        assert_eq!(cc.deadlock_victim(0), None);
    }

    #[test]
    fn wound_wait_younger_waits_for_older() {
        let mut cc = wound_wait(2);
        cc.begin(0, 10); // older
        cc.begin(1, 20); // younger
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), None, "younger must simply wait");
        let unblocked = cc.commit(0);
        assert_eq!(unblocked, vec![1]);
    }

    #[test]
    fn wound_wait_kills_youngest_first() {
        let mut cc = wound_wait(3);
        cc.begin(0, 10);
        cc.begin(1, 20);
        cc.begin(2, 30);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(2, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), Some(2), "youngest blocker first");
        cc.abort(2);
        assert_eq!(cc.deadlock_victim(0), Some(1), "then the next one");
        let unblocked = cc.abort(1);
        assert_eq!(unblocked, vec![0]);
        assert_eq!(cc.deadlock_victim(0), None);
    }

    #[test]
    fn wait_die_younger_dies_on_older_holder() {
        let mut cc = wait_die(2);
        cc.begin(0, 10); // older
        cc.begin(1, 20); // younger
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), Some(1), "younger requester dies");
    }

    #[test]
    fn wait_die_older_waits_for_younger() {
        let mut cc = wait_die(2);
        cc.begin(0, 10); // older
        cc.begin(1, 20); // younger
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), None, "older waits");
        let unblocked = cc.commit(1);
        assert_eq!(unblocked, vec![0]);
    }

    #[test]
    fn wait_die_considers_queued_ahead_transactions() {
        // Item held by a young writer; an old waiter queues; a middle-aged
        // requester queues behind it. The middle one waits for the *old*
        // queued-ahead transaction, so wait-die kills the requester.
        let mut cc = wait_die(3);
        cc.begin(0, 30); // young holder
        cc.begin(1, 10); // oldest
        cc.begin(2, 20); // middle
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), None, "oldest waits for young holder");
        assert_eq!(cc.access(2, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(2), Some(2), "waits behind an older txn");
    }

    #[test]
    fn restart_preserves_priority() {
        let mut cc = wait_die(2);
        cc.begin(0, 10);
        cc.begin(1, 20);
        cc.access(0, 5, true);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), Some(1));
        cc.abort(1);
        // The engine restarts 1 with a fresh (larger) timestamp, but its
        // priority must stay 20 so it does not age backwards.
        cc.begin(1, 99);
        assert_eq!(cc.effective_ts(1), 20);
        // After a commit the next begin adopts the fresh timestamp again.
        cc.commit(1);
        cc.begin(1, 100);
        assert_eq!(cc.effective_ts(1), 100);
    }

    #[test]
    fn wound_wait_two_way_conflict_cannot_cycle() {
        // The classic deadlock shape: 0 and 1 each hold one item and
        // request the other's. Under wound-wait the older immediately
        // wounds the younger — no waiting cycle can form.
        let mut cc = wound_wait(2);
        cc.begin(0, 10);
        cc.begin(1, 20);
        assert_eq!(cc.access(0, 1, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 2, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 1, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), None, "younger waits for older");
        assert_eq!(cc.access(0, 2, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), Some(1), "older wounds the younger");
        let unblocked = cc.abort(1);
        assert_eq!(unblocked, vec![0], "wound resolves the would-be deadlock");
    }

    #[test]
    fn wait_die_two_way_conflict_cannot_cycle() {
        let mut cc = wait_die(2);
        cc.begin(0, 10);
        cc.begin(1, 20);
        assert_eq!(cc.access(0, 1, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 2, true), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 2, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), None, "older waits");
        assert_eq!(cc.access(1, 1, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), Some(1), "younger dies, cycle broken");
        let unblocked = cc.abort(1);
        assert_eq!(unblocked, vec![0]);
    }

    #[test]
    fn upgrade_conflict_resolves_under_both_policies() {
        // The conversion deadlock shape (two S holders both upgrading)
        // cannot wedge a prevention protocol: the priority rule kills one
        // side as soon as the second upgrade blocks.
        for policy in [PreventionPolicy::WoundWait, PreventionPolicy::WaitDie] {
            let mut cc = Prevention::new(policy, 2);
            cc.begin(0, 10); // older
            cc.begin(1, 20); // younger
            assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
            assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted);
            match policy {
                PreventionPolicy::WoundWait => {
                    // The older upgrader wounds the younger S holder.
                    assert_eq!(cc.access(0, 5, true), AccessOutcome::Blocked);
                    assert_eq!(cc.deadlock_victim(0), Some(1));
                    let unblocked = cc.abort(1);
                    assert_eq!(unblocked, vec![0], "upgrade granted after wound");
                }
                PreventionPolicy::WaitDie => {
                    // The younger upgrader dies on the older S holder.
                    assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
                    assert_eq!(cc.deadlock_victim(1), Some(1));
                    let unblocked = cc.abort(1);
                    assert_eq!(
                        unblocked,
                        Vec::<TxnId>::new(),
                        "sole holder 0 needs no grant"
                    );
                    // And the older upgrade now succeeds in place.
                    assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
                }
            }
        }
    }

    #[test]
    fn reset_clears_locks_and_pending_restarts() {
        let mut cc = wound_wait(2);
        cc.begin(0, 10);
        cc.access(0, 5, true);
        cc.abort(0); // would normally preserve priority across the rerun
        cc.reset();
        cc.begin(0, 99);
        assert_eq!(cc.effective_ts(0), 99, "reset must clear restart_pending");
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
    }

    #[test]
    fn conflicts_count_blocks() {
        let mut cc = wound_wait(2);
        cc.begin(0, 10);
        cc.begin(1, 20);
        cc.access(0, 5, true);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Blocked);
        cc.commit(0);
        assert_eq!(cc.validate(1).conflicts, 1);
        assert!(cc.validate(1).ok);
    }

    #[test]
    fn wound_ignores_older_holders() {
        let mut cc = wound_wait(3);
        cc.begin(0, 20); // requester, middle age
        cc.begin(1, 10); // older holder
        cc.begin(2, 30); // younger holder
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(2, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), Some(2), "only the younger is wounded");
        cc.abort(2);
        assert_eq!(cc.deadlock_victim(0), None, "then 0 waits for the older");
    }
}
