//! Multiversion timestamp ordering (MVTO).
//!
//! The multiversion member of §1's non-blocking class (Bernstein et al.
//! 1987 §5): every committed write of item `x` creates a new *version*
//! stamped with its writer's timestamp. A reader with timestamp `ts`
//! reads the youngest committed version not younger than itself
//! (`max wts ≤ ts`) and records its read timestamp on that version.
//! Reads therefore never block and never abort (unless their snapshot has
//! been garbage-collected); only writers can be rejected — a write by
//! `ts` must abort if some younger transaction already read the version
//! the write would have superseded (`max_rts > ts` on the version
//! preceding the write's slot).
//!
//! This implementation uses the *commit-time install* variant: writes are
//! buffered privately and versions are installed atomically at commit, so
//! readers only ever see committed data (recoverability for free). The
//! write check runs twice — optimistically at access time (early abort)
//! and authoritatively at validation.
//!
//! Version histories are pruned to the newest [`Mvto::max_versions`] per
//! item; a reader whose snapshot predates the oldest retained version
//! aborts with a "snapshot too old" outcome, exactly like the error
//! real multiversion systems raise.

use super::{AccessOutcome, ConcurrencyControl, TxnId, ValidateOutcome};

/// Cap on the eagerly preallocated version-store length; items beyond it
/// (pathological `db_size` settings) grow the store on demand.
const PREALLOC_CAP: usize = 1 << 22;

/// One committed version of an item.
#[derive(Debug, Clone, Copy)]
struct Version {
    /// Writer's timestamp.
    wts: u64,
    /// Largest timestamp that read this version.
    max_rts: u64,
}

#[derive(Debug, Clone, Default)]
struct Slot {
    ts: u64,
    /// `(item, wts of the version read)` in access order.
    reads: Vec<(u64, u64)>,
    /// Buffered write intents.
    writes: Vec<u64>,
    /// Read-invalidation conflicts charged to this run.
    conflicts: u64,
}

/// Multiversion timestamp ordering with commit-time version install.
pub struct Mvto {
    /// Version chains, ascending by `wts`, direct-indexed by item. An
    /// empty chain means only the implicit initial version
    /// `{wts: 0, max_rts: 0}` exists (materialized lazily on first
    /// touch).
    store: Vec<Vec<Version>>,
    slots: Vec<Slot>,
    max_versions: usize,
}

impl Mvto {
    /// Default bound on retained versions per item.
    pub const DEFAULT_MAX_VERSIONS: usize = 16;

    /// Creates the protocol for `slots` transaction slots with the
    /// default version-retention bound; the version store grows on first
    /// touch.
    pub fn new(slots: usize) -> Self {
        Self::with_max_versions(slots, Self::DEFAULT_MAX_VERSIONS)
    }

    /// Creates the protocol with the version store preallocated for
    /// `db_size` items, so steady state never touches the allocator once
    /// the per-item chains reach their retention bound.
    pub fn with_db_size(slots: usize, db_size: usize) -> Self {
        let mut cc = Self::with_max_versions(slots, Self::DEFAULT_MAX_VERSIONS);
        cc.store.resize_with(db_size.min(PREALLOC_CAP), Vec::new); // alc-lint: allow(hot-alloc, reason="construction-time preallocation; fresh chains are empty and allocation-free")
        cc
    }

    /// Creates the protocol retaining at most `max_versions` committed
    /// versions per item (≥ 1).
    pub fn with_max_versions(slots: usize, max_versions: usize) -> Self {
        assert!(max_versions >= 1, "at least one version must be retained");
        Mvto {
            store: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time store; preallocated by with_db_size")
            slots: vec![Slot::default(); slots], // alc-lint: allow(hot-alloc, reason="construction-time slot-table allocation")
            max_versions,
        }
    }

    /// The version-retention bound per item.
    pub fn max_versions(&self) -> usize {
        self.max_versions
    }

    /// Committed versions currently retained for `item` (1 if untouched:
    /// the implicit initial version).
    pub fn version_count(&self, item: u64) -> usize {
        match self.store.get(item as usize) {
            Some(chain) if !chain.is_empty() => chain.len(),
            _ => 1,
        }
    }

    /// The reads `txn` has performed in its current run, as
    /// `(item, wts of the version read)` pairs.
    pub fn reads_of(&self, txn: TxnId) -> &[(u64, u64)] {
        &self.slots[txn].reads
    }

    /// The write intents `txn` has buffered in its current run.
    pub fn writes_of(&self, txn: TxnId) -> &[u64] {
        &self.slots[txn].writes
    }

    fn chain(&mut self, item: u64) -> &mut Vec<Version> {
        let i = item as usize;
        if i >= self.store.len() {
            self.store.resize_with(i + 1, Vec::new); // alc-lint: allow(hot-alloc, reason="first-touch growth past the preallocation; never hit when db_size was known")
        }
        let chain = &mut self.store[i];
        if chain.is_empty() {
            chain.push(Version { wts: 0, max_rts: 0 });
        }
        chain
    }

    /// Index of the youngest version with `wts ≤ ts`, or `None` when the
    /// snapshot has been pruned away.
    fn visible_index(chain: &[Version], ts: u64) -> Option<usize> {
        chain.iter().rposition(|v| v.wts <= ts)
    }

    /// The write rule: `ts` may write `item` iff nobody younger has read
    /// the version the write would supersede.
    fn write_permitted(chain: &[Version], ts: u64) -> bool {
        match Self::visible_index(chain, ts) {
            Some(i) => chain[i].max_rts <= ts,
            // Snapshot pruned: the write would slot below the retention
            // horizon where reads can no longer be tracked.
            None => false,
        }
    }
}

impl ConcurrencyControl for Mvto {
    fn name(&self) -> &'static str {
        "mvto"
    }

    fn begin(&mut self, txn: TxnId, ts: u64) {
        let slot = &mut self.slots[txn];
        slot.ts = ts;
        slot.reads.clear();
        slot.writes.clear();
        slot.conflicts = 0;
    }

    fn access(&mut self, txn: TxnId, item: u64, write: bool) -> AccessOutcome {
        let ts = self.slots[txn].ts;
        let chain = self.chain(item);
        if write {
            if !Self::write_permitted(chain, ts) {
                self.slots[txn].conflicts += 1;
                return AccessOutcome::Abort;
            }
            // Repeated writes to one item collapse into a single version.
            if !self.slots[txn].writes.contains(&item) {
                self.slots[txn].writes.push(item);
            }
            AccessOutcome::Granted
        } else {
            match Self::visible_index(chain, ts) {
                Some(i) => {
                    chain[i].max_rts = chain[i].max_rts.max(ts);
                    let wts = chain[i].wts;
                    self.slots[txn].reads.push((item, wts));
                    AccessOutcome::Granted
                }
                None => {
                    // Snapshot too old: every version ≤ ts was pruned.
                    self.slots[txn].conflicts += 1;
                    AccessOutcome::Abort
                }
            }
        }
    }

    fn validate(&mut self, txn: TxnId) -> ValidateOutcome {
        // Untouched item: only the initial version, unread.
        const INITIAL: &[Version] = &[Version { wts: 0, max_rts: 0 }];
        let ts = self.slots[txn].ts;
        let mut failed = 0u64;
        for &item in &self.slots[txn].writes {
            let chain = match self.store.get(item as usize) {
                Some(chain) if !chain.is_empty() => chain.as_slice(),
                _ => INITIAL,
            };
            if !Self::write_permitted(chain, ts) {
                failed += 1;
            }
        }
        self.slots[txn].conflicts += failed;
        ValidateOutcome {
            ok: failed == 0,
            conflicts: self.slots[txn].conflicts,
        }
    }

    fn commit(&mut self, txn: TxnId) -> Vec<TxnId> {
        let ts = self.slots[txn].ts;
        // Move the write list out to satisfy the borrow checker, then
        // restore the (cleared) buffer to keep its allocation.
        let mut writes = std::mem::take(&mut self.slots[txn].writes);
        let max_versions = self.max_versions;
        for &item in &writes {
            let chain = self.chain(item);
            // Insert in wts order; the new version may land *behind*
            // younger committed versions (interval insert).
            let pos = chain.partition_point(|v| v.wts <= ts);
            debug_assert!(
                pos == 0 || chain[pos - 1].wts < ts,
                "duplicate write timestamp {ts}"
            );
            chain.insert(
                pos,
                Version {
                    wts: ts,
                    max_rts: ts,
                },
            );
            if chain.len() > max_versions {
                let excess = chain.len() - max_versions;
                chain.drain(..excess);
            }
        }
        writes.clear();
        self.slots[txn].writes = writes;
        self.slots[txn].reads.clear();
        Vec::new() // alc-lint: allow(hot-alloc, reason="empty Vec::new is allocation-free; MVTO never wakes blocked txns")
    }

    fn abort(&mut self, txn: TxnId) -> Vec<TxnId> {
        let slot = &mut self.slots[txn];
        slot.reads.clear();
        slot.writes.clear();
        Vec::new() // alc-lint: allow(hot-alloc, reason="empty Vec::new is allocation-free; MVTO never wakes blocked txns")
    }

    fn deadlock_victim(&mut self, _requester: TxnId) -> Option<TxnId> {
        None // nothing ever blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_never_block_and_see_initial_version() {
        let mut cc = Mvto::new(2);
        cc.begin(0, 5);
        assert_eq!(cc.access(0, 7, false), AccessOutcome::Granted);
        assert_eq!(cc.reads_of(0), &[(7, 0)]);
    }

    #[test]
    fn reader_sees_latest_committed_version_not_younger() {
        let mut cc = Mvto::new(3);
        cc.begin(0, 10);
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Granted);
        assert!(cc.validate(0).ok);
        cc.commit(0);
        cc.begin(1, 20);
        assert_eq!(cc.access(1, 7, true), AccessOutcome::Granted);
        assert!(cc.validate(1).ok);
        cc.commit(1);
        // A reader between the two writers sees version 10, not 20.
        cc.begin(2, 15);
        assert_eq!(cc.access(2, 7, false), AccessOutcome::Granted);
        assert_eq!(cc.reads_of(2), &[(7, 10)]);
    }

    #[test]
    fn younger_read_invalidates_older_write_at_validate() {
        let mut cc = Mvto::new(2);
        cc.begin(0, 10); // older writer
        cc.begin(1, 20); // younger reader
        assert_eq!(cc.access(1, 7, false), AccessOutcome::Granted); // reads v0
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Abort, "early check");
        // Had the write been buffered before the read, validation catches it.
        let mut cc = Mvto::new(2);
        cc.begin(0, 10);
        cc.begin(1, 20);
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 7, false), AccessOutcome::Granted);
        let v = cc.validate(0);
        assert!(!v.ok, "commit would invalidate the younger read");
        assert_eq!(v.conflicts, 1);
    }

    #[test]
    fn older_read_does_not_disturb_younger_write() {
        let mut cc = Mvto::new(2);
        cc.begin(0, 10); // older reader
        cc.begin(1, 20); // younger writer
        assert_eq!(cc.access(0, 7, false), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 7, true), AccessOutcome::Granted);
        assert!(cc.validate(1).ok, "rts 10 < wts 20 is harmless");
        cc.commit(1);
        // And the old reader still sees v0 on a re-read.
        assert_eq!(cc.access(0, 7, false), AccessOutcome::Granted);
        assert_eq!(cc.reads_of(0), &[(7, 0), (7, 0)]);
    }

    #[test]
    fn interval_insert_behind_younger_version() {
        // A younger writer commits first; the older writer then slots its
        // version *behind* — both serialize in timestamp order.
        let mut cc = Mvto::new(3);
        cc.begin(1, 20);
        assert_eq!(cc.access(1, 7, true), AccessOutcome::Granted);
        assert!(cc.validate(1).ok);
        cc.commit(1);
        cc.begin(0, 10);
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Granted);
        assert!(cc.validate(0).ok);
        cc.commit(0);
        // Readers at 15 and 25 see the respective versions.
        cc.begin(2, 15);
        cc.access(2, 7, false);
        assert_eq!(cc.reads_of(2), &[(7, 10)]);
        cc.begin(2, 25);
        cc.access(2, 7, false);
        assert_eq!(cc.reads_of(2), &[(7, 20)]);
    }

    #[test]
    fn write_write_without_reads_is_harmless() {
        let mut cc = Mvto::new(2);
        cc.begin(0, 10);
        cc.begin(1, 20);
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 7, true), AccessOutcome::Granted);
        assert!(cc.validate(1).ok);
        cc.commit(1);
        assert!(cc.validate(0).ok, "blind write behind a blind write is fine");
        cc.commit(0);
        assert_eq!(cc.version_count(7), 3); // v0, v10, v20
    }

    #[test]
    fn own_write_then_read_sees_committed_state_only() {
        // The commit-time install variant buffers writes privately; a
        // re-read within the same run still sees the committed snapshot.
        let mut cc = Mvto::new(1);
        cc.begin(0, 10);
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 7, false), AccessOutcome::Granted);
        assert_eq!(cc.reads_of(0), &[(7, 0)]);
    }

    #[test]
    fn abort_discards_buffered_writes() {
        let mut cc = Mvto::new(2);
        cc.begin(0, 10);
        cc.access(0, 7, true);
        cc.abort(0);
        assert_eq!(cc.version_count(7), 1, "nothing installed");
        cc.begin(1, 20);
        cc.access(1, 7, false);
        assert_eq!(cc.reads_of(1), &[(7, 0)]);
    }

    #[test]
    fn gc_caps_version_chains() {
        let mut cc = Mvto::with_max_versions(1, 4);
        for ts in 1..=10u64 {
            cc.begin(0, ts);
            assert_eq!(cc.access(0, 7, true), AccessOutcome::Granted);
            assert!(cc.validate(0).ok);
            cc.commit(0);
        }
        assert_eq!(cc.version_count(7), 4);
    }

    #[test]
    fn pruned_snapshot_aborts_old_reader() {
        let mut cc = Mvto::with_max_versions(2, 2);
        for ts in [10u64, 20, 30] {
            cc.begin(0, ts);
            cc.access(0, 7, true);
            assert!(cc.validate(0).ok);
            cc.commit(0);
        }
        // Versions 20 and 30 retained; a reader at 15 predates both.
        cc.begin(1, 15);
        assert_eq!(cc.access(1, 7, false), AccessOutcome::Abort);
        // A writer at 15 is likewise below the retention horizon.
        cc.begin(1, 15);
        assert_eq!(cc.access(1, 7, true), AccessOutcome::Abort);
    }

    #[test]
    fn never_names_deadlock_victims() {
        let mut cc = Mvto::new(2);
        cc.begin(0, 1);
        assert_eq!(cc.deadlock_victim(0), None);
    }

    #[test]
    fn conflicts_are_reported_per_run() {
        let mut cc = Mvto::new(2);
        cc.begin(1, 20);
        cc.access(1, 7, false);
        cc.begin(0, 10);
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Abort);
        // The engine aborts and restarts with a fresh ts; counters reset.
        cc.abort(0);
        cc.begin(0, 30);
        assert_eq!(cc.access(0, 7, true), AccessOutcome::Granted);
        let v = cc.validate(0);
        assert!(v.ok);
        assert_eq!(v.conflicts, 0);
    }
}
