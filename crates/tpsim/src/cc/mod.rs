//! Concurrency control protocols.
//!
//! §1 splits CC algorithms into blocking (two-phase locking: data
//! contention shows up as a quadratically growing blocked set) and
//! non-blocking (timestamp ordering, optimistic: data contention is
//! resolved by abort/restart and thereby converted into resource
//! contention). The simulator implements one of each class plus the
//! paper's actual protocol:
//!
//! * [`Certification`] — timestamp certification, §7's choice;
//! * [`TwoPhaseLocking`] — strict 2PL with waits-for deadlock detection;
//! * [`TimestampOrdering`] — basic T/O;
//! * [`Prevention`] — strict 2PL with wound-wait or wait-die deadlock
//!   *prevention* instead of detection;
//! * [`Mvto`] — multiversion timestamp ordering (reads never abort).
//!
//! The engine talks to all of them through [`ConcurrencyControl`];
//! protocols keep their own per-transaction bookkeeping keyed by
//! [`TxnId`].

mod certification;
mod inline_vec;
mod locktable;
mod mvto;
mod prevention;
mod timestamp;
mod twopl;

pub use certification::Certification;
pub use mvto::Mvto;
pub use prevention::{Prevention, PreventionPolicy};
pub use timestamp::TimestampOrdering;
pub use twopl::TwoPhaseLocking;

use crate::config::CcKind;

/// Identifies a transaction slot (terminal) in the simulator.
pub type TxnId = usize;

/// Result of requesting one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Proceed with the phase.
    Granted,
    /// The transaction must wait (2PL lock conflict). The engine parks it
    /// and resumes when a release grants the request.
    Blocked,
    /// The protocol killed the transaction on the spot (T/O late access).
    Abort,
}

/// Result of commit-time validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidateOutcome {
    /// Whether the transaction may commit.
    pub ok: bool,
    /// Data conflicts charged to this transaction (stale reads found at
    /// certification, lock waits endured under 2PL, …) — the quantity
    /// Iyer's rule bounds.
    pub conflicts: u64,
}

/// A pluggable concurrency-control protocol.
pub trait ConcurrencyControl {
    /// Protocol name for tables.
    fn name(&self) -> &'static str;

    /// Starts a (re)run of `txn` with a fresh timestamp (larger = younger).
    fn begin(&mut self, txn: TxnId, ts: u64);

    /// Requests access to `item`, `write` or read.
    fn access(&mut self, txn: TxnId, item: u64, write: bool) -> AccessOutcome;

    /// Commit-time validation (certification point).
    fn validate(&mut self, txn: TxnId) -> ValidateOutcome;

    /// Finalizes a validated commit: installs writes / releases locks.
    /// Returns transactions whose pending lock requests are now granted.
    fn commit(&mut self, txn: TxnId) -> Vec<TxnId>;

    /// Aborts `txn`, releasing whatever it held. Returns unblocked
    /// transactions.
    fn abort(&mut self, txn: TxnId) -> Vec<TxnId>;

    /// Allocation-free variant of [`ConcurrencyControl::commit`]: appends
    /// the unblocked transactions to `unblocked` instead of returning a
    /// fresh `Vec`. The engine's hot path calls this with a pooled
    /// buffer; lock-based protocols override it to bypass the allocating
    /// path entirely. The default forwards to `commit` (whose empty-`Vec`
    /// returns never allocate for the non-blocking protocols).
    fn commit_into(&mut self, txn: TxnId, unblocked: &mut Vec<TxnId>) {
        unblocked.extend(self.commit(txn));
    }

    /// Allocation-free variant of [`ConcurrencyControl::abort`]; see
    /// [`ConcurrencyControl::commit_into`].
    fn abort_into(&mut self, txn: TxnId, unblocked: &mut Vec<TxnId>) {
        unblocked.extend(self.abort(txn));
    }

    /// After `requester` blocked: names a transaction that must be
    /// aborted for progress per the protocol's policy — a detected cycle's
    /// youngest member (2PL detection), a younger blocker to preempt
    /// (wound-wait) or the requester itself (wait-die). The engine calls
    /// this repeatedly, aborting each named victim, until it returns
    /// `None`; implementations must re-examine the current wait state on
    /// every call.
    fn deadlock_victim(&mut self, requester: TxnId) -> Option<TxnId>;
}

/// Instantiates a protocol by kind for `slots` transaction slots against
/// a database of `db_size` items (the non-locking protocols preallocate
/// their direct-indexed per-item tables from it).
pub fn make_cc(kind: CcKind, slots: usize, db_size: usize) -> Box<dyn ConcurrencyControl> {
    match kind {
        // alc-lint: allow(hot-alloc, reason="one boxed protocol per run, built before the measurement window")
        CcKind::Certification => Box::new(Certification::with_db_size(slots, db_size)),
        CcKind::TwoPhaseLocking => Box::new(TwoPhaseLocking::new(slots)), // alc-lint: allow(hot-alloc, reason="one boxed protocol per run")
        CcKind::TimestampOrdering => Box::new(TimestampOrdering::with_db_size(slots, db_size)), // alc-lint: allow(hot-alloc, reason="one boxed protocol per run")
        CcKind::WoundWait => Box::new(Prevention::new(PreventionPolicy::WoundWait, slots)), // alc-lint: allow(hot-alloc, reason="one boxed protocol per run")
        CcKind::WaitDie => Box::new(Prevention::new(PreventionPolicy::WaitDie, slots)), // alc-lint: allow(hot-alloc, reason="one boxed protocol per run")
        CcKind::Multiversion => Box::new(Mvto::with_db_size(slots, db_size)), // alc-lint: allow(hot-alloc, reason="one boxed protocol per run")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all_kinds() {
        for (kind, name) in [
            (CcKind::Certification, "certification"),
            (CcKind::TwoPhaseLocking, "2pl"),
            (CcKind::TimestampOrdering, "timestamp-ordering"),
            (CcKind::WoundWait, "wound-wait"),
            (CcKind::WaitDie, "wait-die"),
            (CcKind::Multiversion, "mvto"),
        ] {
            let cc = make_cc(kind, 4, 100);
            assert_eq!(cc.name(), name);
        }
    }
}
