//! Timestamp certification (optimistic backward validation).
//!
//! §7: "As CC algorithm we use a timestamp certification scheme
//! [Bernstein et al., 1987], because an optimistic protocol is more
//! interesting due to its relationship between data contention and
//! resource contention."
//!
//! Execution never blocks. At commit the transaction is *certified*: it
//! may commit iff no item it read or wrote was overwritten by a
//! transaction that committed after it started (first-committer-wins on
//! read-write and write-write conflicts). Certification state is one
//! commit-sequence number per item — `wts[item]` = sequence number of the
//! last committed writer — plus the global commit counter.
//!
//! Both per-item tables (`wts` and the validate-time dedup marks) are
//! direct-indexed, db-sized vectors rather than hash maps: item ids are
//! dense `0..db_size`, so the arena move that already de-allocated the
//! lock table applies here too — no hashing on the access path and no
//! allocation per validate (the dedup set is an epoch-stamped array).

use super::{AccessOutcome, ConcurrencyControl, TxnId, ValidateOutcome};

/// Cap on the eagerly preallocated per-item table length; items beyond it
/// (pathological `db_size` settings) grow the tables on demand.
const PREALLOC_CAP: usize = 1 << 22;

#[derive(Debug, Default, Clone)]
struct TxnState {
    start_seq: u64,
    /// (item, wrote) — insertion-ordered access list; duplicates are fine
    /// (re-reading an item cannot add conflicts, dedup at validate).
    accesses: Vec<(u64, bool)>,
}

/// The certification protocol.
pub struct Certification {
    commit_seq: u64,
    /// Last committed writer per item, direct-indexed. Items never
    /// written hold 0 ("before every start").
    wts: Vec<u64>,
    /// Validate-time dedup marks: `seen[item] == epoch` means the item
    /// was already counted in the current validation.
    seen: Vec<u64>,
    epoch: u64,
    txns: Vec<TxnState>,
}

impl Certification {
    /// Creates the protocol for `slots` transaction slots; the item
    /// tables grow on first touch.
    pub fn new(slots: usize) -> Self {
        Self::with_db_size(slots, 0)
    }

    /// Creates the protocol with the item tables preallocated for
    /// `db_size` items, so steady state never touches the allocator.
    pub fn with_db_size(slots: usize, db_size: usize) -> Self {
        let prealloc = db_size.min(PREALLOC_CAP);
        Certification {
            commit_seq: 0,
            wts: vec![0; prealloc], // alc-lint: allow(hot-alloc, reason="construction-time preallocation of the per-item table")
            seen: vec![0; prealloc], // alc-lint: allow(hot-alloc, reason="construction-time preallocation of the per-item table")
            epoch: 0,
            txns: vec![TxnState::default(); slots], // alc-lint: allow(hot-alloc, reason="construction-time slot-table allocation")
        }
    }

    /// The number of commits certified so far.
    pub fn commits(&self) -> u64 {
        self.commit_seq
    }

    fn conflicts_of(&mut self, txn: TxnId) -> u64 {
        self.epoch += 1;
        let Certification {
            txns,
            seen,
            wts,
            epoch,
            ..
        } = self;
        let st = &txns[txn];
        let mut conflicts = 0;
        for &(item, _) in &st.accesses {
            let i = item as usize;
            if i >= seen.len() {
                seen.resize(i + 1, 0);
            }
            if seen[i] == *epoch {
                continue;
            }
            seen[i] = *epoch;
            if wts.get(i).copied().unwrap_or(0) > st.start_seq {
                conflicts += 1;
            }
        }
        conflicts
    }
}

impl ConcurrencyControl for Certification {
    fn name(&self) -> &'static str {
        "certification"
    }

    fn begin(&mut self, txn: TxnId, _ts: u64) {
        let st = &mut self.txns[txn];
        st.start_seq = self.commit_seq;
        st.accesses.clear();
    }

    fn access(&mut self, txn: TxnId, item: u64, write: bool) -> AccessOutcome {
        self.txns[txn].accesses.push((item, write));
        AccessOutcome::Granted
    }

    fn validate(&mut self, txn: TxnId) -> ValidateOutcome {
        let conflicts = self.conflicts_of(txn);
        ValidateOutcome {
            ok: conflicts == 0,
            conflicts,
        }
    }

    fn commit(&mut self, txn: TxnId) -> Vec<TxnId> {
        self.commit_seq += 1;
        let seq = self.commit_seq;
        // Move the access list out to satisfy the borrow checker, then
        // restore the (cleared) buffer to keep its allocation.
        let mut accesses = std::mem::take(&mut self.txns[txn].accesses);
        for &(item, wrote) in &accesses {
            if wrote {
                let i = item as usize;
                if i >= self.wts.len() {
                    self.wts.resize(i + 1, 0);
                }
                self.wts[i] = seq;
            }
        }
        accesses.clear();
        self.txns[txn].accesses = accesses;
        Vec::new() // alc-lint: allow(hot-alloc, reason="empty Vec::new is allocation-free; certification never wakes blocked txns")
    }

    fn abort(&mut self, txn: TxnId) -> Vec<TxnId> {
        self.txns[txn].accesses.clear();
        Vec::new() // alc-lint: allow(hot-alloc, reason="empty Vec::new is allocation-free; certification never wakes blocked txns")
    }

    fn deadlock_victim(&mut self, _requester: TxnId) -> Option<TxnId> {
        None // optimistic execution never blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_accesses(cc: &mut Certification, txn: TxnId, items: &[(u64, bool)]) {
        for &(item, w) in items {
            assert_eq!(cc.access(txn, item, w), AccessOutcome::Granted);
        }
    }

    #[test]
    fn lone_transaction_commits() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        run_accesses(&mut cc, 0, &[(1, false), (2, true)]);
        let v = cc.validate(0);
        assert!(v.ok);
        assert_eq!(v.conflicts, 0);
        cc.commit(0);
        assert_eq!(cc.commits(), 1);
    }

    #[test]
    fn stale_read_fails_certification() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1); // T0 starts
        cc.begin(1, 2); // T1 starts
        run_accesses(&mut cc, 0, &[(7, false)]); // T0 reads item 7
        run_accesses(&mut cc, 1, &[(7, true)]); // T1 writes item 7
        assert!(cc.validate(1).ok);
        cc.commit(1); // T1 commits first
        let v = cc.validate(0);
        assert!(!v.ok, "T0 read item 7 which T1 overwrote after T0 started");
        assert_eq!(v.conflicts, 1);
    }

    #[test]
    fn write_write_conflict_detected() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        run_accesses(&mut cc, 0, &[(5, true)]);
        run_accesses(&mut cc, 1, &[(5, true)]);
        cc.validate(1);
        cc.commit(1);
        assert!(!cc.validate(0).ok);
    }

    #[test]
    fn disjoint_access_sets_both_commit() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        run_accesses(&mut cc, 0, &[(1, true), (2, true)]);
        run_accesses(&mut cc, 1, &[(3, true), (4, true)]);
        assert!(cc.validate(1).ok);
        cc.commit(1);
        assert!(cc.validate(0).ok);
        cc.commit(0);
        assert_eq!(cc.commits(), 2);
    }

    #[test]
    fn reads_do_not_invalidate_reads() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        run_accesses(&mut cc, 0, &[(9, false)]);
        run_accesses(&mut cc, 1, &[(9, false)]);
        cc.validate(1);
        cc.commit(1);
        assert!(cc.validate(0).ok, "concurrent readers never conflict");
    }

    #[test]
    fn commit_before_my_start_is_harmless() {
        let mut cc = Certification::new(2);
        cc.begin(1, 1);
        run_accesses(&mut cc, 1, &[(3, true)]);
        cc.validate(1);
        cc.commit(1);
        // T0 starts only now: T1's write is before T0's start.
        cc.begin(0, 2);
        run_accesses(&mut cc, 0, &[(3, false)]);
        assert!(cc.validate(0).ok);
    }

    #[test]
    fn restart_gets_fresh_snapshot() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        run_accesses(&mut cc, 0, &[(7, false)]);
        cc.begin(1, 2);
        run_accesses(&mut cc, 1, &[(7, true)]);
        cc.validate(1);
        cc.commit(1);
        assert!(!cc.validate(0).ok);
        cc.abort(0);
        // Restart after the conflicting commit: now clean.
        cc.begin(0, 3);
        run_accesses(&mut cc, 0, &[(7, false)]);
        assert!(cc.validate(0).ok);
    }

    #[test]
    fn multiple_conflicts_counted_once_per_item() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        run_accesses(&mut cc, 0, &[(1, false), (1, false), (2, false)]);
        cc.begin(1, 2);
        run_accesses(&mut cc, 1, &[(1, true), (2, true)]);
        cc.validate(1);
        cc.commit(1);
        let v = cc.validate(0);
        assert_eq!(v.conflicts, 2, "item 1 must count once despite re-read");
    }

    #[test]
    fn never_blocks() {
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        for i in 0..100 {
            assert_eq!(cc.access(0, i, true), AccessOutcome::Granted);
            assert_eq!(cc.access(1, i, true), AccessOutcome::Granted);
        }
        assert_eq!(cc.deadlock_victim(0), None);
    }

    /// The serializability core: whatever interleaving of begins/accesses,
    /// the set of *committed* transactions must be serializable in commit
    /// order. For certification this holds if every committed transaction
    /// saw no write between its start and its commit on items it touched —
    /// we verify via an order check on two adversarial patterns.
    #[test]
    fn first_committer_wins_is_enforced_pairwise() {
        // Lost-update pattern: both read x then both write x.
        let mut cc = Certification::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.access(0, 42, false);
        cc.access(1, 42, false);
        cc.access(0, 42, true);
        cc.access(1, 42, true);
        let first = cc.validate(0);
        assert!(first.ok);
        cc.commit(0);
        let second = cc.validate(1);
        assert!(!second.ok, "lost update must be prevented");
    }
}
