//! Strict two-phase locking with waits-for deadlock detection.
//!
//! The blocking CC class of §1: "Analytic models show [Tay et al., 1985]
//! that the mean number of blocked transactions b is a quadratic function
//! of the total number of transactions n" — the blocking route to
//! thrashing. Shared/exclusive locks are acquired at access time, held
//! until commit/abort (strictness), with FIFO queuing and lock upgrades
//! (the [`LockTable`](super::locktable) machinery shared with the
//! deadlock-prevention variants). A waits-for cycle found at block time is
//! broken by aborting the youngest transaction in the cycle (the paper's
//! §4.3 aside: "victim selection may be based on the same criteria as for
//! deadlock breaking").

use super::locktable::{LockTable, Mode, RequestOutcome};
use super::{AccessOutcome, ConcurrencyControl, TxnId, ValidateOutcome};

/// Strict 2PL.
pub struct TwoPhaseLocking {
    table: LockTable,
    ts: Vec<u64>,
    /// Reusable successor buffer for the waits-for DFS.
    succ_scratch: Vec<TxnId>,
    /// Reusable DFS stack (node ids, not paths — see `deadlock_victim`).
    dfs_stack: Vec<TxnId>,
    /// Per-slot visited stamp: a slot is visited in the current search
    /// iff its mark equals `dfs_epoch`. Bumping the epoch "clears" the
    /// whole array in O(1), so no per-call allocation or memset.
    dfs_mark: Vec<u64>,
    /// Per-slot DFS-tree parent, valid only when the mark is current.
    /// Walking parents from the cycle-closing node back to the requester
    /// reconstructs the path the old path-cloning DFS carried explicitly.
    dfs_parent: Vec<TxnId>,
    dfs_epoch: u64,
}

impl TwoPhaseLocking {
    /// Creates the protocol for `slots` transaction slots.
    pub fn new(slots: usize) -> Self {
        TwoPhaseLocking {
            table: LockTable::new(slots),
            ts: vec![0; slots], // alc-lint: allow(hot-alloc, reason="construction-time slot-table allocation")
            succ_scratch: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time scratch; retains capacity across calls")
            dfs_stack: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time scratch; retains capacity across calls")
            dfs_mark: vec![0; slots], // alc-lint: allow(hot-alloc, reason="construction-time slot-table allocation")
            dfs_parent: vec![0; slots], // alc-lint: allow(hot-alloc, reason="construction-time slot-table allocation")
            dfs_epoch: 0,
        }
    }

    /// Everyone `txn` currently waits for: the holders of the item it is
    /// queued on (conservative waits-for; queue-ahead conflicts resolve
    /// transitively through the holders). Replaces the contents of `out`.
    fn waits_for_into(table: &LockTable, txn: TxnId, out: &mut Vec<TxnId>) {
        out.clear();
        if let Some(item) = table.waiting_item(txn) {
            table.holders_into(item, out);
            out.retain(|&h| h != txn);
        }
    }

    /// Clears all lock state, retaining arena/queue capacity, for
    /// callers re-driving one protocol instance across runs.
    pub fn reset(&mut self) {
        self.table.reset();
        self.ts.fill(0);
    }

    /// Number of data items currently locked (table size), for tests.
    pub fn locked_items(&self) -> usize {
        self.table.locked_items()
    }
}

impl ConcurrencyControl for TwoPhaseLocking {
    fn name(&self) -> &'static str {
        "2pl"
    }

    fn begin(&mut self, txn: TxnId, ts: u64) {
        self.table.begin(txn);
        self.ts[txn] = ts;
    }

    fn access(&mut self, txn: TxnId, item: u64, write: bool) -> AccessOutcome {
        let mode = if write { Mode::Exclusive } else { Mode::Shared };
        match self.table.request(txn, item, mode) {
            RequestOutcome::Granted => AccessOutcome::Granted,
            RequestOutcome::Queued => AccessOutcome::Blocked,
        }
    }

    fn validate(&mut self, txn: TxnId) -> ValidateOutcome {
        // 2PL serializes during execution; commit always succeeds. Lock
        // waits endured are this protocol's "conflicts".
        ValidateOutcome {
            ok: true,
            conflicts: self.table.blocked_count(txn),
        }
    }

    fn commit(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut unblocked = Vec::new(); // alc-lint: allow(hot-alloc, reason="convenience wrapper; the engine hot path uses commit_into with a reusable buffer")
        self.commit_into(txn, &mut unblocked);
        unblocked
    }

    fn abort(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut unblocked = Vec::new(); // alc-lint: allow(hot-alloc, reason="convenience wrapper; the engine hot path uses abort_into with a reusable buffer")
        self.abort_into(txn, &mut unblocked);
        unblocked
    }

    fn commit_into(&mut self, txn: TxnId, unblocked: &mut Vec<TxnId>) {
        self.table.release_all_into(txn, unblocked);
    }

    fn abort_into(&mut self, txn: TxnId, unblocked: &mut Vec<TxnId>) {
        self.table.release_all_into(txn, unblocked);
    }

    fn deadlock_victim(&mut self, requester: TxnId) -> Option<TxnId> {
        // DFS over waits-for from the requester; a path back to the
        // requester is a cycle. Victim: youngest (largest ts) on the
        // cycle. Parent pointers over epoch-stamped per-slot buffers
        // replace the old per-node path clones + visited `HashSet`: the
        // DFS tree path from the cycle-closing node up to the requester
        // *is* the cycle, so nothing needs copying and a warmed-up
        // instance never touches the allocator here.
        let mut succs = std::mem::take(&mut self.succ_scratch);
        self.dfs_epoch += 1;
        self.dfs_stack.clear();
        self.dfs_stack.push(requester);
        self.dfs_parent[requester] = requester;
        let mut victim = None;
        'dfs: while let Some(node) = self.dfs_stack.pop() {
            Self::waits_for_into(&self.table, node, &mut succs);
            for &succ in &succs {
                if succ == requester {
                    // Walk node → … → requester. The old forward
                    // `max_by_key` kept the *last* maximal ts; walking
                    // the same path backwards, strict `>` keeps the
                    // *first* — the identical element.
                    let mut best = node;
                    let mut cur = node;
                    while cur != requester {
                        cur = self.dfs_parent[cur];
                        if self.ts[cur] > self.ts[best] {
                            best = cur;
                        }
                    }
                    victim = Some(best);
                    break 'dfs;
                }
                if self.dfs_mark[succ] != self.dfs_epoch {
                    self.dfs_mark[succ] = self.dfs_epoch;
                    self.dfs_parent[succ] = node;
                    self.dfs_stack.push(succ);
                }
            }
        }
        self.succ_scratch = succs;
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_coexist() {
        let mut cc = TwoPhaseLocking::new(3);
        cc.begin(0, 1);
        cc.begin(1, 2);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted);
    }

    #[test]
    fn exclusive_blocks_reader_and_fifo_grants() {
        let mut cc = TwoPhaseLocking::new(3);
        cc.begin(0, 1);
        cc.begin(1, 2);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Blocked);
        let unblocked = cc.commit(0);
        assert_eq!(unblocked, vec![1]);
    }

    #[test]
    fn reader_blocks_writer() {
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
    }

    #[test]
    fn fifo_prevents_writer_starvation() {
        let mut cc = TwoPhaseLocking::new(3);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.begin(2, 3);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        // A later reader must queue behind the waiting writer.
        assert_eq!(cc.access(2, 5, false), AccessOutcome::Blocked);
        let unblocked = cc.commit(0);
        assert_eq!(unblocked, vec![1], "writer first (FIFO)");
        let unblocked = cc.commit(1);
        assert_eq!(unblocked, vec![2], "then the queued reader");
    }

    #[test]
    fn reread_of_held_lock_is_free() {
        let mut cc = TwoPhaseLocking::new(1);
        cc.begin(0, 1);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        assert_eq!(cc.validate(0).conflicts, 0);
    }

    #[test]
    fn sole_holder_upgrades_in_place() {
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Granted);
        // And the X lock now blocks others.
        cc.begin(1, 2);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Blocked);
    }

    #[test]
    fn upgrade_with_other_readers_waits_at_front() {
        let mut cc = TwoPhaseLocking::new(3);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.begin(2, 3);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Blocked); // upgrade
        assert_eq!(cc.access(2, 5, false), AccessOutcome::Blocked); // behind upgrade
        let unblocked = cc.commit(1);
        // Upgrade granted first, reader 2 still waits behind the X lock.
        assert_eq!(unblocked, vec![0]);
    }

    #[test]
    fn deadlock_detected_and_youngest_chosen() {
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1); // older
        cc.begin(1, 2); // younger
        assert_eq!(cc.access(0, 1, true), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 2, true), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 2, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), None, "no cycle yet");
        assert_eq!(cc.access(1, 1, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), Some(1), "youngest in cycle dies");
    }

    #[test]
    fn three_way_deadlock() {
        let mut cc = TwoPhaseLocking::new(3);
        for (i, ts) in [(0, 10), (1, 20), (2, 30)] {
            cc.begin(i, ts);
            assert_eq!(cc.access(i, i as u64, true), AccessOutcome::Granted);
        }
        assert_eq!(cc.access(0, 1, true), AccessOutcome::Blocked);
        assert_eq!(cc.access(1, 2, true), AccessOutcome::Blocked);
        assert_eq!(cc.access(2, 0, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(2), Some(2), "ts 30 is the youngest");
    }

    #[test]
    fn upgrade_deadlock_between_two_readers_is_detected() {
        // The classic conversion deadlock: both S holders request X; each
        // waits for the other holder to leave — a two-node cycle through
        // the holder set that the waits-for DFS must find.
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1); // older
        cc.begin(1, 2); // younger
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(0, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(0), None, "one upgrader just waits");
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.deadlock_victim(1), Some(1), "youngest upgrader dies");
        // The abort must let the survivor's upgrade through.
        let unblocked = cc.abort(1);
        assert_eq!(unblocked, vec![0]);
    }

    #[test]
    fn abort_releases_and_unblocks() {
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.access(0, 5, true);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        let unblocked = cc.abort(0);
        assert_eq!(unblocked, vec![1]);
        assert!(cc.validate(1).ok);
    }

    #[test]
    fn abort_of_waiter_cleans_queue() {
        let mut cc = TwoPhaseLocking::new(3);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.begin(2, 3);
        cc.access(0, 5, true);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.access(2, 5, true), AccessOutcome::Blocked);
        cc.abort(1); // waiter gives up
        let unblocked = cc.commit(0);
        assert_eq!(unblocked, vec![2], "queue must skip the dead waiter");
    }

    #[test]
    fn abort_of_queue_head_grants_successor_immediately() {
        // Holder is S; queue is [X, S]. Cancelling the X at the head makes
        // the queued reader compatible with the holder *right now* — it
        // must not have to wait for the holder's commit.
        let mut cc = TwoPhaseLocking::new(3);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.begin(2, 3);
        assert_eq!(cc.access(0, 5, false), AccessOutcome::Granted);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Blocked);
        assert_eq!(cc.access(2, 5, false), AccessOutcome::Blocked);
        let unblocked = cc.abort(1);
        assert_eq!(unblocked, vec![2], "reader grantable as soon as X head left");
    }

    #[test]
    fn conflicts_count_blocks() {
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.access(0, 5, true);
        cc.access(1, 5, false);
        cc.commit(0);
        assert_eq!(cc.validate(1).conflicts, 1);
    }

    #[test]
    fn table_shrinks_when_unused() {
        let mut cc = TwoPhaseLocking::new(1);
        cc.begin(0, 1);
        cc.access(0, 5, true);
        cc.access(0, 6, false);
        assert_eq!(cc.locked_items(), 2);
        cc.commit(0);
        assert_eq!(cc.locked_items(), 0, "entries must be reclaimed");
    }

    #[test]
    fn reset_clears_locks_for_replicate_runs() {
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1);
        cc.access(0, 5, true);
        cc.reset();
        assert_eq!(cc.locked_items(), 0);
        cc.begin(1, 2);
        assert_eq!(cc.access(1, 5, true), AccessOutcome::Granted);
    }

    #[test]
    fn strictness_holds_locks_until_commit() {
        let mut cc = TwoPhaseLocking::new(2);
        cc.begin(0, 1);
        cc.begin(1, 2);
        cc.access(0, 5, true);
        cc.validate(0); // validation alone must NOT release
        assert_eq!(cc.access(1, 5, false), AccessOutcome::Blocked);
        cc.commit(0);
    }
}
