//! Shared/exclusive lock table with FIFO queuing and upgrades.
//!
//! The locking machinery common to every lock-based protocol in this
//! crate: [`TwoPhaseLocking`](super::TwoPhaseLocking) (deadlock
//! *detection*) and the [`Prevention`](super::Prevention) protocols
//! wound-wait / wait-die (deadlock *prevention*) differ only in what they
//! do when a request blocks — the grant rules below are identical.
//!
//! Semantics:
//!
//! * shared (S) locks coexist; exclusive (X) conflicts with everything;
//! * a fresh request is granted iff it is compatible with all holders
//!   *and* nobody is queued ahead (FIFO fairness — reader streams cannot
//!   starve a waiting writer);
//! * an S→X upgrade by the sole holder succeeds in place; with other
//!   readers present it waits at the *front* of the queue;
//! * releases grant from the queue front while compatible.
//!
//! # Storage: entry arena, not per-item allocations
//!
//! Acquire/release sits on the per-access critical path of every 2PL
//! simulation, so entries live in an arena (`Vec<LockEntry>` + free
//! list) and are *recycled*, never dropped: holders use an inline
//! two-element buffer ([`InlineVec`]) and wait queues retain their
//! capacity across reuse. After warm-up the only per-operation map
//! traffic is the `item → entry` index, which the `HashMap` serves from
//! retained capacity — the allocator is out of the loop.

use std::collections::{HashMap, VecDeque}; // alc-lint: allow(hash-container, reason="item->entry index is looked up per key, never iterated; order is unobservable")

use super::inline_vec::InlineVec;
use super::TxnId;

/// Lock mode.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Shared (read) lock.
    #[default]
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Outcome of [`LockTable::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request joined the wait queue.
    Queued,
}

/// Most items are held by one transaction (occasionally a small read
/// group), so two holders live inline in the entry.
const INLINE_HOLDERS: usize = 2;

#[derive(Debug, Default)]
struct LockEntry {
    /// Current holders with their strongest granted mode.
    holders: InlineVec<(TxnId, Mode), INLINE_HOLDERS>,
    /// FIFO wait queue. Upgrades enter at the front. Capacity is retained
    /// when the entry cycles through the free list.
    queue: VecDeque<(TxnId, Mode)>,
}

impl LockEntry {
    fn is_unused(&self) -> bool {
        self.holders.is_empty() && self.queue.is_empty()
    }
}

#[derive(Debug, Default, Clone)]
struct Slot {
    held: Vec<u64>,
    waiting_for_item: Option<u64>,
    blocked_count: u64,
}

/// A strict shared/exclusive lock table over `u64` item ids.
#[derive(Debug)]
pub(crate) struct LockTable {
    /// Locked item → arena entry. Entries leave the index the moment they
    /// empty, so `index.len()` is the number of currently locked items.
    // alc-lint: allow(hash-container, reason="lookup-only index; iteration order never observed")
    index: HashMap<u64, u32>,
    /// Entry arena; recycled through `free`, never shrunk.
    entries: Vec<LockEntry>,
    free: Vec<u32>,
    slots: Vec<Slot>,
    /// Reusable buffer for the items released by `release_all_into`.
    released_scratch: Vec<u64>,
}

impl LockTable {
    /// Creates a table for `slots` transaction slots.
    pub(crate) fn new(slots: usize) -> Self {
        LockTable {
            // alc-lint: allow(hash-container, reason="lookup-only index; iteration order never observed")
            index: HashMap::new(),
            entries: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time arena; entries are recycled, never dropped")
            free: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time free list")
            slots: vec![Slot::default(); slots], // alc-lint: allow(hot-alloc, reason="construction-time slot table")
            released_scratch: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time scratch; retains capacity across releases")
        }
    }

    /// Resets per-transaction bookkeeping at the start of a (re)run.
    pub(crate) fn begin(&mut self, txn: TxnId) {
        let slot = &mut self.slots[txn];
        debug_assert!(
            slot.held.is_empty() && slot.waiting_for_item.is_none(),
            "begin() on a transaction still holding locks"
        );
        slot.held.clear();
        slot.waiting_for_item = None;
        slot.blocked_count = 0;
    }

    /// Clears all lock state, retaining every capacity (arena entries,
    /// spill buffers, queues, the item index), so a caller re-driving
    /// one protocol instance across runs pays no re-allocation. (The
    /// stock experiment layer builds a fresh `Simulator` per replicate
    /// and does not use this yet; see ROADMAP.)
    pub(crate) fn reset(&mut self) {
        self.index.clear();
        self.free.clear();
        for (i, entry) in self.entries.iter_mut().enumerate() {
            entry.holders.clear();
            entry.queue.clear();
            self.free.push(i as u32);
        }
        for slot in &mut self.slots {
            slot.held.clear();
            slot.waiting_for_item = None;
            slot.blocked_count = 0;
        }
    }

    /// Arena entries ever created (high-water of concurrently locked
    /// items). Exposed so tests can pin capacity retention.
    #[cfg(test)]
    pub(crate) fn arena_len(&self) -> usize {
        self.entries.len()
    }

    /// The arena entry for `item`, creating (or recycling) one if the
    /// item is currently unlocked.
    fn entry_for(&mut self, item: u64) -> u32 {
        if let Some(&idx) = self.index.get(&item) {
            return idx;
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.entries.push(LockEntry::default());
                (self.entries.len() - 1) as u32
            }
        };
        debug_assert!(self.entries[idx as usize].is_unused());
        self.index.insert(item, idx);
        idx
    }

    /// Returns an emptied entry to the free list.
    fn recycle_if_unused(&mut self, item: u64, idx: u32) {
        if self.entries[idx as usize].is_unused() {
            self.index.remove(&item);
            self.free.push(idx);
        }
    }

    fn compatible(
        holders: &InlineVec<(TxnId, Mode), INLINE_HOLDERS>,
        requester: TxnId,
        mode: Mode,
    ) -> bool {
        holders
            .iter()
            .all(|(h, m)| h == requester || (m == Mode::Shared && mode == Mode::Shared))
    }

    /// Requests `item` in `mode` for `txn`.
    pub(crate) fn request(&mut self, txn: TxnId, item: u64, mode: Mode) -> RequestOutcome {
        let idx = self.entry_for(item);
        let entry = &mut self.entries[idx as usize];

        // Already holding in sufficient mode?
        let held = entry.holders.iter().find(|(h, _)| *h == txn);
        if let Some((_, held_mode)) = held {
            if held_mode == Mode::Exclusive || mode == Mode::Shared {
                return RequestOutcome::Granted;
            }
            // Upgrade S→X: only if sole holder, else wait at queue front.
            if entry.holders.len() == 1 {
                entry.holders.set(0, (txn, Mode::Exclusive));
                return RequestOutcome::Granted;
            }
            entry.queue.push_front((txn, Mode::Exclusive));
            self.slots[txn].waiting_for_item = Some(item);
            self.slots[txn].blocked_count += 1;
            return RequestOutcome::Queued;
        }

        // Fresh request: grant only if compatible AND nobody queued ahead.
        if entry.queue.is_empty() && Self::compatible(&entry.holders, txn, mode) {
            entry.holders.push((txn, mode));
            self.slots[txn].held.push(item);
            return RequestOutcome::Granted;
        }
        entry.queue.push_back((txn, mode));
        self.slots[txn].waiting_for_item = Some(item);
        self.slots[txn].blocked_count += 1;
        RequestOutcome::Queued
    }

    /// Grants whatever the FIFO queue head(s) allow after a release or
    /// abort, appending the granted transactions to `granted`.
    fn grant_waiters(&mut self, item: u64, granted: &mut Vec<TxnId>) {
        let Some(&idx) = self.index.get(&item) else {
            return;
        };
        let entry = &mut self.entries[idx as usize];
        while let Some(&(txn, mode)) = entry.queue.front() {
            if Self::compatible(&entry.holders, txn, mode) {
                entry.queue.pop_front();
                // Upgrade if already holding, else add.
                if let Some(pos) = (0..entry.holders.len()).find(|&i| entry.holders.get(i).0 == txn)
                {
                    entry.holders.set(pos, (txn, mode));
                } else {
                    entry.holders.push((txn, mode));
                    self.slots[txn].held.push(item);
                }
                self.slots[txn].waiting_for_item = None;
                granted.push(txn);
                if mode == Mode::Exclusive {
                    break;
                }
            } else {
                break;
            }
        }
        self.recycle_if_unused(item, idx);
    }

    /// Releases everything `txn` holds and cancels its pending request,
    /// appending the transactions whose queued requests became granted to
    /// `unblocked` — cancelling a queue-head request can unblock the
    /// entry behind it, so even a waiter's release may grant others.
    pub(crate) fn release_all_into(&mut self, txn: TxnId, unblocked: &mut Vec<TxnId>) {
        // Move the held list into the scratch buffer so the borrow on the
        // slot ends before granting; both keep their capacity.
        debug_assert!(self.released_scratch.is_empty());
        std::mem::swap(&mut self.slots[txn].held, &mut self.released_scratch);
        if let Some(item) = self.slots[txn].waiting_for_item.take() {
            if let Some(&idx) = self.index.get(&item) {
                let entry = &mut self.entries[idx as usize];
                entry.queue.retain(|&(t, _)| t != txn);
                // No-ops on an empty queue and recycles an emptied entry.
                self.grant_waiters(item, unblocked);
            }
        }
        for i in 0..self.released_scratch.len() {
            let item = self.released_scratch[i];
            if let Some(&idx) = self.index.get(&item) {
                self.entries[idx as usize]
                    .holders
                    .retain(|&(h, _)| h != txn);
                self.grant_waiters(item, unblocked);
            }
        }
        self.released_scratch.clear();
    }

    /// Allocating convenience wrapper around
    /// [`LockTable::release_all_into`], for tests.
    #[cfg(test)]
    pub(crate) fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut unblocked = Vec::new();
        self.release_all_into(txn, &mut unblocked);
        unblocked
    }

    /// The item `txn` is queued on, if any.
    pub(crate) fn waiting_item(&self, txn: TxnId) -> Option<u64> {
        self.slots[txn].waiting_for_item
    }

    /// Times `txn` has blocked since its `begin`.
    pub(crate) fn blocked_count(&self, txn: TxnId) -> u64 {
        self.slots[txn].blocked_count
    }

    /// Appends the current holders of `item` to `out` (nothing if
    /// unlocked).
    pub(crate) fn holders_into(&self, item: u64, out: &mut Vec<TxnId>) {
        if let Some(&idx) = self.index.get(&item) {
            out.extend(self.entries[idx as usize].holders.iter().map(|(h, _)| h));
        }
    }

    /// Current holders of `item` (empty if unlocked), for tests.
    #[cfg(test)]
    pub(crate) fn holders_of(&self, item: u64) -> Vec<TxnId> {
        let mut out = Vec::new();
        self.holders_into(item, &mut out);
        out
    }

    /// Appends everything `txn`'s pending request directly waits on:
    /// holders that conflict with the requested mode plus every waiter
    /// queued ahead (FIFO means the whole prefix must drain first).
    /// Appends nothing when `txn` is not waiting. The queue-ahead part is
    /// conservative — a compatible reader ahead would in fact be granted
    /// together — but conservatism only costs extra wounds/dies, never
    /// correctness.
    pub(crate) fn blocking_targets_into(&self, txn: TxnId, targets: &mut Vec<TxnId>) {
        let Some(item) = self.slots[txn].waiting_for_item else {
            return;
        };
        let Some(&idx) = self.index.get(&item) else {
            return;
        };
        let entry = &self.entries[idx as usize];
        let Some(pos) = entry.queue.iter().position(|&(t, _)| t == txn) else {
            return;
        };
        let mode = entry.queue[pos].1;
        let start = targets.len();
        targets.extend(
            entry
                .holders
                .iter()
                .filter(|&(h, m)| h != txn && !(m == Mode::Shared && mode == Mode::Shared))
                .map(|(h, _)| h),
        );
        for &(t, _) in entry.queue.iter().take(pos) {
            if t != txn && !targets[start..].contains(&t) {
                targets.push(t);
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`LockTable::blocking_targets_into`], for tests.
    #[cfg(test)]
    pub(crate) fn blocking_targets(&self, txn: TxnId) -> Vec<TxnId> {
        let mut targets = Vec::new();
        self.blocking_targets_into(txn, &mut targets);
        targets
    }

    /// Number of data items currently locked (index size), for tests.
    pub(crate) fn locked_items(&self) -> usize {
        self.index.len()
    }
}

/// The seed (pre-arena) implementation, kept verbatim as a property-test
/// oracle: per-item `HashMap` entries each owning a fresh `Vec` +
/// `VecDeque`. Obviously correct, allocation-heavy — the arena table must
/// be observationally identical to it.
#[cfg(test)]
mod seed_oracle {
    use super::{Mode, RequestOutcome, TxnId};
    use std::collections::{HashMap, VecDeque};

    struct LockEntry {
        holders: Vec<(TxnId, Mode)>,
        queue: VecDeque<(TxnId, Mode)>,
    }

    #[derive(Default, Clone)]
    struct Slot {
        held: Vec<u64>,
        waiting_for_item: Option<u64>,
        blocked_count: u64,
    }

    pub(super) struct SeedLockTable {
        table: HashMap<u64, LockEntry>,
        slots: Vec<Slot>,
    }

    impl SeedLockTable {
        pub(super) fn new(slots: usize) -> Self {
            SeedLockTable {
                table: HashMap::new(),
                slots: vec![Slot::default(); slots],
            }
        }

        pub(super) fn begin(&mut self, txn: TxnId) {
            self.slots[txn] = Slot::default();
        }

        fn compatible(holders: &[(TxnId, Mode)], requester: TxnId, mode: Mode) -> bool {
            holders
                .iter()
                .all(|&(h, m)| h == requester || (m == Mode::Shared && mode == Mode::Shared))
        }

        pub(super) fn request(&mut self, txn: TxnId, item: u64, mode: Mode) -> RequestOutcome {
            let entry = self.table.entry(item).or_insert_with(|| LockEntry {
                holders: Vec::new(),
                queue: VecDeque::new(),
            });
            if let Some(&(_, held_mode)) = entry.holders.iter().find(|(h, _)| *h == txn) {
                if held_mode == Mode::Exclusive || mode == Mode::Shared {
                    return RequestOutcome::Granted;
                }
                if entry.holders.len() == 1 {
                    entry.holders[0].1 = Mode::Exclusive;
                    return RequestOutcome::Granted;
                }
                entry.queue.push_front((txn, Mode::Exclusive));
                self.slots[txn].waiting_for_item = Some(item);
                self.slots[txn].blocked_count += 1;
                return RequestOutcome::Queued;
            }
            if entry.queue.is_empty() && Self::compatible(&entry.holders, txn, mode) {
                entry.holders.push((txn, mode));
                self.slots[txn].held.push(item);
                return RequestOutcome::Granted;
            }
            entry.queue.push_back((txn, mode));
            self.slots[txn].waiting_for_item = Some(item);
            self.slots[txn].blocked_count += 1;
            RequestOutcome::Queued
        }

        fn grant_waiters(&mut self, item: u64) -> Vec<TxnId> {
            let mut granted = Vec::new();
            let Some(entry) = self.table.get_mut(&item) else {
                return granted;
            };
            while let Some(&(txn, mode)) = entry.queue.front() {
                if Self::compatible(&entry.holders, txn, mode) {
                    entry.queue.pop_front();
                    if let Some(h) = entry.holders.iter_mut().find(|(h, _)| *h == txn) {
                        h.1 = mode;
                    } else {
                        entry.holders.push((txn, mode));
                        self.slots[txn].held.push(item);
                    }
                    self.slots[txn].waiting_for_item = None;
                    granted.push(txn);
                    if mode == Mode::Exclusive {
                        break;
                    }
                } else {
                    break;
                }
            }
            if entry.holders.is_empty() && entry.queue.is_empty() {
                self.table.remove(&item);
            }
            granted
        }

        pub(super) fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
            let mut unblocked = Vec::new();
            let held = std::mem::take(&mut self.slots[txn].held);
            if let Some(item) = self.slots[txn].waiting_for_item.take() {
                if let Some(entry) = self.table.get_mut(&item) {
                    entry.queue.retain(|&(t, _)| t != txn);
                    if entry.holders.is_empty() && entry.queue.is_empty() {
                        self.table.remove(&item);
                    } else {
                        unblocked.extend(self.grant_waiters(item));
                    }
                }
            }
            for item in held {
                if let Some(entry) = self.table.get_mut(&item) {
                    entry.holders.retain(|&(h, _)| h != txn);
                    unblocked.extend(self.grant_waiters(item));
                }
            }
            unblocked
        }

        pub(super) fn waiting_item(&self, txn: TxnId) -> Option<u64> {
            self.slots[txn].waiting_for_item
        }

        pub(super) fn blocked_count(&self, txn: TxnId) -> u64 {
            self.slots[txn].blocked_count
        }

        pub(super) fn holders_of(&self, item: u64) -> Vec<TxnId> {
            self.table
                .get(&item)
                .map(|e| e.holders.iter().map(|&(h, _)| h).collect())
                .unwrap_or_default()
        }

        pub(super) fn blocking_targets(&self, txn: TxnId) -> Vec<TxnId> {
            let Some(item) = self.slots[txn].waiting_for_item else {
                return Vec::new();
            };
            let Some(entry) = self.table.get(&item) else {
                return Vec::new();
            };
            let Some(pos) = entry.queue.iter().position(|&(t, _)| t == txn) else {
                return Vec::new();
            };
            let mode = entry.queue[pos].1;
            let mut targets: Vec<TxnId> = entry
                .holders
                .iter()
                .filter(|&&(h, m)| h != txn && !(m == Mode::Shared && mode == Mode::Shared))
                .map(|&(h, _)| h)
                .collect();
            for &(t, _) in entry.queue.iter().take(pos) {
                if t != txn && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            targets
        }

        pub(super) fn locked_items(&self) -> usize {
            self.table.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The arena table must be observationally identical to the seed
        /// `HashMap` implementation on arbitrary engine-legal
        /// interleavings of request/release (a transaction never issues
        /// a new request while queued — exactly the engine's discipline).
        #[test]
        fn arena_matches_seed_oracle(
            ops in prop::collection::vec((0u8..3, 0usize..6, 0u64..8, any::<bool>()), 1..400),
        ) {
            const N: usize = 6;
            let mut arena = LockTable::new(N);
            let mut seed = seed_oracle::SeedLockTable::new(N);
            for t in 0..N {
                arena.begin(t);
                seed.begin(t);
            }
            for (kind, txn, item, write) in ops {
                if kind < 2 {
                    if arena.waiting_item(txn).is_none() {
                        let mode = if write { Mode::Exclusive } else { Mode::Shared };
                        prop_assert_eq!(arena.request(txn, item, mode), seed.request(txn, item, mode));
                    }
                } else {
                    let a = arena.release_all(txn);
                    let b = seed.release_all(txn);
                    prop_assert_eq!(a, b);
                    arena.begin(txn);
                    seed.begin(txn);
                }
                prop_assert_eq!(arena.locked_items(), seed.locked_items());
                for t in 0..N {
                    prop_assert_eq!(arena.waiting_item(t), seed.waiting_item(t));
                    prop_assert_eq!(arena.blocked_count(t), seed.blocked_count(t));
                    prop_assert_eq!(arena.blocking_targets(t), seed.blocking_targets(t));
                }
                for it in 0..8 {
                    prop_assert_eq!(arena.holders_of(it), seed.holders_of(it));
                }
            }
        }
    }

    #[test]
    fn grant_and_queue_basics() {
        let mut lt = LockTable::new(3);
        for t in 0..3 {
            lt.begin(t);
        }
        assert_eq!(lt.request(0, 7, Mode::Exclusive), RequestOutcome::Granted);
        assert_eq!(lt.request(1, 7, Mode::Shared), RequestOutcome::Queued);
        assert_eq!(lt.request(2, 7, Mode::Shared), RequestOutcome::Queued);
        assert_eq!(lt.release_all(0), vec![1, 2], "both readers grant together");
    }

    #[test]
    fn blocking_targets_cover_holders_and_queue_prefix() {
        let mut lt = LockTable::new(4);
        for t in 0..4 {
            lt.begin(t);
        }
        lt.request(0, 7, Mode::Exclusive);
        lt.request(1, 7, Mode::Exclusive);
        lt.request(2, 7, Mode::Exclusive);
        let targets = lt.blocking_targets(2);
        assert!(targets.contains(&0), "holder missing: {targets:?}");
        assert!(targets.contains(&1), "queued-ahead missing: {targets:?}");
        assert_eq!(lt.blocking_targets(0), Vec::<TxnId>::new());
    }

    #[test]
    fn shared_shared_holders_do_not_conflict() {
        let mut lt = LockTable::new(3);
        for t in 0..3 {
            lt.begin(t);
        }
        lt.request(0, 7, Mode::Shared);
        lt.request(1, 7, Mode::Exclusive); // queued
        lt.request(2, 7, Mode::Shared); // queued behind the writer
        // Reader 2 conflicts with nothing it holds against reader 0, but
        // FIFO makes it wait for the writer ahead.
        let targets = lt.blocking_targets(2);
        assert!(!targets.contains(&0), "S/S holders must not conflict");
        assert!(targets.contains(&1));
    }

    #[test]
    fn cancelled_upgrade_unblocks_queue_head() {
        let mut lt = LockTable::new(3);
        for t in 0..3 {
            lt.begin(t);
        }
        lt.request(0, 7, Mode::Shared);
        lt.request(1, 7, Mode::Shared);
        assert_eq!(lt.request(0, 7, Mode::Exclusive), RequestOutcome::Queued);
        // Aborting the upgrader releases its S lock and cancels the
        // queued upgrade; nothing else is waiting.
        let unblocked = lt.release_all(0);
        assert!(unblocked.is_empty());
        assert_eq!(lt.holders_of(7), vec![1]);
    }

    #[test]
    fn table_shrinks_to_empty() {
        let mut lt = LockTable::new(2);
        lt.begin(0);
        lt.request(0, 1, Mode::Shared);
        lt.request(0, 2, Mode::Exclusive);
        assert_eq!(lt.locked_items(), 2);
        lt.release_all(0);
        assert_eq!(lt.locked_items(), 0);
    }

    #[test]
    fn blocked_count_accumulates() {
        let mut lt = LockTable::new(2);
        lt.begin(0);
        lt.begin(1);
        lt.request(0, 1, Mode::Exclusive);
        assert_eq!(lt.request(1, 1, Mode::Shared), RequestOutcome::Queued);
        assert_eq!(lt.blocked_count(1), 1);
        assert_eq!(lt.blocked_count(0), 0);
    }

    #[test]
    fn arena_recycles_entries_instead_of_growing() {
        let mut lt = LockTable::new(1);
        lt.begin(0);
        // Lock/unlock many distinct items sequentially: the arena must
        // stay at the high-water of *concurrently* locked items (2).
        for round in 0..100u64 {
            lt.request(0, round * 2, Mode::Exclusive);
            lt.request(0, round * 2 + 1, Mode::Shared);
            lt.release_all(0);
        }
        assert_eq!(lt.locked_items(), 0);
        assert!(
            lt.arena_len() <= 2,
            "arena grew to {} entries for 2 concurrent locks",
            lt.arena_len()
        );
    }

    #[test]
    fn reset_clears_state_but_keeps_arena() {
        let mut lt = LockTable::new(2);
        lt.begin(0);
        lt.begin(1);
        lt.request(0, 1, Mode::Exclusive);
        lt.request(0, 2, Mode::Exclusive);
        lt.request(1, 1, Mode::Shared);
        let high_water = lt.arena_len();
        lt.reset();
        assert_eq!(lt.locked_items(), 0);
        assert_eq!(lt.waiting_item(1), None);
        assert_eq!(lt.blocked_count(1), 0);
        assert_eq!(lt.arena_len(), high_water, "reset must keep the arena");
        // And the table still works after reset.
        lt.begin(0);
        lt.begin(1);
        assert_eq!(lt.request(0, 9, Mode::Exclusive), RequestOutcome::Granted);
        assert_eq!(lt.request(1, 9, Mode::Shared), RequestOutcome::Queued);
        assert_eq!(lt.release_all(0), vec![1]);
        assert_eq!(lt.arena_len(), high_water);
    }

    #[test]
    fn wide_read_groups_spill_and_recover() {
        // More holders than the inline buffer: grant 8 readers, then
        // upgrade-style churn, ensuring spill storage behaves.
        let mut lt = LockTable::new(8);
        for t in 0..8 {
            lt.begin(t);
            assert_eq!(lt.request(t, 42, Mode::Shared), RequestOutcome::Granted);
        }
        assert_eq!(lt.holders_of(42).len(), 8);
        for t in 0..7 {
            lt.release_all(t);
        }
        assert_eq!(lt.holders_of(42), vec![7]);
        // Sole survivor upgrades in place.
        assert_eq!(lt.request(7, 42, Mode::Exclusive), RequestOutcome::Granted);
        lt.release_all(7);
        assert_eq!(lt.locked_items(), 0);
    }
}
