//! Shared/exclusive lock table with FIFO queuing and upgrades.
//!
//! The locking machinery common to every lock-based protocol in this
//! crate: [`TwoPhaseLocking`](super::TwoPhaseLocking) (deadlock
//! *detection*) and the [`Prevention`](super::Prevention) protocols
//! wound-wait / wait-die (deadlock *prevention*) differ only in what they
//! do when a request blocks — the grant rules below are identical.
//!
//! Semantics:
//!
//! * shared (S) locks coexist; exclusive (X) conflicts with everything;
//! * a fresh request is granted iff it is compatible with all holders
//!   *and* nobody is queued ahead (FIFO fairness — reader streams cannot
//!   starve a waiting writer);
//! * an S→X upgrade by the sole holder succeeds in place; with other
//!   readers present it waits at the *front* of the queue;
//! * releases grant from the queue front while compatible.

use std::collections::{HashMap, VecDeque};

use super::TxnId;

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Outcome of [`LockTable::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request joined the wait queue.
    Queued,
}

#[derive(Debug)]
struct LockEntry {
    /// Current holders with their strongest granted mode.
    holders: Vec<(TxnId, Mode)>,
    /// FIFO wait queue. Upgrades enter at the front.
    queue: VecDeque<(TxnId, Mode)>,
}

#[derive(Debug, Default, Clone)]
struct Slot {
    held: Vec<u64>,
    waiting_for_item: Option<u64>,
    blocked_count: u64,
}

/// A strict shared/exclusive lock table over `u64` item ids.
#[derive(Debug)]
pub(crate) struct LockTable {
    table: HashMap<u64, LockEntry>,
    slots: Vec<Slot>,
}

impl LockTable {
    /// Creates a table for `slots` transaction slots.
    pub(crate) fn new(slots: usize) -> Self {
        LockTable {
            table: HashMap::new(),
            slots: vec![Slot::default(); slots],
        }
    }

    /// Resets per-transaction bookkeeping at the start of a (re)run.
    pub(crate) fn begin(&mut self, txn: TxnId) {
        debug_assert!(
            self.slots[txn].held.is_empty() && self.slots[txn].waiting_for_item.is_none(),
            "begin() on a transaction still holding locks"
        );
        self.slots[txn] = Slot::default();
    }

    fn compatible(holders: &[(TxnId, Mode)], requester: TxnId, mode: Mode) -> bool {
        holders
            .iter()
            .all(|&(h, m)| h == requester || (m == Mode::Shared && mode == Mode::Shared))
    }

    /// Requests `item` in `mode` for `txn`.
    pub(crate) fn request(&mut self, txn: TxnId, item: u64, mode: Mode) -> RequestOutcome {
        let entry = self.table.entry(item).or_insert_with(|| LockEntry {
            holders: Vec::new(),
            queue: VecDeque::new(),
        });

        // Already holding in sufficient mode?
        if let Some(&(_, held_mode)) = entry.holders.iter().find(|(h, _)| *h == txn) {
            if held_mode == Mode::Exclusive || mode == Mode::Shared {
                return RequestOutcome::Granted;
            }
            // Upgrade S→X: only if sole holder, else wait at queue front.
            if entry.holders.len() == 1 {
                entry.holders[0].1 = Mode::Exclusive;
                return RequestOutcome::Granted;
            }
            entry.queue.push_front((txn, Mode::Exclusive));
            self.slots[txn].waiting_for_item = Some(item);
            self.slots[txn].blocked_count += 1;
            return RequestOutcome::Queued;
        }

        // Fresh request: grant only if compatible AND nobody queued ahead.
        if entry.queue.is_empty() && Self::compatible(&entry.holders, txn, mode) {
            entry.holders.push((txn, mode));
            self.slots[txn].held.push(item);
            return RequestOutcome::Granted;
        }
        entry.queue.push_back((txn, mode));
        self.slots[txn].waiting_for_item = Some(item);
        self.slots[txn].blocked_count += 1;
        RequestOutcome::Queued
    }

    /// Grants whatever the FIFO queue head(s) allow after a release or
    /// abort. Returns the transactions granted.
    fn grant_waiters(&mut self, item: u64) -> Vec<TxnId> {
        let mut granted = Vec::new();
        let Some(entry) = self.table.get_mut(&item) else {
            return granted;
        };
        while let Some(&(txn, mode)) = entry.queue.front() {
            if Self::compatible(&entry.holders, txn, mode) {
                entry.queue.pop_front();
                // Upgrade if already holding, else add.
                if let Some(h) = entry.holders.iter_mut().find(|(h, _)| *h == txn) {
                    h.1 = mode;
                } else {
                    entry.holders.push((txn, mode));
                    self.slots[txn].held.push(item);
                }
                self.slots[txn].waiting_for_item = None;
                granted.push(txn);
                if mode == Mode::Exclusive {
                    break;
                }
            } else {
                break;
            }
        }
        if entry.holders.is_empty() && entry.queue.is_empty() {
            self.table.remove(&item);
        }
        granted
    }

    /// Releases everything `txn` holds and cancels its pending request.
    /// Returns the transactions whose queued requests became granted —
    /// cancelling a queue-head request can unblock the entry behind it,
    /// so even a waiter's release may grant others.
    pub(crate) fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut unblocked = Vec::new();
        let held = std::mem::take(&mut self.slots[txn].held);
        if let Some(item) = self.slots[txn].waiting_for_item.take() {
            if let Some(entry) = self.table.get_mut(&item) {
                entry.queue.retain(|&(t, _)| t != txn);
                if entry.holders.is_empty() && entry.queue.is_empty() {
                    self.table.remove(&item);
                } else {
                    unblocked.extend(self.grant_waiters(item));
                }
            }
        }
        for item in held {
            if let Some(entry) = self.table.get_mut(&item) {
                entry.holders.retain(|&(h, _)| h != txn);
                unblocked.extend(self.grant_waiters(item));
            }
        }
        unblocked
    }

    /// The item `txn` is queued on, if any.
    pub(crate) fn waiting_item(&self, txn: TxnId) -> Option<u64> {
        self.slots[txn].waiting_for_item
    }

    /// Times `txn` has blocked since its `begin`.
    pub(crate) fn blocked_count(&self, txn: TxnId) -> u64 {
        self.slots[txn].blocked_count
    }

    /// Current holders of `item` (empty if unlocked).
    pub(crate) fn holders_of(&self, item: u64) -> Vec<TxnId> {
        self.table
            .get(&item)
            .map(|e| e.holders.iter().map(|&(h, _)| h).collect())
            .unwrap_or_default()
    }

    /// Everything `txn`'s pending request directly waits on: holders that
    /// conflict with the requested mode plus every waiter queued ahead
    /// (FIFO means the whole prefix must drain first). Empty when `txn` is
    /// not waiting. The queue-ahead part is conservative — a compatible
    /// reader ahead would in fact be granted together — but conservatism
    /// only costs extra wounds/dies, never correctness.
    pub(crate) fn blocking_targets(&self, txn: TxnId) -> Vec<TxnId> {
        let Some(item) = self.slots[txn].waiting_for_item else {
            return Vec::new();
        };
        let Some(entry) = self.table.get(&item) else {
            return Vec::new();
        };
        let Some(pos) = entry.queue.iter().position(|&(t, _)| t == txn) else {
            return Vec::new();
        };
        let mode = entry.queue[pos].1;
        let mut targets: Vec<TxnId> = entry
            .holders
            .iter()
            .filter(|&&(h, m)| {
                h != txn && !(m == Mode::Shared && mode == Mode::Shared)
            })
            .map(|&(h, _)| h)
            .collect();
        for &(t, _) in entry.queue.iter().take(pos) {
            if t != txn && !targets.contains(&t) {
                targets.push(t);
            }
        }
        targets
    }

    /// Number of data items currently locked (table size), for tests.
    pub(crate) fn locked_items(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_queue_basics() {
        let mut lt = LockTable::new(3);
        for t in 0..3 {
            lt.begin(t);
        }
        assert_eq!(lt.request(0, 7, Mode::Exclusive), RequestOutcome::Granted);
        assert_eq!(lt.request(1, 7, Mode::Shared), RequestOutcome::Queued);
        assert_eq!(lt.request(2, 7, Mode::Shared), RequestOutcome::Queued);
        assert_eq!(lt.release_all(0), vec![1, 2], "both readers grant together");
    }

    #[test]
    fn blocking_targets_cover_holders_and_queue_prefix() {
        let mut lt = LockTable::new(4);
        for t in 0..4 {
            lt.begin(t);
        }
        lt.request(0, 7, Mode::Exclusive);
        lt.request(1, 7, Mode::Exclusive);
        lt.request(2, 7, Mode::Exclusive);
        let targets = lt.blocking_targets(2);
        assert!(targets.contains(&0), "holder missing: {targets:?}");
        assert!(targets.contains(&1), "queued-ahead missing: {targets:?}");
        assert_eq!(lt.blocking_targets(0), Vec::<TxnId>::new());
    }

    #[test]
    fn shared_shared_holders_do_not_conflict() {
        let mut lt = LockTable::new(3);
        for t in 0..3 {
            lt.begin(t);
        }
        lt.request(0, 7, Mode::Shared);
        lt.request(1, 7, Mode::Exclusive); // queued
        lt.request(2, 7, Mode::Shared); // queued behind the writer
        // Reader 2 conflicts with nothing it holds against reader 0, but
        // FIFO makes it wait for the writer ahead.
        let targets = lt.blocking_targets(2);
        assert!(!targets.contains(&0), "S/S holders must not conflict");
        assert!(targets.contains(&1));
    }

    #[test]
    fn cancelled_upgrade_unblocks_queue_head() {
        let mut lt = LockTable::new(3);
        for t in 0..3 {
            lt.begin(t);
        }
        lt.request(0, 7, Mode::Shared);
        lt.request(1, 7, Mode::Shared);
        assert_eq!(lt.request(0, 7, Mode::Exclusive), RequestOutcome::Queued);
        // Aborting the upgrader releases its S lock and cancels the
        // queued upgrade; nothing else is waiting.
        let unblocked = lt.release_all(0);
        assert!(unblocked.is_empty());
        assert_eq!(lt.holders_of(7), vec![1]);
    }

    #[test]
    fn table_shrinks_to_empty() {
        let mut lt = LockTable::new(2);
        lt.begin(0);
        lt.request(0, 1, Mode::Shared);
        lt.request(0, 2, Mode::Exclusive);
        assert_eq!(lt.locked_items(), 2);
        lt.release_all(0);
        assert_eq!(lt.locked_items(), 0);
    }

    #[test]
    fn blocked_count_accumulates() {
        let mut lt = LockTable::new(2);
        lt.begin(0);
        lt.begin(1);
        lt.request(0, 1, Mode::Exclusive);
        assert_eq!(lt.request(1, 1, Mode::Shared), RequestOutcome::Queued);
        assert_eq!(lt.blocked_count(1), 1);
        assert_eq!(lt.blocked_count(0), 0);
    }
}
