//! Closed-loop client populations: timeouts, retries, abandonment.
//!
//! The paper's closed model treats the terminal population as patient —
//! a terminal waits however long its transaction takes, so offered load
//! *falls* as the system congests. Real clients are impatient: they time
//! out, retry with backoff, and give up, which makes offered load a
//! function of observed latency — the feedback loop that turns a
//! transient fault into a *metastable* failure where retry traffic holds
//! the system down long after the fault is repaired.
//!
//! This module holds the client-side data model; the state machine lives
//! in the engine (`Simulator::set_clients` and the `ClientIssue` /
//! `ClientTimeout` / `HedgeFire` events). Each client cycles through
//! Thinking → Waiting (an attempt in flight) → either completion (back
//! to Thinking), or timeout → Backoff → retry, or abandonment. The
//! bookkeeping maintains two conservation identities pinned by tests:
//! `issued == committed + abandoned + in_flight` and
//! `attempts == first_attempts + retries`.

use alc_des::dist::Dist;

/// How a client reacts to a timed-out attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryPolicy {
    /// Exponential backoff with decorrelating jitter: attempt `k`
    /// (1-based) waits `min(base_ms × factor^(k−1), max_ms)` scaled by
    /// `1 − jitter × U[0,1)`.
    Backoff {
        /// Delay before the first retry, ms.
        base_ms: f64,
        /// Multiplicative growth per further retry.
        factor: f64,
        /// Cap on the uncapped exponential delay, ms.
        max_ms: f64,
        /// Jitter fraction in `[0, 1]`: `0` = deterministic delay.
        jitter: f64,
    },
    /// Token-budgeted retries shared across the pool: each commit earns
    /// `per_commit` tokens (capped at `burst`), each retry spends one;
    /// a client whose timeout finds an empty bucket abandons instead.
    Budget {
        /// Tokens earned per committed transaction.
        per_commit: f64,
        /// Token cap (the bucket starts full).
        burst: f64,
        /// Fixed delay before a budgeted retry, ms.
        delay_ms: f64,
    },
    /// Request hedging: if the first attempt is still in flight after
    /// `delay_ms`, launch a duplicate and take whichever finishes first.
    /// A timeout cancels both; a hedged client never retries past that.
    Hedged {
        /// Delay before the duplicate attempt is launched, ms.
        delay_ms: f64,
    },
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::Backoff {
            base_ms: 100.0,
            factor: 2.0,
            max_ms: 5000.0,
            jitter: 0.5,
        }
    }
}

/// Latency→load feedback: clients stretch their think time as the
/// latency they observe grows, modelling users who slow down (or load
/// balancers that divert) when the system is slow. `gain = 0` is the
/// identity — think times match the patient closed model exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyFeedback {
    /// Think-time stretch per `reference_ms` of smoothed latency.
    pub gain: f64,
    /// Latency normalization constant, ms.
    pub reference_ms: f64,
    /// EMA weight for newly observed response times, in `(0, 1]`.
    pub weight: f64,
}

impl Default for LatencyFeedback {
    fn default() -> Self {
        LatencyFeedback {
            gain: 0.0,
            reference_ms: 1000.0,
            weight: 0.2,
        }
    }
}

/// Configuration of one closed-loop client pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Number of clients (each occupies one terminal slot; hedged pools
    /// occupy two per client).
    pub population: u32,
    /// Patience: how long a client waits before declaring an attempt
    /// dead and consulting its retry policy.
    pub timeout: Dist,
    /// Retries allowed per issued request before abandoning.
    pub max_retries: u32,
    /// What happens after a timeout.
    pub retry: RetryPolicy,
    /// Gate-side retry shedding: bounce retry attempts that arrive while
    /// the gate is saturated instead of queueing them (first attempts
    /// are never shed).
    pub shed_retries: bool,
    /// Latency→think-time feedback (identity when `gain = 0`).
    pub feedback: LatencyFeedback,
}

impl ClientConfig {
    /// A pool with the given population and timeout, default policy
    /// otherwise (exponential backoff, 3 retries, no shedding, no
    /// latency feedback).
    pub fn new(population: u32, timeout: Dist) -> Self {
        ClientConfig {
            population,
            timeout,
            max_retries: 3,
            retry: RetryPolicy::default(),
            shed_retries: false,
            feedback: LatencyFeedback::default(),
        }
    }
}

/// Client-side counters over the statistics window. The two conservation
/// identities (`issued == committed + abandoned + in_flight`,
/// `attempts == first_attempts + retries`) hold after every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Requests issued (a request spans all its attempts).
    pub issued: u64,
    /// First attempts of a request.
    pub first_attempts: u64,
    /// Total attempts (first attempts + retries + hedges).
    pub attempts: u64,
    /// Retry attempts (including hedge duplicates).
    pub retries: u64,
    /// Requests that committed.
    pub committed: u64,
    /// Requests abandoned after exhausting patience or budget.
    pub abandoned: u64,
    /// Attempt timeouts observed.
    pub timeouts: u64,
    /// Retry attempts bounced at the gate by retry shedding.
    pub shed: u64,
    /// Requests currently outstanding (issued, neither committed nor
    /// abandoned yet).
    pub in_flight: u64,
}

impl ClientStats {
    /// Goodput: committed requests per second over `duration_ms`.
    pub fn goodput_per_sec(&self, duration_ms: f64) -> f64 {
        if duration_ms <= 0.0 {
            return 0.0;
        }
        self.committed as f64 * 1000.0 / duration_ms
    }

    /// Work amplification: attempts per issued request (`1.0` when no
    /// attempt was ever retried; `0.0` before any request was issued).
    pub fn retry_amplification(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.attempts as f64 / self.issued as f64
    }
}

/// Where a client currently is in its request cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClientPhase {
    /// Between requests; the next `ClientIssue` starts a fresh request.
    Thinking,
    /// An attempt is in flight and its timeout is armed.
    Waiting,
    /// Timed out; the pending `ClientIssue` is a retry of the same
    /// request.
    Backoff,
}

/// Per-client state machine bookkeeping.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Client {
    pub phase: ClientPhase,
    /// Tombstone counter: bumped whenever the client's pending calendar
    /// events (issue, timeout, hedge) become stale.
    pub generation: u64,
    /// Attempts made for the current request (0 while Thinking).
    pub attempt: u32,
    /// Whether a hedge duplicate is in flight for the current attempt.
    pub hedged: bool,
    /// Smoothed observed response latency, ms (0 until first commit).
    pub ema_ms: f64,
}

impl Client {
    pub fn new() -> Self {
        Client {
            phase: ClientPhase::Thinking,
            generation: 0,
            attempt: 0,
            hedged: false,
            ema_ms: 0.0,
        }
    }
}

/// The pool: per-client state plus shared retry-token bucket and the
/// window's counters.
#[derive(Debug, Clone)]
pub(crate) struct ClientPool {
    pub cfg: ClientConfig,
    pub clients: Vec<Client>,
    /// Shared retry tokens (only drawn on by [`RetryPolicy::Budget`]).
    pub tokens: f64,
    pub stats: ClientStats,
}

impl ClientPool {
    pub fn new(cfg: ClientConfig) -> Self {
        let tokens = match cfg.retry {
            RetryPolicy::Budget { burst, .. } => burst,
            _ => 0.0,
        };
        ClientPool {
            clients: vec![Client::new(); cfg.population as usize], // alc-lint: allow(hot-alloc, reason="construction-time pool allocation")
            tokens,
            stats: ClientStats::default(),
            cfg,
        }
    }

    /// The think-time multiplier the latency feedback dictates for
    /// client `c`: `max(1 + gain × ema/reference, 0.1)`.
    pub fn think_multiplier(&self, c: usize) -> f64 {
        let f = &self.cfg.feedback;
        if f.gain == 0.0 {
            return 1.0;
        }
        (1.0 + f.gain * self.clients[c].ema_ms / f.reference_ms).max(0.1)
    }

    /// The deterministic part of the backoff delay for attempt number
    /// `attempt` (1-based); the caller applies jitter. Returns `None`
    /// for policies without a computed backoff curve.
    pub fn backoff_base(&self, attempt: u32) -> Option<f64> {
        match self.cfg.retry {
            RetryPolicy::Backoff {
                base_ms,
                factor,
                max_ms,
                ..
            } => {
                let exp = attempt.saturating_sub(1).min(63);
                Some((base_ms * factor.powi(exp as i32)).min(max_ms))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_identities_hold_on_the_default() {
        let s = ClientStats::default();
        assert_eq!(s.issued, s.committed + s.abandoned + s.in_flight);
        assert_eq!(s.attempts, s.first_attempts + s.retries);
        assert_eq!(s.retry_amplification(), 0.0);
        assert_eq!(s.goodput_per_sec(1000.0), 0.0);
    }

    #[test]
    fn goodput_and_amplification_derive_from_counters() {
        let s = ClientStats {
            issued: 10,
            first_attempts: 10,
            attempts: 25,
            retries: 15,
            committed: 8,
            abandoned: 1,
            timeouts: 15,
            shed: 0,
            in_flight: 1,
        };
        assert!((s.goodput_per_sec(2000.0) - 4.0).abs() < 1e-12);
        assert!((s.retry_amplification() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn backoff_curve_doubles_and_caps() {
        let mut cfg = ClientConfig::new(4, Dist::constant(500.0));
        cfg.retry = RetryPolicy::Backoff {
            base_ms: 100.0,
            factor: 2.0,
            max_ms: 350.0,
            jitter: 0.0,
        };
        let pool = ClientPool::new(cfg);
        assert_eq!(pool.backoff_base(1), Some(100.0));
        assert_eq!(pool.backoff_base(2), Some(200.0));
        assert_eq!(pool.backoff_base(3), Some(350.0)); // capped
        assert_eq!(pool.backoff_base(9), Some(350.0));
    }

    #[test]
    fn budget_pool_starts_with_a_full_bucket() {
        let mut cfg = ClientConfig::new(2, Dist::constant(500.0));
        cfg.retry = RetryPolicy::Budget {
            per_commit: 0.1,
            burst: 7.5,
            delay_ms: 50.0,
        };
        let pool = ClientPool::new(cfg);
        assert_eq!(pool.tokens, 7.5);
    }

    #[test]
    fn latency_feedback_stretches_think_time() {
        let mut cfg = ClientConfig::new(1, Dist::constant(500.0));
        cfg.feedback = LatencyFeedback {
            gain: 1.0,
            reference_ms: 1000.0,
            weight: 0.2,
        };
        let mut pool = ClientPool::new(cfg);
        assert_eq!(pool.think_multiplier(0), 1.0);
        pool.clients[0].ema_ms = 2000.0;
        assert!((pool.think_multiplier(0) - 3.0).abs() < 1e-12);
    }
}
