//! Experiment runners shared by the figure harness, examples and tests.
//!
//! Each helper wraps [`Simulator`] with the warm-up / measurement-window
//! discipline of §9's experiments and returns plain data (no printing —
//! the `alc-bench` crate owns presentation).
//!
//! # Parallelism and determinism
//!
//! Sweeps and seed replications fan their independent runs out with
//! `rayon`. Every run is fully determined by its own `(SystemConfig,
//! WorkloadConfig, CcKind, ControlConfig)` — all RNG streams derive from
//! `SystemConfig::seed`, nothing is shared between runs, and results are
//! collected in input order — so parallel and serial execution produce
//! identical output (`parallel_sweep_matches_serial` below pins this).

use alc_core::controller::LoadController;
use rayon::prelude::*;

use crate::config::{CcKind, ControlConfig, SystemConfig};
use crate::engine::{RunStats, Simulator, Trajectories};
use crate::workload::WorkloadConfig;

/// One point of a stationary sweep.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// The swept value (MPL bound or terminal count, depending on sweep).
    pub x: u32,
    /// Steady-state statistics at that point.
    pub stats: RunStats,
}

/// Runs one stationary configuration with a fixed MPL bound (or
/// `u32::MAX` for "without control") and returns steady-state statistics.
pub fn stationary_run(
    sys: &SystemConfig,
    workload: &WorkloadConfig,
    cc: CcKind,
    bound: u32,
    control: &ControlConfig,
    horizon_ms: f64,
) -> RunStats {
    let mut sim = Simulator::new(
        *sys,
        workload.clone(),
        cc,
        ControlConfig {
            initial_bound: bound,
            ..*control
        },
        None,
    );
    sim.set_record_optimum(false);
    sim.run(horizon_ms)
}

/// Sweeps the fixed MPL bound over `bounds` under a stationary workload —
/// the raw material of the Figure 1 load–throughput curve.
///
/// The per-bound runs are independent and execute in parallel; the
/// returned points are in `bounds` order and identical to a serial sweep.
pub fn sweep_bounds(
    sys: &SystemConfig,
    workload: &WorkloadConfig,
    cc: CcKind,
    bounds: &[u32],
    control: &ControlConfig,
    horizon_ms: f64,
) -> Vec<SweepPoint> {
    bounds
        .par_iter()
        .map(|&b| SweepPoint {
            x: b,
            stats: stationary_run(sys, workload, cc, b, control, horizon_ms),
        })
        .collect()
}

/// Replicates one stationary configuration across independent master
/// seeds, in parallel — the raw material for confidence intervals over
/// whole runs (batch-of-runs replication, complementing the §5
/// within-run interval theory).
///
/// Results are in `seeds` order; identical to running serially.
pub fn replicate_seeds(
    sys: &SystemConfig,
    workload: &WorkloadConfig,
    cc: CcKind,
    bound: u32,
    control: &ControlConfig,
    horizon_ms: f64,
    seeds: &[u64],
) -> Vec<RunStats> {
    seeds
        .par_iter()
        .map(|&seed| {
            let sys_seeded = SystemConfig { seed, ..*sys };
            stationary_run(&sys_seeded, workload, cc, bound, control, horizon_ms)
        })
        .collect()
}

/// Sweeps the offered load (terminal count) with a controller factory —
/// `None` builds the uncontrolled system. This is Figure 12's experiment:
/// "for different levels of concurrency a stationary simulation run was
/// conducted", with and without control.
///
/// Stays serial: the `FnMut` factory is stateful by contract (callers may
/// count or vary the controllers they hand out), so invocation order is
/// part of the public API.
pub fn sweep_terminals(
    sys: &SystemConfig,
    workload: &WorkloadConfig,
    cc: CcKind,
    terminals: &[u32],
    control: &ControlConfig,
    mut controller: Option<&mut dyn FnMut() -> Box<dyn LoadController>>,
    horizon_ms: f64,
) -> Vec<SweepPoint> {
    terminals
        .iter()
        .map(|&n| {
            let sys_n = SystemConfig {
                terminals: n,
                ..*sys
            };
            let ctrl = controller.as_mut().map(|f| f());
            let mut sim = Simulator::new(sys_n, workload.clone(), cc, *control, ctrl);
            sim.set_record_optimum(false);
            SweepPoint {
                x: n,
                stats: sim.run(horizon_ms),
            }
        })
        .collect()
}

/// Runs a dynamic-workload scenario under a controller and returns both
/// the aggregate statistics and the trajectories (Figures 13/14).
pub fn run_trajectory(
    sys: &SystemConfig,
    workload: &WorkloadConfig,
    cc: CcKind,
    control: &ControlConfig,
    controller: Box<dyn LoadController>,
    horizon_ms: f64,
    record_optimum: bool,
) -> (RunStats, Trajectories) {
    let mut sim = Simulator::new(*sys, workload.clone(), cc, *control, Some(controller));
    sim.set_record_optimum(record_optimum);
    let stats = sim.run(horizon_ms);
    (stats, sim.trajectories().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrivalProcess;
    use alc_core::controller::{IncrementalSteps, IsParams};
    use alc_des::dist::Dist;

    fn sys() -> SystemConfig {
        SystemConfig {
            terminals: 30,
            arrival: ArrivalProcess::Closed,
            cpus: 4,
            cpu_phase: Dist::exponential(4.0),
            disk_access: Dist::constant(3.0),
            disk_init_commit: Dist::constant(40.0),
            think: Dist::exponential(200.0),
            restart_delay: Dist::constant(2.0),
            db_size: 400,
            resample_on_restart: true,
            seed: 21,
        }
    }

    fn quick_control() -> ControlConfig {
        ControlConfig {
            sample_interval_ms: 500.0,
            warmup_ms: 2_000.0,
            ..ControlConfig::default()
        }
    }

    #[test]
    fn sweep_bounds_returns_a_point_per_bound() {
        let pts = sweep_bounds(
            &sys(),
            &WorkloadConfig::default(),
            CcKind::Certification,
            &[2, 8, 30],
            &quick_control(),
            10_000.0,
        );
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].x, 2);
        assert!(pts.iter().all(|p| p.stats.commits > 0));
        // A bound of 2 on 30 terminals throttles far below bound 30.
        assert!(pts[0].stats.throughput_per_sec < pts[2].stats.throughput_per_sec);
    }

    /// The acceptance property of the parallel experiment layer: a
    /// rayon-parallel sweep is byte-identical to the serial equivalent.
    #[test]
    fn parallel_sweep_matches_serial() {
        let bounds = [2u32, 5, 8, 12, 20, 30];
        let parallel = sweep_bounds(
            &sys(),
            &WorkloadConfig::default(),
            CcKind::Certification,
            &bounds,
            &quick_control(),
            8_000.0,
        );
        let serial: Vec<SweepPoint> = bounds
            .iter()
            .map(|&b| SweepPoint {
                x: b,
                stats: stationary_run(
                    &sys(),
                    &WorkloadConfig::default(),
                    CcKind::Certification,
                    b,
                    &quick_control(),
                    8_000.0,
                ),
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn replicate_seeds_is_deterministic_and_seed_sensitive() {
        let seeds = [1u64, 2, 3, 4];
        let run = || {
            replicate_seeds(
                &sys(),
                &WorkloadConfig::default(),
                CcKind::Certification,
                8,
                &quick_control(),
                8_000.0,
                &seeds,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seeds must reproduce identical statistics");
        assert_eq!(a.len(), seeds.len());
        assert!(a.iter().all(|s| s.commits > 0));
        // Different seeds give different realizations.
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "independent seeds produced identical runs"
        );
    }

    #[test]
    fn sweep_terminals_with_and_without_control() {
        let terminals = [10, 30];
        let uncontrolled = sweep_terminals(
            &sys(),
            &WorkloadConfig::default(),
            CcKind::Certification,
            &terminals,
            &ControlConfig {
                initial_bound: u32::MAX,
                ..quick_control()
            },
            None,
            10_000.0,
        );
        let mut build = || -> Box<dyn LoadController> {
            Box::new(IncrementalSteps::new(IsParams {
                initial_bound: 8,
                max_bound: 64,
                ..IsParams::default()
            }))
        };
        let controlled = sweep_terminals(
            &sys(),
            &WorkloadConfig::default(),
            CcKind::Certification,
            &terminals,
            &quick_control(),
            Some(&mut build),
            10_000.0,
        );
        assert_eq!(uncontrolled.len(), 2);
        assert_eq!(controlled.len(), 2);
        assert!(controlled.iter().all(|p| p.stats.commits > 0));
    }

    #[test]
    fn run_trajectory_produces_series() {
        let ctrl = Box::new(IncrementalSteps::new(IsParams {
            initial_bound: 5,
            max_bound: 64,
            ..IsParams::default()
        }));
        let (stats, traj) = run_trajectory(
            &sys(),
            &WorkloadConfig::default(),
            CcKind::Certification,
            &ControlConfig {
                warmup_ms: 0.0,
                ..quick_control()
            },
            ctrl,
            10_000.0,
            true,
        );
        assert!(stats.commits > 0);
        assert!(traj.bound.len() >= 15);
        assert_eq!(traj.optimum.len(), traj.bound.len());
        // The analytic optimum for a stationary workload is a constant line.
        let opts: Vec<f64> = traj.optimum.points().iter().map(|&(_, v)| v).collect();
        assert!(opts.windows(2).all(|w| w[0] == w[1]));
    }
}
