//! `alc-tpsim` — the paper's §7 simulation model, as an event-driven
//! transaction processing system simulator.
//!
//! The model is closed (Figure 11): `N` statistically identical
//! transactions circulate between a set of terminals (think time), an
//! admission gate (the load-control enforcement point of §4.3), a
//! homogeneous multiprocessor CPU station with one shared FCFS queue, and
//! a contention-free constant-time disk. The logical model gives each
//! transaction `k` uniformly chosen data items accessed over `k + 2`
//! phases: initialization, `k` access phases with gradually growing data
//! set, and commit processing.
//!
//! Concurrency control is pluggable ([`cc::ConcurrencyControl`]):
//!
//! * [`cc::Certification`] — the timestamp certification (optimistic)
//!   scheme the paper simulates, "because an optimistic protocol is more
//!   interesting due to its relationship between data contention and
//!   resource contention";
//! * [`cc::TwoPhaseLocking`] — strict 2PL with waits-for deadlock
//!   detection, the blocking class of §1;
//! * [`cc::TimestampOrdering`] — basic T/O, the other non-blocking
//!   representative named in §1.
//!
//! Workload dynamics follow §8: the number of accessed items `k`, the
//! query fraction and the updaters' write-access fraction vary over time
//! via [`workload::WorkloadConfig`] schedules (jumps and sinusoids).
//!
//! The simulator binds any [`alc_core::controller::LoadController`] to its
//! admission gate and reports the trajectories the paper plots:
//! `n*(t)`, observed MPL, throughput, and abort rates.

#![warn(missing_docs)]

pub mod cc;
pub mod client;
pub mod config;
pub mod engine;
pub mod experiment;
pub mod gate;
pub mod station;
pub mod txn;
pub mod workload;

pub use client::{ClientConfig, ClientStats, LatencyFeedback, RetryPolicy};
pub use config::{ControlConfig, SystemConfig};
pub use engine::{RunStats, Simulator, Trajectories};
pub use workload::WorkloadConfig;
