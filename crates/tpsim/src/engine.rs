//! The event-driven simulation engine (§7, Figure 11).
//!
//! One [`Simulator`] owns the calendar, the transaction slots, the CPU
//! station, the gate, the CC protocol and (optionally) a load controller.
//! Transactions flow:
//!
//! ```text
//! terminal think ──Submit──▶ gate ──admit──▶ run: phase 0 .. k+1
//!        ▲                     │ queue             │ per phase:
//!        │                     ▼                   │ [access] → CPU → disk
//!        └──────── commit ◀── validate ◀───────────┘
//!                     │ fail: abort → restart delay → rerun
//! ```
//!
//! Every `sample_interval_ms` a `Sample` event harvests the interval
//! measurement, lets the controller adjust the gate bound, and records the
//! trajectory points the paper's figures plot.

use alc_core::controller::LoadController;
use alc_core::gatelog::{GateEvent, GateLogSink};
use alc_core::meta::{MetaObservation, MetaPolicy};
use alc_core::sampler::IntervalSampler;
use alc_des::dist::Sample as _;
use alc_des::rng::{RngStream, SeedFactory};
use alc_des::series::TimeSeries;
use alc_des::stats::{TimeWeighted, Welford};
use alc_des::{Calendar, SimTime};
use alc_trace::{cat as tcat, name as tname, Args as TraceArgs, TraceEvent, TraceSink};

use crate::cc::{make_cc, AccessOutcome, ConcurrencyControl};
use crate::client::{ClientConfig, ClientPhase, ClientPool, ClientStats, RetryPolicy};
use crate::config::{ArrivalProcess, CcKind, ControlConfig, SystemConfig};
use crate::gate::SimGate;
use crate::station::{CpuJob, CpuStation};
use crate::txn::{Stage, Txn, TxnState};
use crate::workload::WorkloadConfig;

/// Simulator events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Terminal finished thinking; the transaction arrives at the gate.
    Submit(usize),
    /// An external arrival (open mode): claim a slot and submit.
    Arrival,
    /// A CPU burst completed.
    CpuDone { txn: usize, generation: u64 },
    /// A disk operation completed.
    DiskDone { txn: usize, generation: u64 },
    /// Restart delay elapsed; re-run the transaction.
    RestartBegin { txn: usize, generation: u64 },
    /// Measurement / control tick.
    Sample,
    /// Scheduled CC-protocol switch: start draining, swap when empty.
    CcSwitch { idx: usize },
    /// Scheduled station fault: apply the `idx`-th CPU-capacity delta.
    Fault { idx: usize },
    /// Client mode: client `client` issues an attempt (first attempt when
    /// Thinking, retry when in Backoff). `generation` is the *client's*
    /// tombstone counter, not the transaction slot's.
    ClientIssue { client: usize, generation: u64 },
    /// Client mode: patience expired for the client's in-flight attempt.
    ClientTimeout { client: usize, generation: u64 },
    /// Client mode: hedging delay elapsed; launch the duplicate attempt
    /// if the first one is still in flight.
    HedgeFire { client: usize, generation: u64 },
}

/// Aggregate statistics of a (post-warm-up) run window.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Measured window length, ms.
    pub duration_ms: f64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted runs (restarts + displacements).
    pub aborts: u64,
    /// Commits per second.
    pub throughput_per_sec: f64,
    /// Mean response time (submission → commit), ms.
    pub mean_response_ms: f64,
    /// Time-averaged in-system transaction count (observed MPL).
    pub mean_mpl: f64,
    /// Time-averaged gate bound `n*`.
    pub mean_bound: f64,
    /// Aborted runs / all finished runs.
    pub abort_ratio: f64,
    /// Mean CPU utilization.
    pub cpu_utilization: f64,
    /// Transactions displaced by bound drops (only with displacement on).
    pub displaced: u64,
    /// Mean data conflicts per committed transaction.
    pub conflicts_per_commit: f64,
    /// Open mode only: arrivals rejected because the slot pool was
    /// exhausted (always 0 in the closed model).
    pub lost: u64,
}

/// One completed CC-protocol switch, as recorded in the switch-event
/// trace: scheduled (`cc.phases`) and policy-driven (adaptive) switches
/// both land here. `decided_at_ms` is when the switch was requested
/// (the scheduled time, or the sample at which the meta-policy decided);
/// `completed_at_ms` is when the drain reached in-flight-zero and the
/// protocol actually swapped.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SwitchEvent {
    /// Decision time, ms.
    pub decided_at_ms: f64,
    /// Swap-completion time (end of the drain), ms.
    pub completed_at_ms: f64,
    /// Protocol in force before the swap.
    pub from: CcKind,
    /// Protocol installed by the swap.
    pub to: CcKind,
}

/// The trajectory series the paper's figures plot, sampled once per
/// measurement interval.
#[derive(Debug, Clone)]
pub struct Trajectories {
    /// The controller's bound `n*(t)` (solid line of Figures 13/14).
    pub bound: TimeSeries,
    /// Observed MPL `n(t)`.
    pub observed_mpl: TimeSeries,
    /// Interval throughput, commits/s.
    pub throughput: TimeSeries,
    /// The analytic optimum `n_opt(t)` (broken line of Figures 13/14).
    pub optimum: TimeSeries,
    /// The workload's `k(t)`, for reference.
    pub k: TimeSeries,
    /// Per-interval data conflicts per committed transaction — the raw
    /// material of the derived conflict-ratio columns (e.g. the conflict
    /// ratio at the throughput peak of a load sweep).
    pub conflict_ratio: TimeSeries,
    /// The switch-event trace: every completed CC-protocol switch
    /// (scheduled or policy-driven), in completion order. Empty for
    /// single-protocol runs, so the trajectory CSVs of existing
    /// scenarios stay byte-identical.
    pub switches: Vec<SwitchEvent>,
    /// Client mode only: attempts launched per interval (first attempts
    /// plus retries plus hedges). Empty for runs without a client pool,
    /// so the trajectory CSVs of existing scenarios stay byte-identical.
    pub attempts: TimeSeries,
    /// Client mode only: retry attempts per interval.
    pub retries: TimeSeries,
    /// Client mode only: requests abandoned per interval.
    pub abandons: TimeSeries,
}

impl Default for Trajectories {
    fn default() -> Self {
        Trajectories::new()
    }
}

impl Trajectories {
    /// Creates an empty trajectory set (the engine fills it; tests and
    /// derived-column code may build synthetic ones).
    pub fn new() -> Self {
        Trajectories {
            bound: TimeSeries::new("bound"),
            observed_mpl: TimeSeries::new("observed_mpl"),
            throughput: TimeSeries::new("throughput"),
            optimum: TimeSeries::new("optimum"),
            k: TimeSeries::new("k"),
            conflict_ratio: TimeSeries::new("conflict_ratio"),
            switches: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time; presized via reserve before each run")
            attempts: TimeSeries::new("attempts"),
            retries: TimeSeries::new("retries"),
            abandons: TimeSeries::new("abandons"),
        }
    }

    /// Pre-sizes every series for `additional` further samples.
    fn reserve(&mut self, additional: usize) {
        self.bound.reserve(additional);
        self.observed_mpl.reserve(additional);
        self.throughput.reserve(additional);
        self.optimum.reserve(additional);
        self.k.reserve(additional);
        self.conflict_ratio.reserve(additional);
        self.attempts.reserve(additional);
        self.retries.reserve(additional);
        self.abandons.reserve(additional);
    }
}

/// The engine half of the meta-control loop: the candidate protocols and
/// the `alc_core::meta` policy choosing among them by index.
struct MetaCc {
    candidates: Vec<CcKind>,
    policy: Box<dyn MetaPolicy>,
    /// The candidate index currently in force (tracks `cc_kind`).
    active: usize,
}

struct Streams {
    think: RngStream,
    cpu: RngStream,
    disk: RngStream,
    access: RngStream,
    mix: RngStream,
    restart: RngStream,
    arrival: RngStream,
    /// Client patience draws. Constructed unconditionally (streams are
    /// label-independent, so runs without clients stay byte-identical)
    /// but only drawn from in client mode.
    client_timeout: RngStream,
    /// Backoff-jitter draws (client mode, `RetryPolicy::Backoff` only).
    retry_jitter: RngStream,
}

/// The §7 transaction processing system simulator.
pub struct Simulator {
    sys: SystemConfig,
    workload: WorkloadConfig,
    control: ControlConfig,
    cal: Calendar<Event>,
    txns: Vec<Txn>,
    cc: Box<dyn ConcurrencyControl>,
    cpu: CpuStation,
    gate: SimGate,
    rng: Streams,
    controller: Option<Box<dyn LoadController>>,
    sampler: IntervalSampler,
    ts_counter: u64,
    /// Open mode: transaction slots currently unused (LIFO for cache
    /// friendliness; slot identity carries no semantics in open mode).
    free_slots: Vec<usize>,
    /// Events processed so far (perf accounting; `perfgate` divides by
    /// wall time).
    events: u64,
    /// Reusable buffer for access-set draws (cleared per instance).
    access_scratch: Vec<u64>,
    /// The protocol currently in force (start value, then whatever the
    /// last completed [`Simulator::set_cc_switches`] entry installed).
    cc_kind: CcKind,
    /// Scheduled protocol switches `(t_ms, target)`, ascending.
    cc_switches: Vec<(f64, CcKind)>,
    /// A switch is draining: admissions are held at the gate and restarts
    /// parked until the last in-CC transaction commits or aborts, then the
    /// protocol swaps to this target.
    drain_target: Option<CcKind>,
    /// Decision time of the switch currently draining (or of the
    /// just-completed immediate swap) — the `decided_at_ms` of its
    /// switch-event record.
    drain_decided_ms: f64,
    /// Closed-loop protocol selection: candidates, the policy choosing
    /// among them, and the policy's active index.
    meta: Option<MetaCc>,
    /// Transactions currently between `cc.begin` and `cc.commit`/`abort`.
    cc_active: u32,
    /// Restart-delay expiries deferred by an in-progress drain (FIFO).
    parked_restarts: Vec<usize>,
    /// Completed protocol switches (for tests/diagnostics).
    switches_completed: u64,
    /// Scheduled station faults `(t_ms, cpu-count delta)`, ascending.
    fault_deltas: Vec<(f64, i32)>,
    /// Reusable buffer for jobs dispatched by a capacity restore.
    fault_scratch: Vec<CpuJob>,
    /// Pool of reusable id buffers for unblocked/admitted lists. Taken by
    /// the handful of sites that need one; returned cleared. Depth equals
    /// the deepest take nesting (2), so steady state allocates nothing.
    scratch_pool: Vec<Vec<usize>>,
    // Aggregate statistics (reset at end of warm-up).
    commits: u64,
    aborts: u64,
    conflicts: u64,
    displaced: u64,
    lost: u64,
    response: Welford,
    mpl_avg: TimeWeighted,
    bound_avg: TimeWeighted,
    window_start: SimTime,
    trajectories: Trajectories,
    optimum_cache: std::collections::BTreeMap<(u32, u32, u32, u32), u32>,
    record_optimum: bool,
    /// Cached Zipf sampler for the hot-spot extension, keyed by the skew
    /// in force when it was built.
    zipf_cache: Option<(f64, alc_des::dist::Zipf)>,
    /// Optional gate-log recorder mirroring every sampler input and
    /// controller decision, so runs become replayable through
    /// `alc-runtime` (see `alc_core::gatelog`). `None` costs nothing.
    gate_log: Option<Box<dyn GateLogSink>>,
    /// Optional span/event trace sink (see `alc_trace`): per-transaction
    /// lifecycle spans, service bursts, control decisions, CC switches,
    /// faults and client events, stamped with simulated time. `None`
    /// costs nothing and keeps runs byte-identical to untraced ones.
    trace: Option<Box<dyn TraceSink>>,
    /// Closed-loop client pool (`None` = the paper's patient terminals).
    /// Installed once by [`Simulator::set_clients`] before the run.
    clients: Option<ClientPool>,
    /// Cumulative client counters at the previous sample, for the
    /// per-interval deltas the client trajectory series record.
    last_attempts: u64,
    last_retries: u64,
    last_abandoned: u64,
}

impl Simulator {
    /// Builds a simulator. `controller = None` runs with the static
    /// `control.initial_bound` (use `u32::MAX` for "no control").
    pub fn new(
        sys: SystemConfig,
        workload: WorkloadConfig,
        cc_kind: CcKind,
        control: ControlConfig,
        controller: Option<Box<dyn LoadController>>,
    ) -> Self {
        assert!(sys.terminals > 0, "a closed model needs terminals");
        let seeds = SeedFactory::new(sys.seed);
        let t0 = SimTime::ZERO;
        let initial_bound = controller
            .as_ref()
            .map_or(control.initial_bound, |c| c.current_bound());
        let slots = sys.terminals as usize;
        let mut sim = Simulator {
            // Every slot has at most one in-flight event plus a Sample and
            // an Arrival; capacity beyond that only ever holds tombstones.
            cal: Calendar::with_capacity(2 * slots + 8),
            txns: (0..sys.terminals).map(|_| Txn::new()).collect(), // alc-lint: allow(hot-alloc, reason="construction-time slot allocation")
            cc: make_cc(cc_kind, slots, sys.db_size as usize),
            cc_kind,
            cc_switches: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time; filled once by set_cc_switches before the run")
            drain_target: None,
            drain_decided_ms: 0.0,
            meta: None,
            cc_active: 0,
            parked_restarts: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time scratch; retains capacity across drains")
            switches_completed: 0,
            fault_deltas: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time; filled once by set_faults before the run")
            fault_scratch: Vec::new(), // alc-lint: allow(hot-alloc, reason="construction-time scratch; retains capacity across faults")
            cpu: CpuStation::with_queue_capacity(sys.cpus, t0, slots),
            gate: SimGate::with_queue_capacity(initial_bound, slots),
            rng: Streams {
                think: seeds.stream("think"),
                cpu: seeds.stream("cpu"),
                disk: seeds.stream("disk"),
                access: seeds.stream("access"),
                mix: seeds.stream("mix"),
                restart: seeds.stream("restart"),
                arrival: seeds.stream("arrival"),
                client_timeout: seeds.stream("client_timeout"),
                retry_jitter: seeds.stream("retry_jitter"),
            },
            controller,
            sampler: IntervalSampler::new(control.indicator, 0.0, 0),
            ts_counter: 0,
            free_slots: Vec::with_capacity(slots),
            events: 0,
            access_scratch: Vec::with_capacity(16),
            scratch_pool: Vec::with_capacity(4),
            commits: 0,
            aborts: 0,
            conflicts: 0,
            displaced: 0,
            lost: 0,
            response: Welford::new(),
            mpl_avg: TimeWeighted::new(t0, 0.0),
            bound_avg: TimeWeighted::new(t0, f64::from(initial_bound).min(1e9)),
            window_start: t0,
            trajectories: Trajectories::new(),
            optimum_cache: std::collections::BTreeMap::new(),
            record_optimum: true,
            zipf_cache: None,
            gate_log: None,
            trace: None,
            clients: None,
            last_attempts: 0,
            last_retries: 0,
            last_abandoned: 0,
            sys,
            workload,
            control,
        };
        match sim.sys.arrival {
            ArrivalProcess::Closed => {
                // Terminals start thinking; their first submissions
                // stagger naturally through the think-time distribution.
                let factor = sim.workload.think_time_factor_at(t0.millis());
                for i in 0..sim.sys.terminals as usize {
                    let delay = sim.sys.think.sample(&mut sim.rng.think) * factor;
                    sim.cal.schedule(t0 + delay, Event::Submit(i));
                }
            }
            ArrivalProcess::Open { interarrival } => {
                sim.free_slots = (0..sim.sys.terminals as usize).rev().collect(); // alc-lint: allow(hot-alloc, reason="one-time init of the free-slot stack at simulation start")
                let delay = interarrival.sample(&mut sim.rng.arrival)
                    / sim.workload.arrival_rate_factor_at(t0.millis());
                sim.cal.schedule(t0 + delay, Event::Arrival);
            }
        }
        sim.cal
            .schedule(t0 + sim.control.sample_interval_ms, Event::Sample);
        sim
    }

    /// Disables the (potentially costly) analytic-optimum trajectory.
    pub fn set_record_optimum(&mut self, on: bool) {
        self.record_optimum = on;
    }

    /// Installs a gate-log sink. From then on every sampler input (MPL
    /// change, commit, abort) and every controller decision is mirrored
    /// into the sink as a [`GateEvent`], making the run replayable: the
    /// recorded stream fed through an identically built sampler +
    /// controller reproduces the decision sequence bit-for-bit. Call
    /// before running; recording does not perturb the simulation.
    pub fn set_gate_log(&mut self, sink: Box<dyn GateLogSink>) {
        self.gate_log = Some(sink);
    }

    /// Removes and returns the installed gate-log sink (typically after
    /// the run, to extract the recorded events).
    pub fn take_gate_log(&mut self) -> Option<Box<dyn GateLogSink>> {
        self.gate_log.take()
    }

    /// Installs a span/event trace sink. From then on the engine emits
    /// the `alc_trace` event vocabulary: per-transaction lifecycle spans
    /// (gate wait, admitted attempt, execution runs, lock blocks,
    /// restart waits), CPU/disk service bursts, gate decisions and
    /// MPL/bound counters, CC switch decide/complete markers, faults,
    /// and client timeout/shed/abandon/hedge events with retry chains
    /// linked by flow ids. Everything is stamped with simulated time
    /// and ids come from deterministic counters, so traces are
    /// byte-identical across reruns. Call after [`Simulator::set_clients`]
    /// (client lane metadata is emitted at install time) and before the
    /// run. Tracing draws no randomness and never perturbs the run.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
        self.trace_metadata();
    }

    /// Removes and returns the trace sink, first closing every span
    /// still open at the current time with outcome `"open"` — a taken
    /// trace always has balanced begin/end counts per lane.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace_close_open_spans();
        self.trace.take()
    }

    /// Emits process/thread naming metadata for every lane the run can
    /// touch: the node's control plane and transaction slots, plus the
    /// client population when one is installed.
    fn trace_metadata(&mut self) {
        let n_slots = self.txns.len();
        let population = self.client_population();
        let Some(t) = self.trace.as_mut() else { return };
        t.emit(&TraceEvent::process_name(alc_trace::PID_NODE, "node", Some(0)));
        t.emit(&TraceEvent::thread_name(
            alc_trace::PID_NODE,
            alc_trace::TID_CONTROL,
            "control",
            None,
        ));
        for i in 0..n_slots {
            t.emit(&TraceEvent::thread_name(
                alc_trace::PID_NODE,
                1 + i as u32,
                "txn-slot-",
                Some(i as u32),
            ));
        }
        if population > 0 {
            t.emit(&TraceEvent::process_name(alc_trace::PID_CLIENTS, "clients", None));
            for c in 0..population {
                t.emit(&TraceEvent::thread_name(
                    alc_trace::PID_CLIENTS,
                    c as u32,
                    "client-",
                    Some(c as u32),
                ));
            }
        }
    }

    /// Closes the spans of every slot not at its terminal (Thinking)
    /// state, so a trace taken mid-flight still balances.
    fn trace_close_open_spans(&mut self) {
        if self.trace.is_none() {
            return;
        }
        for i in 0..self.txns.len() {
            match self.txns[i].state {
                TxnState::Thinking => {}
                TxnState::Queued => self.tr_end(tname::WAIT, i, "open"),
                TxnState::Running { .. } => {
                    self.tr_end(tname::RUN, i, "open");
                    self.tr_end(tname::ATTEMPT, i, "open");
                }
                TxnState::Blocked { .. } => {
                    self.tr_end(tname::BLOCKED, i, "open");
                    self.tr_end(tname::RUN, i, "open");
                    self.tr_end(tname::ATTEMPT, i, "open");
                }
                TxnState::RestartWait => {
                    self.tr_end(tname::RESTART_WAIT, i, "open");
                    self.tr_end(tname::ATTEMPT, i, "open");
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Trace emission helpers. All are no-ops without an installed sink;
    // none draws randomness or mutates simulation state, so tracing can
    // never perturb a run (the golden CSVs pin that).
    // ------------------------------------------------------------------

    /// Opens span `name` on transaction slot `i`'s lane.
    #[inline]
    fn tr_begin(&mut self, name: &'static str, i: usize) {
        let ts = self.cal.now().millis();
        if let Some(t) = self.trace.as_mut() {
            t.emit(&TraceEvent::begin(
                name,
                tcat::TXN,
                ts,
                alc_trace::PID_NODE,
                1 + i as u32,
            ));
        }
    }

    /// Closes span `name` on slot `i`'s lane with `outcome`.
    #[inline]
    fn tr_end(&mut self, name: &'static str, i: usize, outcome: &'static str) {
        let ts = self.cal.now().millis();
        if let Some(t) = self.trace.as_mut() {
            t.emit(
                &TraceEvent::end(name, tcat::TXN, ts, alc_trace::PID_NODE, 1 + i as u32)
                    .with(TraceArgs::Outcome(outcome)),
            );
        }
    }

    /// Emits a service burst starting now on slot `i`'s lane.
    #[inline]
    fn tr_burst(&mut self, name: &'static str, i: usize, dur_ms: f64) {
        let ts = self.cal.now().millis();
        if let Some(t) = self.trace.as_mut() {
            t.emit(&TraceEvent::complete(
                name,
                tcat::SVC,
                ts,
                dur_ms,
                alc_trace::PID_NODE,
                1 + i as u32,
            ));
        }
    }

    /// Emits a control-plane instant marker.
    #[inline]
    fn tr_instant(&mut self, name: &'static str, cat: &'static str, args: TraceArgs) {
        let ts = self.cal.now().millis();
        if let Some(t) = self.trace.as_mut() {
            t.emit(
                &TraceEvent::instant(name, cat, ts, alc_trace::PID_NODE, alc_trace::TID_CONTROL)
                    .with(args),
            );
        }
    }

    /// Emits an instant on client `c`'s lane.
    #[inline]
    fn tr_client_instant(&mut self, name: &'static str, c: usize) {
        let ts = self.cal.now().millis();
        if let Some(t) = self.trace.as_mut() {
            t.emit(&TraceEvent::instant(
                name,
                tcat::CLIENT,
                ts,
                alc_trace::PID_CLIENTS,
                c as u32,
            ));
        }
    }

    /// Emits a control-plane counter sample.
    #[inline]
    fn tr_counter(&mut self, name: &'static str, value: f64) {
        let ts = self.cal.now().millis();
        if let Some(t) = self.trace.as_mut() {
            t.emit(&TraceEvent::counter(name, ts, alc_trace::PID_NODE, value));
        }
    }

    /// Links a retry chain: the flow id is derived from the client index
    /// and its tombstone generation, both deterministic counters, so the
    /// start (when the retry is scheduled) and the finish (when it
    /// issues) pair up without any stored state.
    #[inline]
    fn tr_retry_flow(&mut self, start: bool, c: usize, generation: u64) {
        let ts = self.cal.now().millis();
        if let Some(t) = self.trace.as_mut() {
            let id = ((c as u64) << 32) | (generation & 0xffff_ffff);
            let ev = if start {
                TraceEvent::flow_start(tname::RETRY, tcat::CLIENT, id, ts, alc_trace::PID_CLIENTS, c as u32)
            } else {
                TraceEvent::flow_end(tname::RETRY, tcat::CLIENT, id, ts, alc_trace::PID_CLIENTS, c as u32)
            };
            t.emit(&ev);
        }
    }

    /// A queued slot was admitted: close its wait span and open the
    /// attempt span. Shared by every gate-departure admission loop.
    #[inline]
    fn tr_admitted_from_queue(&mut self, a: usize) {
        self.tr_end(tname::WAIT, a, "admit");
        self.tr_begin(tname::ATTEMPT, a);
    }

    /// Installs a closed-loop client pool: impatient clients replace the
    /// paper's patient terminals. Each client owns one transaction slot
    /// (hedged pools own two — primary and duplicate), cycles through
    /// think → issue → wait, and on timeout cancels its in-flight
    /// attempt and consults its retry policy. Timeouts and shed retries
    /// feed the sampler (and the gate log) as aborts, so retry-aware
    /// control laws observe the storm they must clamp. Call once, before
    /// the run, in closed mode only.
    pub fn set_clients(&mut self, cfg: ClientConfig) {
        assert!(
            matches!(self.sys.arrival, ArrivalProcess::Closed),
            "client pools model closed-loop terminals; open mode has no clients"
        );
        assert!(cfg.population >= 1, "a client pool needs at least one client");
        assert!(self.clients.is_none(), "set_clients may only be called once");
        let slots_needed = match cfg.retry {
            RetryPolicy::Hedged { .. } => 2 * cfg.population as usize,
            _ => cfg.population as usize,
        };
        assert!(
            slots_needed <= self.txns.len(),
            "client population (with hedge duplicates) must fit the terminal count"
        );
        // The constructor's per-terminal Submit events are inert in
        // client mode (see `on_submit`); each client draws its own first
        // think delay instead.
        let t0 = self.now();
        let factor = self.workload.think_time_factor_at(t0.millis());
        for c in 0..cfg.population as usize {
            let delay = self.sys.think.sample(&mut self.rng.think) * factor;
            self.cal.schedule(
                t0 + delay,
                Event::ClientIssue {
                    client: c,
                    generation: 0,
                },
            );
        }
        self.clients = Some(ClientPool::new(cfg));
    }

    /// Client-pool counters of the current statistics window (`None`
    /// for runs without a client pool).
    pub fn client_stats(&self) -> Option<ClientStats> {
        self.clients.as_ref().map(|p| p.stats)
    }

    /// Schedules per-phase CC-protocol switches: at each `t_ms` the gate
    /// holds new admissions, in-flight transactions drain (commit or
    /// abort under the old protocol), the protocol swaps, and held work
    /// resumes. Times must be ascending and ≥ the current time. Call
    /// before running; an empty slice is a no-op (the fault-free and
    /// switch-free paths are byte-identical to a plain run).
    pub fn set_cc_switches(&mut self, switches: &[(f64, CcKind)]) {
        assert!(
            self.meta.is_none(),
            "adaptive CC and scheduled cc switches are mutually exclusive"
        );
        let mut last = self.now().millis();
        for &(at, _) in switches {
            assert!(at >= last, "cc switch times must be ascending");
            last = at;
        }
        self.cc_switches = switches.to_vec(); // alc-lint: allow(hot-alloc, reason="setup API, called once before the run starts")
        for (idx, &(at, _)) in self.cc_switches.iter().enumerate() {
            self.cal.schedule(SimTime::new(at), Event::CcSwitch { idx });
        }
    }

    /// Schedules station fault events: at each `t_ms` the installed CPU
    /// count changes by `delta` (negative = kill, positive = restart),
    /// clamped at 0. Killed servers finish their current bursts; restored
    /// servers immediately pick up queued work. Times must be ascending.
    pub fn set_faults(&mut self, deltas: &[(f64, i32)]) {
        let mut last = self.now().millis();
        for &(at, _) in deltas {
            assert!(at >= last, "fault times must be ascending");
            last = at;
        }
        self.fault_deltas = deltas.to_vec(); // alc-lint: allow(hot-alloc, reason="setup API, called once before the run starts")
        for (idx, &(at, _)) in self.fault_deltas.iter().enumerate() {
            self.cal.schedule(SimTime::new(at), Event::Fault { idx });
        }
    }

    /// Enables closed-loop protocol selection: at every measurement
    /// interval the policy sees the interval's conflict state (conflict
    /// ratio, restart rate, gate queue depth) and may pick another
    /// candidate; the engine then performs the same drain-and-swap a
    /// scheduled `set_cc_switches` entry would, so a policy decision is
    /// exactly as safe as a scheduled phase switch. `candidates[0]` must
    /// be the protocol the simulator was constructed with, and adaptive
    /// selection is mutually exclusive with scheduled switches. Call
    /// before running.
    pub fn set_adaptive_cc(&mut self, candidates: Vec<CcKind>, policy: Box<dyn MetaPolicy>) {
        assert!(
            self.cc_switches.is_empty(),
            "adaptive CC and scheduled cc switches are mutually exclusive"
        );
        assert!(
            candidates.len() >= 2,
            "adaptive CC needs at least two candidates"
        );
        assert_eq!(
            candidates.len(),
            policy.candidate_count(),
            "policy candidate count must match the candidate list"
        );
        assert_eq!(
            candidates[0], self.cc_kind,
            "candidates[0] must be the initial protocol"
        );
        self.meta = Some(MetaCc {
            candidates,
            policy,
            active: 0,
        });
    }

    /// The CC protocol currently in force.
    pub fn current_cc(&self) -> CcKind {
        self.cc_kind
    }

    /// Completed protocol switches so far.
    pub fn cc_switches_completed(&self) -> u64 {
        self.switches_completed
    }

    /// Transactions currently inside the CC protocol (between `begin`
    /// and commit/abort) — 0 at every completed switch boundary.
    pub fn cc_in_flight(&self) -> u32 {
        self.cc_active
    }

    /// CPU servers currently installed (varies under fault events).
    pub fn cpu_servers(&self) -> u32 {
        self.cpu.servers()
    }

    /// Census of transaction-slot states
    /// `[thinking, queued, running, blocked, restart-wait]` — the
    /// conservation oracle for the switch/fault invariant tests (the sum
    /// is always the slot count; nothing is lost or double-counted).
    pub fn txn_state_census(&self) -> [usize; 5] {
        let mut census = [0usize; 5];
        for t in &self.txns {
            let i = match t.state {
                TxnState::Thinking => 0,
                TxnState::Queued => 1,
                TxnState::Running { .. } => 2,
                TxnState::Blocked { .. } => 3,
                TxnState::RestartWait => 4,
            };
            census[i] += 1;
        }
        census
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.cal.now()
    }

    /// The gate (bound, population, queue length).
    pub fn gate(&self) -> &SimGate {
        &self.gate
    }

    /// The recorded trajectories.
    pub fn trajectories(&self) -> &Trajectories {
        &self.trajectories
    }

    /// Events processed since construction — the `perfgate` numerator.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Runs until `until_ms`, then returns the statistics of the window
    /// since the last [`Simulator::reset_window`] (or construction).
    pub fn run_until(&mut self, until_ms: f64) -> RunStats {
        let t_end = SimTime::new(until_ms);
        // Size the trajectory buffers for the whole stretch up front so
        // sampling never grows them mid-run.
        if self.control.sample_interval_ms > 0.0 {
            let horizon = (until_ms - self.now().millis()).max(0.0);
            let samples = (horizon / self.control.sample_interval_ms) as usize + 2;
            self.trajectories.reserve(samples);
        }
        while let Some(t) = self.cal.peek_time() {
            if t > t_end {
                break;
            }
            let (_, ev) = self.cal.pop().expect("peeked event must pop");
            self.events += 1;
            self.handle(ev);
            // Drain completion runs at the top level (never from inside a
            // commit/abort handler) so the swap can safely restart work.
            if self.drain_target.is_some() && self.cc_active == 0 {
                let target = self.drain_target.take().expect("checked above");
                self.complete_cc_switch(target);
            }
        }
        self.stats_at(t_end)
    }

    /// Convenience: runs `warmup_ms` (from the control config), resets the
    /// statistics window, then runs to `horizon_ms` and reports.
    pub fn run(&mut self, horizon_ms: f64) -> RunStats {
        let warmup = self.control.warmup_ms.min(horizon_ms);
        if warmup > 0.0 {
            self.run_until(warmup);
            self.reset_window();
        }
        self.run_until(horizon_ms)
    }

    /// Restarts the aggregate-statistics window (end of warm-up).
    pub fn reset_window(&mut self) {
        let now = self.now();
        self.commits = 0;
        self.aborts = 0;
        self.conflicts = 0;
        self.displaced = 0;
        self.lost = 0;
        self.response = Welford::new();
        self.mpl_avg.reset(now);
        self.bound_avg.reset(now);
        self.cpu.reset_stats(now);
        self.window_start = now;
        if let Some(pool) = &mut self.clients {
            // Re-base the client counters so the conservation identities
            // (`issued == committed + abandoned + in_flight`,
            // `attempts == first_attempts + retries`) keep holding over
            // the fresh window: outstanding requests count as issued.
            let s = &mut pool.stats;
            s.issued = s.in_flight;
            s.first_attempts = 0;
            s.attempts = 0;
            s.retries = 0;
            s.committed = 0;
            s.abandoned = 0;
            s.timeouts = 0;
            s.shed = 0;
        }
        self.last_attempts = 0;
        self.last_retries = 0;
        self.last_abandoned = 0;
    }

    fn stats_at(&self, t_end: SimTime) -> RunStats {
        let duration = (t_end - self.window_start).max(f64::EPSILON);
        let finished = self.commits + self.aborts;
        RunStats {
            duration_ms: duration,
            commits: self.commits,
            aborts: self.aborts,
            throughput_per_sec: self.commits as f64 * 1000.0 / duration,
            mean_response_ms: self.response.mean(),
            mean_mpl: self.mpl_avg.average(t_end),
            mean_bound: self.bound_avg.average(t_end),
            abort_ratio: if finished == 0 {
                0.0
            } else {
                self.aborts as f64 / finished as f64
            },
            cpu_utilization: self.cpu.mean_utilization(t_end),
            displaced: self.displaced,
            conflicts_per_commit: if self.commits == 0 {
                0.0
            } else {
                self.conflicts as f64 / self.commits as f64
            },
            lost: self.lost,
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Borrows a pooled id buffer (cleared). Return with
    /// [`Simulator::put_scratch`] so its capacity is reused — after
    /// warm-up no call site touches the allocator.
    fn take_scratch(&mut self) -> Vec<usize> {
        self.scratch_pool.pop().unwrap_or_default()
    }

    fn put_scratch(&mut self, mut buf: Vec<usize>) {
        buf.clear();
        self.scratch_pool.push(buf);
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Submit(i) => self.on_submit(i),
            Event::Arrival => self.on_arrival(),
            Event::CpuDone { txn, generation } => self.on_cpu_done(txn, generation),
            Event::DiskDone { txn, generation } => self.on_disk_done(txn, generation),
            Event::RestartBegin { txn, generation } => self.on_restart(txn, generation),
            Event::Sample => self.on_sample(),
            Event::CcSwitch { idx } => self.on_cc_switch(idx),
            Event::Fault { idx } => self.on_fault(idx),
            Event::ClientIssue { client, generation } => self.on_client_issue(client, generation),
            Event::ClientTimeout { client, generation } => {
                self.on_client_timeout(client, generation)
            }
            Event::HedgeFire { client, generation } => self.on_hedge_fire(client, generation),
        }
    }

    /// A scheduled protocol switch fires: swap immediately if nothing is
    /// inside the CC layer, otherwise hold admissions and drain. A switch
    /// firing while an earlier one still drains retargets the drain
    /// (last switch wins).
    fn on_cc_switch(&mut self, idx: usize) {
        let target = self.cc_switches[idx].1;
        self.begin_cc_switch(target);
    }

    /// Starts a protocol switch (scheduled or policy-driven): immediate
    /// swap when nothing is inside the CC layer, drain otherwise.
    fn begin_cc_switch(&mut self, target: CcKind) {
        self.tr_instant(
            tname::CC_DECIDE,
            tcat::CC,
            TraceArgs::Switch {
                from: self.cc_kind.name(),
                to: target.name(),
            },
        );
        self.drain_decided_ms = self.now().millis();
        if self.cc_active == 0 && self.drain_target.is_none() {
            self.complete_cc_switch(target);
        } else {
            self.drain_target = Some(target);
            self.gate.set_hold();
        }
    }

    /// The system is empty of in-CC transactions: install the target
    /// protocol (fresh state — nothing carries over by construction) and
    /// resume the held work in arrival order.
    fn complete_cc_switch(&mut self, target: CcKind) {
        let completed_at = self.now().millis();
        self.trajectories.switches.push(SwitchEvent {
            decided_at_ms: self.drain_decided_ms,
            completed_at_ms: completed_at,
            from: self.cc_kind,
            to: target,
        });
        self.tr_instant(
            tname::CC_COMPLETE,
            tcat::CC,
            TraceArgs::Switch {
                from: self.cc_kind.name(),
                to: target.name(),
            },
        );
        // Re-anchor the policy's dwell/cooldown guards at the *swap*: a
        // drain can outlast a cooldown measured from the decision, and
        // the samples right after the swap measure the drain dip, not
        // the workload.
        if let Some(meta) = &mut self.meta {
            meta.policy.note_swap_complete(completed_at);
        }
        self.cc = make_cc(target, self.txns.len(), self.sys.db_size as usize);
        self.cc_kind = target;
        self.switches_completed += 1;
        // Parked restarts first: they kept their MPL slot through the
        // drain, so they re-enter execution before any new admission.
        // A parked transaction may have been *displaced* while waiting
        // (displacement victims include `RestartWait` slots): it is in
        // the gate queue now and will re-enter through the release
        // below — restarting it here too would double-start the slot.
        let mut parked = std::mem::take(&mut self.parked_restarts);
        for &i in &parked {
            if self.txns[i].state == TxnState::RestartWait {
                self.restart_now(i);
            }
        }
        parked.clear();
        self.parked_restarts = parked;
        let mut admitted = self.take_scratch();
        self.gate.release_hold_into(&mut admitted);
        for &a in &admitted {
            self.txns[a].state = TxnState::Thinking; // transient
            self.tr_admitted_from_queue(a);
            self.note_mpl();
            self.start_instance(a);
        }
        self.put_scratch(admitted);
        debug_assert_eq!(
            self.cc_active as usize,
            self.txns
                .iter()
                .filter(|t| {
                    matches!(t.state, TxnState::Running { .. } | TxnState::Blocked { .. })
                })
                .count(),
            "cc_active diverged from the running/blocked census after a switch"
        );
    }

    /// A scheduled station fault fires: apply the CPU-capacity delta and
    /// schedule completions for any queued jobs a restore dispatched.
    fn on_fault(&mut self, idx: usize) {
        let delta = self.fault_deltas[idx].1;
        self.tr_instant(tname::FAULT, tcat::FAULT, TraceArgs::Delta(delta));
        let target = (i64::from(self.cpu.servers()) + i64::from(delta)).max(0) as u32;
        let now = self.now();
        let mut started = std::mem::take(&mut self.fault_scratch);
        let txns = &self.txns;
        self.cpu.set_servers_into(
            now,
            target,
            |j| j.generation != txns[j.txn].generation,
            &mut started,
        );
        for job in started.drain(..) {
            self.tr_burst(tname::CPU, job.txn, job.burst_ms);
            self.cal.schedule_in(
                job.burst_ms,
                Event::CpuDone {
                    txn: job.txn,
                    generation: job.generation,
                },
            );
        }
        self.fault_scratch = started;
    }

    /// Open mode: claim a free slot for the arriving transaction (or
    /// count it lost) and schedule the next arrival.
    fn on_arrival(&mut self) {
        let ArrivalProcess::Open { interarrival } = self.sys.arrival else {
            debug_assert!(false, "Arrival event in closed mode");
            return;
        };
        match self.free_slots.pop() {
            Some(i) => self.on_submit(i),
            None => self.lost += 1,
        }
        // The workload's arrival-rate factor modulates the offered load:
        // dividing the delay by a(t) multiplies the instantaneous rate.
        let delay = interarrival.sample(&mut self.rng.arrival)
            / self.workload.arrival_rate_factor_at(self.now().millis());
        self.cal.schedule_in(delay, Event::Arrival);
    }

    fn on_submit(&mut self, i: usize) {
        if self.clients.is_some() {
            // Client mode: the constructor's terminal Submit events are
            // inert — clients drive their slots via ClientIssue instead.
            return;
        }
        self.submit_attempt(i);
    }

    /// One slot arrives at the gate: admitted immediately or queued.
    /// Shared by terminal submissions and client attempts.
    fn submit_attempt(&mut self, i: usize) {
        let now = self.now();
        debug_assert_eq!(self.txns[i].state, TxnState::Thinking);
        self.txns[i].submitted_at = now;
        if self.gate.arrive(i) {
            self.tr_begin(tname::ATTEMPT, i);
            self.note_mpl();
            self.start_instance(i);
        } else {
            self.txns[i].state = TxnState::Queued;
            self.tr_begin(tname::WAIT, i);
        }
    }

    /// Admission: draw a fresh instance (access set, mix) from the
    /// workload schedules at the current time and start running. The
    /// slot's `items` buffer is refilled in place, so a warmed-up run
    /// creates instances without touching the allocator.
    fn start_instance(&mut self, i: usize) {
        let now = self.now();
        let w = self.workload.at(now.millis());
        let is_query = self.rng.mix.chance(w.query_frac);
        self.draw_access_set(w.k as usize, w.access_skew);
        self.txns[i].items.clear();
        for idx in 0..self.access_scratch.len() {
            let item = self.access_scratch[idx];
            let write = !is_query && self.rng.mix.chance(w.write_frac);
            self.txns[i].items.push((item, write));
        }
        self.txns[i].is_query = is_query;
        self.txns[i].restarts = 0;
        self.begin_run(i);
    }

    /// Draws `k` distinct items into `self.access_scratch`: uniformly for
    /// `skew = 0` (the paper's "no hot spots"), Zipf-skewed otherwise
    /// (hot-spot extension; the paper's uniform model is the `skew = 0`
    /// special case). Duplicate checks scan the scratch directly — `k` is
    /// small, so that beats a hash set and keeps the draw allocation-free.
    fn draw_access_set(&mut self, k: usize, skew: f64) {
        if skew <= 0.0 {
            self.rng
                .access
                .distinct_below_into(self.sys.db_size, k, &mut self.access_scratch);
            return;
        }
        let rebuild = match &self.zipf_cache {
            Some((theta, _)) => (theta - skew).abs() > 1e-12,
            None => true,
        };
        if rebuild {
            self.zipf_cache = Some((skew, alc_des::dist::Zipf::new(self.sys.db_size, skew)));
        }
        let zipf = &self.zipf_cache.as_ref().expect("just built").1;
        let out = &mut self.access_scratch;
        out.clear();
        // Rejection on duplicates; under extreme skew fall back to filling
        // with the coldest untouched items so the draw always terminates.
        let mut attempts = 0;
        while out.len() < k && attempts < 64 * k {
            let item = zipf.sample(&mut self.rng.access);
            attempts += 1;
            if !out.contains(&item) {
                out.push(item);
            }
        }
        let mut fill = self.sys.db_size;
        while out.len() < k {
            fill -= 1;
            if !out.contains(&fill) {
                out.push(fill);
            }
        }
    }

    /// (Re)starts execution of the current instance from phase 0.
    fn begin_run(&mut self, i: usize) {
        let now = self.now();
        self.ts_counter += 1;
        let ts = self.ts_counter;
        {
            let txn = &mut self.txns[i];
            txn.generation += 1;
            txn.ts = ts;
            txn.run_started_at = now;
            txn.state = TxnState::Running {
                phase: 0,
                stage: Stage::Cpu,
            };
        }
        self.cc.begin(i, ts);
        self.cc_active += 1;
        self.tr_begin(tname::RUN, i);
        self.request_cpu(i);
    }

    fn request_cpu(&mut self, i: usize) {
        let now = self.now();
        let burst = self.sys.cpu_phase.sample(&mut self.rng.cpu);
        let job = CpuJob {
            txn: i,
            generation: self.txns[i].generation,
            burst_ms: burst,
        };
        if let Some(job) = self.cpu.offer(now, job) {
            self.tr_burst(tname::CPU, job.txn, job.burst_ms);
            self.cal.schedule_in(
                job.burst_ms,
                Event::CpuDone {
                    txn: job.txn,
                    generation: job.generation,
                },
            );
        }
    }

    fn on_cpu_done(&mut self, i: usize, generation: u64) {
        let now = self.now();
        // The server frees regardless of whether the run is still alive;
        // dispatch the next live job.
        let txns = &self.txns;
        if let Some(job) = self
            .cpu
            .complete(now, |j| j.generation != txns[j.txn].generation)
        {
            self.tr_burst(tname::CPU, job.txn, job.burst_ms);
            self.cal.schedule_in(
                job.burst_ms,
                Event::CpuDone {
                    txn: job.txn,
                    generation: job.generation,
                },
            );
        }
        if self.txns[i].generation != generation {
            return; // burst belonged to an aborted run
        }
        // CPU half done → disk half. Access phases hit (mostly cached)
        // data pages; init/commit phases pay the fixed I/O (catalog, log).
        if let TxnState::Running { phase, .. } = self.txns[i].state {
            self.txns[i].state = TxnState::Running {
                phase,
                stage: Stage::Disk,
            };
            let k = self.txns[i].k();
            let d = if phase >= 1 && phase <= k {
                self.sys.disk_access.sample(&mut self.rng.disk)
            } else {
                self.sys.disk_init_commit.sample(&mut self.rng.disk)
            };
            self.tr_burst(tname::DISK, i, d);
            self.cal.schedule_in(d, Event::DiskDone { txn: i, generation });
        } else {
            debug_assert!(false, "CpuDone for a non-running transaction");
        }
    }

    fn on_disk_done(&mut self, i: usize, generation: u64) {
        if self.txns[i].generation != generation {
            return;
        }
        let TxnState::Running { phase, .. } = self.txns[i].state else {
            debug_assert!(false, "DiskDone for a non-running transaction");
            return;
        };
        let k = self.txns[i].k();
        if phase == k + 1 {
            self.finalize_commit(i);
        } else {
            self.enter_phase(i, phase + 1);
        }
    }

    /// Starts phase `phase` (1..=k: access + CPU + disk; k+1: commit
    /// processing CPU + disk).
    fn enter_phase(&mut self, i: usize, phase: u32) {
        let k = self.txns[i].k();
        self.txns[i].state = TxnState::Running {
            phase,
            stage: Stage::Cpu,
        };
        if phase >= 1 && phase <= k {
            let (item, write) = self.txns[i].items[(phase - 1) as usize];
            match self.cc.access(i, item, write) {
                AccessOutcome::Granted => self.request_cpu(i),
                AccessOutcome::Blocked => {
                    self.txns[i].state = TxnState::Blocked { phase };
                    self.tr_begin(tname::BLOCKED, i);
                    // Drain the protocol's victims: a detector breaks one
                    // cycle per call, wound-wait preempts younger blockers
                    // one at a time, wait-die kills the requester itself.
                    let mut guard = 0usize;
                    while let Some(victim) = self.cc.deadlock_victim(i) {
                        self.abort_run(victim, RestartMode::Delayed);
                        if victim == i {
                            break; // the requester itself died
                        }
                        guard += 1;
                        debug_assert!(
                            guard <= self.txns.len(),
                            "deadlock-victim loop did not converge"
                        );
                    }
                }
                AccessOutcome::Abort => {
                    self.abort_run(i, RestartMode::Delayed);
                }
            }
        } else {
            // Phase 0 (init) and phase k+1 (commit processing): no access.
            self.request_cpu(i);
        }
    }

    fn finalize_commit(&mut self, i: usize) {
        let now = self.now();
        let v = self.cc.validate(i);
        if v.ok {
            let mut unblocked = self.take_scratch();
            self.cc.commit_into(i, &mut unblocked);
            debug_assert!(self.cc_active > 0, "commit without an in-CC txn");
            self.cc_active -= 1;
            self.conflicts += v.conflicts;
            self.sampler.on_conflicts(v.conflicts);
            let response = now - self.txns[i].submitted_at;
            self.sampler.on_commit(response);
            if let Some(log) = self.gate_log.as_mut() {
                log.record(&GateEvent::Commit {
                    at_ms: now.millis(),
                    response_ms: response,
                    conflicts: v.conflicts,
                });
            }
            self.response.push(response);
            self.commits += 1;
            self.tr_end(tname::RUN, i, "commit");
            self.tr_end(tname::ATTEMPT, i, "commit");
            // Departure: back to the terminal (closed) or out of the
            // system, returning the slot (open). In client mode the
            // client settles the request instead (and may cancel a
            // hedge twin).
            self.txns[i].state = TxnState::Thinking;
            if self.clients.is_some() {
                self.on_client_commit(i, response);
            } else {
                match self.sys.arrival {
                    ArrivalProcess::Closed => {
                        let think = self.sys.think.sample(&mut self.rng.think)
                            * self.workload.think_time_factor_at(now.millis());
                        self.cal.schedule_in(think, Event::Submit(i));
                    }
                    ArrivalProcess::Open { .. } => {
                        self.free_slots.push(i);
                    }
                }
            }
            // Free the MPL slot and admit waiters.
            let mut admitted = self.take_scratch();
            self.gate.depart_into(&mut admitted);
            self.note_mpl();
            for &a in &admitted {
                self.txns[a].state = TxnState::Thinking; // transient
                self.tr_admitted_from_queue(a);
                self.note_mpl();
                self.start_instance(a);
            }
            for &u in &unblocked {
                self.resume_unblocked(u);
            }
            self.put_scratch(admitted);
            self.put_scratch(unblocked);
        } else {
            self.sampler.on_abort(v.conflicts);
            if let Some(log) = self.gate_log.as_mut() {
                log.record(&GateEvent::Abort {
                    at_ms: now.millis(),
                    conflicts: v.conflicts,
                });
            }
            self.conflicts += v.conflicts;
            self.abort_run(i, RestartMode::Delayed);
        }
    }

    fn resume_unblocked(&mut self, u: usize) {
        let TxnState::Blocked { phase } = self.txns[u].state else {
            debug_assert!(false, "unblock of a non-blocked transaction");
            return;
        };
        self.tr_end(tname::BLOCKED, u, "resume");
        self.txns[u].state = TxnState::Running {
            phase,
            stage: Stage::Cpu,
        };
        self.request_cpu(u);
    }

    fn abort_run(&mut self, i: usize, mode: RestartMode) {
        let now = self.now();
        let prior = self.txns[i].state;
        // Displacement may hit a transaction already out of the CC layer
        // (a `RestartWait` between abort and restart) — only runs that
        // actually sit between `cc.begin` and commit/abort leave it here.
        let was_in_cc = matches!(
            self.txns[i].state,
            TxnState::Running { .. } | TxnState::Blocked { .. }
        );
        let mut unblocked = self.take_scratch();
        self.cc.abort_into(i, &mut unblocked);
        if was_in_cc {
            debug_assert!(self.cc_active > 0, "abort without an in-CC txn");
            self.cc_active -= 1;
        }
        self.aborts += 1;
        let outcome = match mode {
            RestartMode::Delayed => "abort",
            RestartMode::Displaced => "displaced",
        };
        if matches!(prior, TxnState::Blocked { .. }) {
            self.tr_end(tname::BLOCKED, i, outcome);
        }
        if was_in_cc {
            self.tr_end(tname::RUN, i, outcome);
        }
        if prior == TxnState::RestartWait {
            self.tr_end(tname::RESTART_WAIT, i, outcome);
        }
        self.txns[i].generation += 1; // kill in-flight events
        self.txns[i].restarts += 1;
        match mode {
            RestartMode::Delayed => {
                self.txns[i].state = TxnState::RestartWait;
                self.tr_begin(tname::RESTART_WAIT, i);
                let d = self.sys.restart_delay.sample(&mut self.rng.restart);
                let generation = self.txns[i].generation;
                self.cal
                    .schedule_in(d, Event::RestartBegin { txn: i, generation });
            }
            RestartMode::Displaced => {
                self.displaced += 1;
                self.tr_end(tname::ATTEMPT, i, "displaced");
                self.txns[i].state = TxnState::Queued;
                self.gate.displace(i);
                self.note_mpl();
                self.tr_begin(tname::WAIT, i);
                let _ = now;
            }
        }
        for &u in &unblocked {
            self.resume_unblocked(u);
        }
        self.put_scratch(unblocked);
    }

    fn on_restart(&mut self, i: usize, generation: u64) {
        if self.txns[i].generation != generation {
            return;
        }
        debug_assert_eq!(self.txns[i].state, TxnState::RestartWait);
        if self.drain_target.is_some() {
            // A CC switch is draining: the restart keeps its MPL slot but
            // must not re-enter the old protocol — park it until the swap.
            self.parked_restarts.push(i);
            return;
        }
        self.restart_now(i);
    }

    /// Re-enters execution after a restart delay (or after a drain parked
    /// the expiry): fresh access set when `resample_on_restart`, identical
    /// retry otherwise.
    fn restart_now(&mut self, i: usize) {
        self.tr_end(tname::RESTART_WAIT, i, "restart");
        if self.sys.resample_on_restart {
            // Fresh access set from the *current* workload (re-planned run).
            let keep_restarts = self.txns[i].restarts;
            self.start_instance(i);
            self.txns[i].restarts = keep_restarts;
        } else {
            self.begin_run(i);
        }
    }

    // ------------------------------------------------------------------
    // Client state machine (client mode only)
    // ------------------------------------------------------------------

    /// A client issues an attempt: first attempt of a fresh request when
    /// Thinking, retry of the outstanding request when in Backoff. Arms
    /// the patience timeout (and the hedge timer for first attempts of a
    /// hedged pool) and submits the client's slot to the gate — unless
    /// retry shedding bounces the attempt at a saturated gate.
    fn on_client_issue(&mut self, c: usize, generation: u64) {
        let (retry, shed_cfg, timeout_dist, hedge_delay) = {
            let Some(pool) = self.clients.as_mut() else {
                debug_assert!(false, "ClientIssue without a client pool");
                return;
            };
            if pool.clients[c].generation != generation {
                return; // stale: the client moved on
            }
            let retry = pool.clients[c].phase == ClientPhase::Backoff;
            if retry {
                pool.stats.retries += 1;
            } else {
                debug_assert_eq!(pool.clients[c].phase, ClientPhase::Thinking);
                pool.stats.issued += 1;
                pool.stats.first_attempts += 1;
                pool.stats.in_flight += 1;
                pool.clients[c].attempt = 0;
                pool.clients[c].hedged = false;
            }
            pool.stats.attempts += 1;
            pool.clients[c].attempt += 1;
            pool.clients[c].phase = ClientPhase::Waiting;
            let hedge_delay = match pool.cfg.retry {
                RetryPolicy::Hedged { delay_ms } if !retry => Some(delay_ms),
                _ => None,
            };
            (retry, pool.cfg.shed_retries, pool.cfg.timeout, hedge_delay)
        };
        if retry {
            // Close the retry-chain flow opened when the retry was
            // scheduled; a shed retry still completes its flow link.
            self.tr_retry_flow(false, c, generation);
        }
        // Retry shedding: a retry that meets a saturated (or held) gate
        // is bounced instead of queued — first attempts always queue. A
        // shed retry consumed no service, so it is invisible to the
        // sampler: the controller's clamp signal is the wasted work of
        // in-system cancellations, not the refusals that prevent it
        // (counting refusals as spent budget would pin the bound down
        // forever once it started shedding).
        if retry && shed_cfg && (self.gate.held() || self.gate.in_system() >= self.gate.bound()) {
            if let Some(pool) = self.clients.as_mut() {
                pool.stats.shed += 1;
            }
            self.tr_client_instant(tname::CLIENT_SHED, c);
            self.retry_or_abandon(c);
            return;
        }
        let patience = timeout_dist.sample(&mut self.rng.client_timeout);
        self.cal.schedule_in(
            patience,
            Event::ClientTimeout {
                client: c,
                generation,
            },
        );
        if let Some(d) = hedge_delay {
            self.cal.schedule_in(
                d,
                Event::HedgeFire {
                    client: c,
                    generation,
                },
            );
        }
        self.submit_attempt(c);
    }

    /// Patience expired: cancel the in-flight attempt (and its hedge
    /// twin), count the timeout as sampler-visible lost work, and let
    /// the retry policy decide what happens next.
    fn on_client_timeout(&mut self, c: usize, generation: u64) {
        let hedged = {
            let Some(pool) = self.clients.as_mut() else {
                debug_assert!(false, "ClientTimeout without a client pool");
                return;
            };
            if pool.clients[c].generation != generation {
                return; // stale: the attempt already finished
            }
            debug_assert_eq!(pool.clients[c].phase, ClientPhase::Waiting);
            pool.stats.timeouts += 1;
            pool.clients[c].hedged
        };
        self.tr_client_instant(tname::CLIENT_TIMEOUT, c);
        let population = self.client_population();
        let mut consumed = self.cancel_attempt(c);
        if hedged {
            consumed |= self.cancel_attempt(population + c);
        }
        // Only attempts that actually consumed service count as
        // sampler-visible wasted work; a cancellation straight out of the
        // gate queue is an admission refusal, exactly like a shed retry.
        if consumed {
            let now = self.now();
            self.sampler.on_abort(0);
            if let Some(log) = self.gate_log.as_mut() {
                log.record(&GateEvent::Abort {
                    at_ms: now.millis(),
                    conflicts: 0,
                });
            }
        }
        self.retry_or_abandon(c);
    }

    /// The hedge timer fired with the first attempt still in flight:
    /// launch the duplicate on the client's second slot. The duplicate
    /// counts as a retry (work amplification), shares the request's
    /// timeout, and whichever attempt commits first cancels the other.
    fn on_hedge_fire(&mut self, c: usize, generation: u64) {
        let launch = {
            let Some(pool) = self.clients.as_mut() else {
                debug_assert!(false, "HedgeFire without a client pool");
                return;
            };
            if pool.clients[c].generation != generation
                || pool.clients[c].phase != ClientPhase::Waiting
                || pool.clients[c].hedged
            {
                false
            } else {
                pool.clients[c].hedged = true;
                pool.stats.attempts += 1;
                pool.stats.retries += 1;
                true
            }
        };
        if launch {
            self.tr_client_instant(tname::CLIENT_HEDGE, c);
            let population = self.client_population();
            self.submit_attempt(population + c);
        }
    }

    /// The population of the installed client pool (client mode only).
    fn client_population(&self) -> usize {
        self.clients
            .as_ref()
            .map_or(0, |p| p.cfg.population as usize)
    }

    /// After a timeout or a shed retry: retry the outstanding request
    /// (per the pool's policy) or abandon it, scheduling the client's
    /// next issue event either way. Bumps the client generation, which
    /// tombstones any still-pending timeout/hedge events.
    fn retry_or_abandon(&mut self, c: usize) {
        let now = self.now();
        let rng = &mut self.rng;
        let Some(pool) = self.clients.as_mut() else {
            debug_assert!(false, "retry decision without a client pool");
            return;
        };
        let attempt = pool.clients[c].attempt;
        pool.clients[c].generation += 1;
        let generation = pool.clients[c].generation;
        // Hedged clients never retry past a timeout (the hedge was their
        // second attempt); others retry until the per-request budget or
        // the shared token bucket runs out.
        let delay = if attempt > pool.cfg.max_retries {
            None
        } else {
            match pool.cfg.retry {
                RetryPolicy::Hedged { .. } => None,
                RetryPolicy::Budget { delay_ms, .. } => {
                    if pool.tokens >= 1.0 {
                        pool.tokens -= 1.0;
                        Some(delay_ms)
                    } else {
                        None
                    }
                }
                RetryPolicy::Backoff { jitter, .. } => {
                    let base = pool.backoff_base(attempt).expect("backoff policy");
                    Some(base * (1.0 - jitter * rng.retry_jitter.uniform01()))
                }
            }
        };
        match delay {
            Some(d) => {
                pool.clients[c].phase = ClientPhase::Backoff;
                self.cal.schedule(
                    now + d,
                    Event::ClientIssue {
                        client: c,
                        generation,
                    },
                );
                // Open the retry-chain flow; the matching finish fires
                // when the scheduled retry issues (same client and
                // generation, so the id pairs without stored state).
                self.tr_retry_flow(true, c, generation);
            }
            None => {
                pool.stats.abandoned += 1;
                pool.stats.in_flight -= 1;
                pool.clients[c].phase = ClientPhase::Thinking;
                pool.clients[c].attempt = 0;
                pool.clients[c].hedged = false;
                let mult = pool.think_multiplier(c);
                let think = self.sys.think.sample(&mut rng.think)
                    * self.workload.think_time_factor_at(now.millis())
                    * mult;
                self.cal.schedule(
                    now + think,
                    Event::ClientIssue {
                        client: c,
                        generation,
                    },
                );
                self.tr_client_instant(tname::CLIENT_ABANDON, c);
            }
        }
    }

    /// A client's attempt committed: cancel the hedge twin (if any),
    /// settle the request, bank retry tokens, fold the observed response
    /// into the latency-feedback EMA, and schedule the next request.
    fn on_client_commit(&mut self, i: usize, response_ms: f64) {
        let (c, sibling) = {
            let pool = self.clients.as_ref().expect("client mode");
            let population = pool.cfg.population as usize;
            let c = if i >= population { i - population } else { i };
            let sibling = if pool.clients[c].hedged {
                Some(if i >= population { c } else { population + c })
            } else {
                None
            };
            (c, sibling)
        };
        if let Some(s) = sibling {
            self.cancel_attempt(s);
        }
        let now = self.now();
        let rng = &mut self.rng;
        let pool = self.clients.as_mut().expect("client mode");
        debug_assert_eq!(pool.clients[c].phase, ClientPhase::Waiting);
        pool.stats.committed += 1;
        pool.stats.in_flight -= 1;
        if let RetryPolicy::Budget {
            per_commit, burst, ..
        } = pool.cfg.retry
        {
            pool.tokens = (pool.tokens + per_commit).min(burst);
        }
        let w = pool.cfg.feedback.weight;
        let ema = &mut pool.clients[c].ema_ms;
        *ema = if *ema == 0.0 {
            response_ms
        } else {
            w * response_ms + (1.0 - w) * *ema
        };
        pool.clients[c].generation += 1; // kills the armed timeout/hedge
        let generation = pool.clients[c].generation;
        pool.clients[c].phase = ClientPhase::Thinking;
        pool.clients[c].attempt = 0;
        pool.clients[c].hedged = false;
        let mult = pool.think_multiplier(c);
        let think = self.sys.think.sample(&mut rng.think)
            * self.workload.think_time_factor_at(now.millis())
            * mult;
        self.cal.schedule(
            now + think,
            Event::ClientIssue {
                client: c,
                generation,
            },
        );
    }

    /// Tears down an in-flight attempt on slot `i` after a client
    /// timeout (or a hedge resolution): the run leaves whatever stage it
    /// occupies — gate queue, CC layer, CPU/disk, restart wait — without
    /// counting as an engine-level abort, and a freed MPL slot admits
    /// waiters exactly like a commit departure. Returns whether the
    /// attempt had been admitted (and so consumed service the sampler
    /// should see as wasted work).
    fn cancel_attempt(&mut self, i: usize) -> bool {
        match self.txns[i].state {
            TxnState::Thinking => {
                // Not on the floor (e.g. the hedge twin never launched).
                self.txns[i].generation += 1;
                return false;
            }
            TxnState::Queued => {
                let removed = self.gate.remove(i);
                debug_assert!(removed, "queued attempt missing from the gate queue");
                self.txns[i].generation += 1;
                self.txns[i].state = TxnState::Thinking;
                self.tr_end(tname::WAIT, i, "cancel");
                return false; // never admitted: no MPL slot to free
            }
            TxnState::Running { .. } | TxnState::Blocked { .. } => {
                if matches!(self.txns[i].state, TxnState::Blocked { .. }) {
                    self.tr_end(tname::BLOCKED, i, "cancel");
                }
                self.tr_end(tname::RUN, i, "cancel");
                let mut unblocked = self.take_scratch();
                self.cc.abort_into(i, &mut unblocked);
                debug_assert!(self.cc_active > 0, "cancel without an in-CC txn");
                self.cc_active -= 1;
                for &u in &unblocked {
                    self.resume_unblocked(u);
                }
                self.put_scratch(unblocked);
            }
            TxnState::RestartWait => {
                // Between abort and restart: already out of the CC layer
                // but still holding its MPL slot.
                self.tr_end(tname::RESTART_WAIT, i, "cancel");
            }
        }
        self.txns[i].generation += 1; // kill in-flight burst/restart events
        self.txns[i].state = TxnState::Thinking;
        self.tr_end(tname::ATTEMPT, i, "cancel");
        let mut admitted = self.take_scratch();
        self.gate.depart_into(&mut admitted);
        self.note_mpl();
        for &a in &admitted {
            self.txns[a].state = TxnState::Thinking; // transient
            self.tr_admitted_from_queue(a);
            self.note_mpl();
            self.start_instance(a);
        }
        self.put_scratch(admitted);
        true
    }

    fn on_sample(&mut self) {
        let now = self.now();
        let m = self.sampler.harvest(now.millis());
        if let Some(ctrl) = self.controller.as_mut() {
            let bound = ctrl.update(&m);
            if let Some(log) = self.gate_log.as_mut() {
                log.record(&GateEvent::Decision {
                    at_ms: now.millis(),
                    bound,
                });
            }
            self.bound_avg.set(now, f64::from(bound).min(1e9));
            self.tr_instant(tname::GATE_DECISION, tcat::GATE, TraceArgs::Bound(bound));
            self.tr_counter(tname::BOUND, f64::from(bound));
            let mut admitted = self.take_scratch();
            self.gate.set_bound_into(bound, &mut admitted);
            self.note_mpl();
            for &a in &admitted {
                self.tr_admitted_from_queue(a);
                self.start_instance(a);
            }
            self.put_scratch(admitted);
            if self.control.displacement {
                // §4.3 displacement: abort in-system transactions per the
                // configured victim policy until the new bound holds.
                let mut excess = self.gate.excess();
                while excess > 0 {
                    match self.select_displacement_victim() {
                        Some(v) => self.abort_run(v, RestartMode::Displaced),
                        None => break,
                    }
                    excess = self.gate.excess();
                }
            }
        }
        // Trajectory points.
        let w = self.workload.at(now.millis());
        let bound_now = self.gate.bound();
        self.trajectories
            .bound
            .push(now, f64::from(bound_now.min(1_000_000)));
        self.trajectories.observed_mpl.push(now, m.observed_mpl);
        self.trajectories
            .throughput
            .push(now, m.throughput_per_sec());
        self.trajectories
            .conflict_ratio
            .push(now, m.conflicts_per_txn);
        self.trajectories.k.push(now, f64::from(w.k));
        if let Some(pool) = &self.clients {
            // Per-interval client deltas. Only pushed in client mode, so
            // the trajectory CSVs of clientless runs stay byte-identical.
            let s = pool.stats;
            self.trajectories
                .attempts
                .push(now, (s.attempts - self.last_attempts) as f64);
            self.trajectories
                .retries
                .push(now, (s.retries - self.last_retries) as f64);
            self.trajectories
                .abandons
                .push(now, (s.abandoned - self.last_abandoned) as f64);
            self.last_attempts = s.attempts;
            self.last_retries = s.retries;
            self.last_abandoned = s.abandoned;
        }
        if self.record_optimum {
            let key = (
                w.k,
                (w.query_frac * 1000.0) as u32,
                (w.write_frac * 1000.0) as u32,
                (w.access_skew * 1000.0) as u32,
            );
            let sys = &self.sys;
            let workload = &self.workload;
            let n_opt = *self.optimum_cache.entry(key).or_insert_with(|| {
                workload.analytic_optimum(now.millis(), sys, sys.terminals.max(2))
            });
            self.trajectories.optimum.push(now, f64::from(n_opt));
        }
        // Closed-loop protocol selection: the policy sees the interval's
        // conflict state and may pick another candidate. Decisions are
        // skipped while a previous switch still drains (the observation
        // would measure the drain, not the workload; the policy's
        // cooldown covers the intervals right after the swap). No RNG is
        // consumed here, so runs without a policy are byte-identical to
        // pre-meta builds.
        if self.meta.is_some() && self.drain_target.is_none() {
            let obs = MetaObservation {
                at_ms: now.millis(),
                interval_ms: m.interval_ms,
                conflicts_per_txn: m.conflicts_per_txn,
                abort_ratio: m.abort_ratio(),
                throughput_per_s: m.throughput_per_sec(),
                gate_queue: self.gate.queue_len(),
                observed_mpl: m.observed_mpl,
            };
            let meta = self.meta.as_mut().expect("checked above");
            if let Some(next) = meta.policy.decide(meta.active, &obs) {
                if next != meta.active {
                    debug_assert!(next < meta.candidates.len());
                    meta.active = next;
                    let target = meta.candidates[next];
                    self.begin_cc_switch(target);
                }
            }
        }
        self.cal
            .schedule_in(self.control.sample_interval_ms, Event::Sample);
    }

    /// Picks the next displacement victim among in-system transactions per
    /// `control.victim_policy`. Progress-based policies break ties by age
    /// (youngest preferred) so repeated displacement stays deterministic.
    fn select_displacement_victim(&self) -> Option<usize> {
        use crate::config::VictimPolicy;
        let candidates = self
            .txns
            .iter()
            .enumerate()
            .filter(|(_, t)| t.in_system());
        match self.control.victim_policy {
            VictimPolicy::Youngest => candidates.max_by_key(|(_, t)| t.ts),
            VictimPolicy::Oldest => candidates.min_by_key(|(_, t)| t.ts),
            VictimPolicy::LeastProgress => {
                candidates.min_by_key(|(_, t)| (t.progress(), std::cmp::Reverse(t.ts)))
            }
            VictimPolicy::MostProgress => candidates.max_by_key(|(_, t)| (t.progress(), t.ts)),
        }
        .map(|(idx, _)| idx)
    }

    fn note_mpl(&mut self) {
        let now = self.now();
        let n = self.gate.in_system();
        self.mpl_avg.set(now, f64::from(n));
        self.sampler.on_mpl_change(now.millis(), n);
        if let Some(log) = self.gate_log.as_mut() {
            log.record(&GateEvent::Mpl {
                at_ms: now.millis(),
                in_system: n,
            });
        }
        self.tr_counter(tname::MPL, f64::from(n));
    }
}

/// How an aborted run re-enters execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RestartMode {
    /// Restart inside the system after the restart delay (keeps its MPL
    /// slot) — the normal abort path.
    Delayed,
    /// Displacement victim: leaves the system and re-queues at the gate.
    Displaced,
}

#[cfg(test)]
mod tests {
    use super::*;
    use alc_core::controller::{FixedBound, IncrementalSteps, IsParams};
    use alc_des::dist::Dist;

    fn small_sys(terminals: u32, seed: u64) -> SystemConfig {
        SystemConfig {
            terminals,
            arrival: ArrivalProcess::Closed,
            cpus: 4,
            cpu_phase: Dist::exponential(4.0),
            disk_access: Dist::constant(3.0),
            disk_init_commit: Dist::constant(40.0),
            think: Dist::exponential(200.0),
            restart_delay: Dist::constant(2.0),
            db_size: 500,
            resample_on_restart: true,
            seed,
        }
    }

    fn no_control(bound: u32) -> ControlConfig {
        ControlConfig {
            sample_interval_ms: 500.0,
            initial_bound: bound,
            warmup_ms: 2_000.0,
            ..ControlConfig::default()
        }
    }

    fn run_fixed(
        terminals: u32,
        bound: u32,
        cc: CcKind,
        workload: WorkloadConfig,
        horizon: f64,
        seed: u64,
    ) -> RunStats {
        let mut sim = Simulator::new(small_sys(terminals, seed), workload, cc, no_control(bound), None);
        sim.set_record_optimum(false);
        sim.run(horizon)
    }

    #[test]
    fn transactions_flow_and_commit() {
        let stats = run_fixed(
            20,
            u32::MAX,
            CcKind::Certification,
            WorkloadConfig::default(),
            20_000.0,
            1,
        );
        assert!(stats.commits > 100, "only {} commits", stats.commits);
        assert!(stats.mean_response_ms > 0.0);
        assert!(stats.mean_mpl > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fixed(
            15,
            10,
            CcKind::Certification,
            WorkloadConfig::default(),
            10_000.0,
            42,
        );
        let b = run_fixed(
            15,
            10,
            CcKind::Certification,
            WorkloadConfig::default(),
            10_000.0,
            42,
        );
        assert_eq!(a, b, "same seed must give identical statistics");
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_fixed(
            15,
            10,
            CcKind::Certification,
            WorkloadConfig::default(),
            10_000.0,
            1,
        );
        let b = run_fixed(
            15,
            10,
            CcKind::Certification,
            WorkloadConfig::default(),
            10_000.0,
            2,
        );
        assert_ne!(a.commits, b.commits);
    }

    #[test]
    fn gate_bound_caps_mpl() {
        let stats = run_fixed(
            40,
            5,
            CcKind::Certification,
            WorkloadConfig::default(),
            15_000.0,
            3,
        );
        assert!(
            stats.mean_mpl <= 5.0 + 1e-9,
            "observed MPL {} exceeds bound 5",
            stats.mean_mpl
        );
    }

    #[test]
    fn read_only_workload_never_aborts() {
        let workload = WorkloadConfig {
            query_frac: alc_analytic::surface::Schedule::Constant(1.0),
            ..WorkloadConfig::default()
        };
        for cc in [CcKind::Certification, CcKind::TwoPhaseLocking] {
            let stats = run_fixed(20, u32::MAX, cc, workload.clone(), 15_000.0, 4);
            assert_eq!(stats.aborts, 0, "{cc:?} aborted read-only txns");
            assert!(stats.commits > 50);
        }
    }

    #[test]
    fn contention_causes_aborts_under_certification() {
        // Tiny database + heavy writes: certification must abort runs.
        let workload = WorkloadConfig {
            k: alc_analytic::surface::Schedule::Constant(8.0),
            query_frac: alc_analytic::surface::Schedule::Constant(0.0),
            write_frac: alc_analytic::surface::Schedule::Constant(1.0),
            ..WorkloadConfig::default()
        };
        let mut sys = small_sys(30, 5);
        sys.db_size = 60;
        let mut sim = Simulator::new(
            sys,
            workload,
            CcKind::Certification,
            no_control(u32::MAX),
            None,
        );
        sim.set_record_optimum(false);
        let stats = sim.run(15_000.0);
        assert!(stats.aborts > 20, "only {} aborts", stats.aborts);
        assert!(stats.abort_ratio > 0.1);
    }

    #[test]
    fn all_protocols_make_progress_under_contention() {
        let workload = WorkloadConfig {
            k: alc_analytic::surface::Schedule::Constant(6.0),
            query_frac: alc_analytic::surface::Schedule::Constant(0.1),
            write_frac: alc_analytic::surface::Schedule::Constant(0.5),
            ..WorkloadConfig::default()
        };
        for cc in CcKind::ALL {
            let mut sys = small_sys(25, 6);
            sys.db_size = 300;
            let mut sim = Simulator::new(sys, workload.clone(), cc, no_control(u32::MAX), None);
            sim.set_record_optimum(false);
            let stats = sim.run(20_000.0);
            assert!(
                stats.commits > 100,
                "{cc:?} starved: {} commits",
                stats.commits
            );
        }
    }

    #[test]
    fn prevention_protocols_abort_instead_of_deadlocking() {
        // Heavy write contention on a small database: detection and
        // prevention must all keep committing; the prevention pair pays
        // with aborts where the detector only aborts on real cycles.
        let workload = WorkloadConfig {
            k: alc_analytic::surface::Schedule::Constant(8.0),
            query_frac: alc_analytic::surface::Schedule::Constant(0.0),
            write_frac: alc_analytic::surface::Schedule::Constant(1.0),
            ..WorkloadConfig::default()
        };
        let run = |cc: CcKind| {
            let mut sys = small_sys(30, 21);
            sys.db_size = 80;
            let mut sim = Simulator::new(sys, workload.clone(), cc, no_control(u32::MAX), None);
            sim.set_record_optimum(false);
            sim.run(20_000.0)
        };
        let detect = run(CcKind::TwoPhaseLocking);
        let wound = run(CcKind::WoundWait);
        let die = run(CcKind::WaitDie);
        for (name, s) in [("2pl", &detect), ("wound-wait", &wound), ("wait-die", &die)] {
            assert!(s.commits > 100, "{name} starved: {} commits", s.commits);
        }
        assert!(
            wound.aborts > detect.aborts && die.aborts > detect.aborts,
            "prevention should abort more than detection: 2pl {} vs ww {} / wd {}",
            detect.aborts,
            wound.aborts,
            die.aborts
        );
    }

    #[test]
    fn mvto_queries_do_not_abort() {
        // MVTO's headline property: read-only transactions never abort,
        // even under write contention (unless their snapshot is pruned,
        // which a 25-terminal run never reaches).
        let workload = WorkloadConfig {
            k: alc_analytic::surface::Schedule::Constant(6.0),
            query_frac: alc_analytic::surface::Schedule::Constant(0.5),
            write_frac: alc_analytic::surface::Schedule::Constant(0.8),
            ..WorkloadConfig::default()
        };
        let run = |cc: CcKind| {
            let mut sys = small_sys(25, 22);
            sys.db_size = 100;
            let mut sim = Simulator::new(sys, workload.clone(), cc, no_control(u32::MAX), None);
            sim.set_record_optimum(false);
            sim.run(20_000.0)
        };
        let occ = run(CcKind::Certification);
        let mv = run(CcKind::Multiversion);
        assert!(mv.commits > 100, "mvto starved");
        assert!(
            mv.abort_ratio < occ.abort_ratio,
            "mvto should abort less than certification under a query mix: {} vs {}",
            mv.abort_ratio,
            occ.abort_ratio
        );
    }

    #[test]
    fn throughput_matches_mva_without_contention() {
        // Read-only => no CC effects; the closed network must match MVA.
        let workload = WorkloadConfig {
            k: alc_analytic::surface::Schedule::Constant(8.0),
            query_frac: alc_analytic::surface::Schedule::Constant(1.0),
            ..WorkloadConfig::default()
        };
        let sys = SystemConfig {
            terminals: 60,
            arrival: ArrivalProcess::Closed,
            cpus: 4,
            cpu_phase: Dist::exponential(4.0),
            disk_access: Dist::constant(3.0),
            disk_init_commit: Dist::constant(40.0),
            think: Dist::exponential(500.0),
            restart_delay: Dist::constant(2.0),
            db_size: 10_000,
            resample_on_restart: true,
            seed: 7,
        };
        let mut sim = Simulator::new(
            sys,
            workload,
            CcKind::Certification,
            ControlConfig {
                initial_bound: u32::MAX,
                warmup_ms: 10_000.0,
                ..ControlConfig::default()
            },
            None,
        );
        sim.set_record_optimum(false);
        let stats = sim.run(120_000.0);
        // MVA reference: CPU demand 10 phases * 4ms, delay = disk 100ms +
        // think 500ms.
        let net = alc_analytic::mva::ClosedNetwork::new(40.0, 4, 100.0 + 500.0);
        let x = net.throughput(60) * 1000.0; // per second
        let rel_err = (stats.throughput_per_sec - x).abs() / x;
        assert!(
            rel_err < 0.08,
            "simulated {} vs MVA {} (rel err {:.3})",
            stats.throughput_per_sec,
            x,
            rel_err
        );
    }

    #[test]
    fn controller_trajectory_is_recorded() {
        let ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 5,
            max_bound: 60,
            ..IsParams::default()
        });
        let mut sim = Simulator::new(
            small_sys(30, 8),
            WorkloadConfig::default(),
            CcKind::Certification,
            ControlConfig {
                sample_interval_ms: 500.0,
                warmup_ms: 0.0,
                ..ControlConfig::default()
            },
            Some(Box::new(ctrl)),
        );
        sim.set_record_optimum(false);
        sim.run_until(20_000.0);
        let traj = sim.trajectories();
        assert!(traj.bound.len() >= 35, "samples: {}", traj.bound.len());
        assert!(traj.throughput.len() == traj.bound.len());
        // The controller must have moved the bound off its start value.
        let bounds: Vec<f64> = traj.bound.points().iter().map(|&(_, v)| v).collect();
        assert!(bounds.iter().any(|&b| (b - 5.0).abs() > 0.5));
    }

    #[test]
    fn fixed_bound_controller_equivalent_to_static_gate() {
        let a = {
            let mut sim = Simulator::new(
                small_sys(20, 9),
                WorkloadConfig::default(),
                CcKind::Certification,
                no_control(8),
                None,
            );
            sim.set_record_optimum(false);
            sim.run(15_000.0)
        };
        let b = {
            let mut sim = Simulator::new(
                small_sys(20, 9),
                WorkloadConfig::default(),
                CcKind::Certification,
                no_control(8),
                Some(Box::new(FixedBound::new(8))),
            );
            sim.set_record_optimum(false);
            sim.run(15_000.0)
        };
        assert_eq!(a.commits, b.commits);
        assert!((a.throughput_per_sec - b.throughput_per_sec).abs() < 1e-9);
    }

    #[test]
    fn displacement_enforces_bound_drop() {
        // A controller that slams the bound down mid-run.
        struct Slammer {
            at: u32,
            calls: u32,
        }
        impl LoadController for Slammer {
            fn name(&self) -> &'static str {
                "slammer"
            }
            fn update(&mut self, _m: &alc_core::measure::Measurement) -> u32 {
                self.calls += 1;
                if self.calls > 10 {
                    2
                } else {
                    self.at
                }
            }
            fn current_bound(&self) -> u32 {
                self.at
            }
            fn reset(&mut self) {}
        }
        let mut sim = Simulator::new(
            small_sys(30, 10),
            WorkloadConfig::default(),
            CcKind::Certification,
            ControlConfig {
                sample_interval_ms: 500.0,
                displacement: true,
                warmup_ms: 0.0,
                ..ControlConfig::default()
            },
            Some(Box::new(Slammer { at: 20, calls: 0 })),
        );
        sim.set_record_optimum(false);
        // Samples fire at 500ms intervals; call 11 (the slam to bound 2)
        // happens at t = 5500ms.
        let stats = sim.run_until(5_600.0);
        assert!(stats.displaced > 0, "displacement never happened");
        assert!(
            sim.gate().in_system() <= 2,
            "bound not enforced: {} in system",
            sim.gate().in_system()
        );
    }

    #[test]
    fn victim_policies_enforce_bound_and_differ() {
        use crate::config::VictimPolicy;
        // A controller that drops the bound sharply mid-run, forcing many
        // displacement decisions.
        struct Stepper {
            calls: u32,
        }
        impl LoadController for Stepper {
            fn name(&self) -> &'static str {
                "stepper"
            }
            fn update(&mut self, _m: &alc_core::measure::Measurement) -> u32 {
                self.calls += 1;
                if self.calls.is_multiple_of(4) {
                    3
                } else {
                    25
                }
            }
            fn current_bound(&self) -> u32 {
                25
            }
            fn reset(&mut self) {}
        }
        let run = |policy: VictimPolicy| {
            let mut sim = Simulator::new(
                small_sys(30, 17),
                WorkloadConfig::default(),
                CcKind::Certification,
                ControlConfig {
                    sample_interval_ms: 400.0,
                    displacement: true,
                    victim_policy: policy,
                    warmup_ms: 0.0,
                    ..ControlConfig::default()
                },
                Some(Box::new(Stepper { calls: 0 })),
            );
            sim.set_record_optimum(false);
            sim.run_until(20_000.0)
        };
        let mut commits = Vec::new();
        for policy in VictimPolicy::ALL {
            let stats = run(policy);
            assert!(stats.displaced > 0, "{policy:?} never displaced");
            assert!(stats.commits > 50, "{policy:?} starved");
            commits.push(stats.commits);
        }
        // The policies pick different victims, so the runs diverge.
        assert!(
            commits.iter().any(|&c| c != commits[0]),
            "all victim policies produced identical runs: {commits:?}"
        );
    }

    #[test]
    fn workload_jump_shifts_abort_rate() {
        let workload = WorkloadConfig::k_jump(4.0, 16.0, 15_000.0);
        let mut sys = small_sys(25, 11);
        sys.db_size = 400;
        let mut sim = Simulator::new(
            sys,
            workload,
            CcKind::Certification,
            ControlConfig {
                sample_interval_ms: 500.0,
                initial_bound: u32::MAX,
                warmup_ms: 3_000.0,
                ..ControlConfig::default()
            },
            None,
        );
        sim.set_record_optimum(false);
        let before = sim.run_until(15_000.0);
        sim.reset_window();
        let after = sim.run_until(30_000.0);
        assert!(
            after.abort_ratio > before.abort_ratio * 2.0,
            "k jump 4→16 should multiply aborts: {} -> {}",
            before.abort_ratio,
            after.abort_ratio
        );
    }

    #[test]
    fn hot_spots_raise_contention() {
        // Hot-spot extension: Zipf skew concentrates accesses and must
        // raise the abort ratio relative to uniform access.
        let run_with_skew = |skew: f64| {
            let workload = WorkloadConfig {
                access_skew: alc_analytic::surface::Schedule::Constant(skew),
                write_frac: alc_analytic::surface::Schedule::Constant(0.5),
                ..WorkloadConfig::default()
            };
            let mut sys = small_sys(25, 13);
            sys.db_size = 2000;
            let mut sim = Simulator::new(
                sys,
                workload,
                CcKind::Certification,
                no_control(u32::MAX),
                None,
            );
            sim.set_record_optimum(false);
            sim.run(20_000.0)
        };
        let uniform = run_with_skew(0.0);
        let skewed = run_with_skew(0.9);
        assert!(
            skewed.abort_ratio > 1.5 * uniform.abort_ratio.max(0.01),
            "skew should raise aborts: uniform {} vs skewed {}",
            uniform.abort_ratio,
            skewed.abort_ratio
        );
        assert!(skewed.commits > 50, "skewed run starved");
    }

    #[test]
    fn extreme_skew_still_terminates() {
        // The duplicate-rejection fallback must keep instance creation
        // finite even when k is large relative to the hot set.
        let workload = WorkloadConfig {
            k: alc_analytic::surface::Schedule::Constant(10.0),
            access_skew: alc_analytic::surface::Schedule::Constant(3.0),
            ..WorkloadConfig::default()
        };
        let mut sys = small_sys(10, 14);
        sys.db_size = 50;
        let mut sim = Simulator::new(
            sys,
            workload,
            CcKind::Certification,
            no_control(u32::MAX),
            None,
        );
        sim.set_record_optimum(false);
        let stats = sim.run(10_000.0);
        assert!(stats.commits + stats.aborts > 0);
    }

    fn open_sys(slots: u32, interarrival_ms: f64, seed: u64) -> SystemConfig {
        SystemConfig {
            arrival: ArrivalProcess::Open {
                interarrival: Dist::exponential(interarrival_ms),
            },
            ..small_sys(slots, seed)
        }
    }

    #[test]
    fn open_arrivals_flow_at_offered_rate() {
        // Î» = 1/50ms = 20/s, far below capacity: throughput â Î», no loss.
        let mut sim = Simulator::new(
            open_sys(60, 50.0, 31),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(u32::MAX),
            None,
        );
        sim.set_record_optimum(false);
        let stats = sim.run(60_000.0);
        assert_eq!(stats.lost, 0, "underload must not lose arrivals");
        let rel = (stats.throughput_per_sec - 20.0).abs() / 20.0;
        assert!(
            rel < 0.1,
            "open throughput {} vs offered 20/s",
            stats.throughput_per_sec
        );
    }

    #[test]
    fn open_overload_exhausts_slots_and_counts_losses() {
        // Î» = 200/s against a 10-slot pool with heavy service: losses.
        let mut sim = Simulator::new(
            open_sys(10, 5.0, 32),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(u32::MAX),
            None,
        );
        sim.set_record_optimum(false);
        let stats = sim.run(30_000.0);
        assert!(stats.lost > 100, "only {} lost", stats.lost);
        assert!(sim.gate().in_system() <= 10);
        assert!(stats.commits > 0, "system wedged under overload");
    }

    #[test]
    fn open_mode_is_deterministic() {
        let run = || {
            let mut sim = Simulator::new(
                open_sys(40, 20.0, 33),
                WorkloadConfig::default(),
                CcKind::Certification,
                no_control(15),
                None,
            );
            sim.set_record_optimum(false);
            sim.run(30_000.0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn open_overload_admission_control_preserves_goodput() {
        // The classic open-system argument for admission control: offered
        // load far above the thrashing point. Uncontrolled, every arrival
        // enters and data contention destroys goodput; with a fixed gate
        // at a sane MPL, the same offered load commits far more.
        let workload = WorkloadConfig {
            k: alc_analytic::surface::Schedule::Constant(8.0),
            query_frac: alc_analytic::surface::Schedule::Constant(0.0),
            write_frac: alc_analytic::surface::Schedule::Constant(0.8),
            ..WorkloadConfig::default()
        };
        let run = |bound: u32| {
            let mut sys = open_sys(120, 4.0, 34); // 250/s offered
            sys.db_size = 150;
            let mut sim = Simulator::new(
                sys,
                workload.clone(),
                CcKind::Certification,
                no_control(bound),
                None,
            );
            sim.set_record_optimum(false);
            sim.run(40_000.0)
        };
        let uncontrolled = run(u32::MAX);
        let gated = run(8);
        assert!(
            gated.throughput_per_sec > 1.3 * uncontrolled.throughput_per_sec,
            "admission control did not help the open system: gated {} vs open {}",
            gated.throughput_per_sec,
            uncontrolled.throughput_per_sec
        );
    }

    #[test]
    fn think_time_factor_modulates_closed_load() {
        // Halving think time roughly doubles the offered load, so an
        // uncontested system commits substantially more.
        let run = |factor: f64| {
            let workload = WorkloadConfig {
                think_time_factor: alc_analytic::surface::Schedule::Constant(factor),
                ..WorkloadConfig::default()
            };
            run_fixed(20, u32::MAX, CcKind::Certification, workload, 30_000.0, 41)
        };
        let nominal = run(1.0);
        let eager = run(0.25);
        assert!(
            eager.commits as f64 > 1.3 * nominal.commits as f64,
            "shorter think should raise throughput: {} vs {}",
            eager.commits,
            nominal.commits
        );
        // The identity factor must reproduce the default workload exactly
        // (the scenario DSL relies on this to subsume stationary specs).
        let default_run = run_fixed(
            20,
            u32::MAX,
            CcKind::Certification,
            WorkloadConfig::default(),
            30_000.0,
            41,
        );
        assert_eq!(nominal, default_run);
    }

    #[test]
    fn arrival_rate_surge_overloads_the_slot_pool() {
        // A 10× arrival burst mid-run must exhaust the open-mode slots
        // and start counting losses, where the baseline rate loses none.
        let surge_workload = WorkloadConfig {
            arrival_rate_factor: alc_analytic::surface::Schedule::Piecewise(vec![
                (0.0, 1.0),
                (10_000.0, 10.0),
            ]),
            ..WorkloadConfig::default()
        };
        let run = |workload: WorkloadConfig| {
            let mut sim = Simulator::new(
                open_sys(20, 50.0, 42),
                workload,
                CcKind::Certification,
                no_control(u32::MAX),
                None,
            );
            sim.set_record_optimum(false);
            sim.run(30_000.0)
        };
        let baseline = run(WorkloadConfig::default());
        let surged = run(surge_workload);
        assert_eq!(baseline.lost, 0, "baseline must not lose arrivals");
        assert!(surged.lost > 50, "surge lost only {}", surged.lost);
        assert!(
            surged.commits > baseline.commits,
            "the admitted part of the surge should still commit more"
        );
    }

    /// The CC-switch conservation invariant: across a drain-and-swap
    /// boundary every transaction slot stays accounted for (census sums
    /// to the population), the in-system count matches the states that
    /// hold an MPL slot, commits keep flowing under the new protocol, and
    /// the whole run is deterministic.
    #[test]
    fn cc_switch_drains_swaps_and_conserves_transactions() {
        let run = || {
            let workload = WorkloadConfig {
                write_frac: alc_analytic::surface::Schedule::Constant(0.5),
                ..WorkloadConfig::default()
            };
            let mut sys = small_sys(25, 77);
            sys.db_size = 200; // enough contention for aborts on both sides
            let mut sim = Simulator::new(
                sys,
                workload,
                CcKind::Certification,
                ControlConfig {
                    sample_interval_ms: 500.0,
                    initial_bound: 12,
                    warmup_ms: 0.0,
                    ..ControlConfig::default()
                },
                None,
            );
            sim.set_record_optimum(false);
            sim.set_cc_switches(&[(10_000.0, CcKind::TwoPhaseLocking)]);
            let before = sim.run_until(9_999.0);
            let census = sim.txn_state_census();
            assert_eq!(census.iter().sum::<usize>(), 25, "slot lost pre-switch");
            let after = sim.run_until(30_000.0);
            (before, after, sim)
        };
        let (before, after, sim) = run();
        assert_eq!(sim.current_cc(), CcKind::TwoPhaseLocking);
        assert_eq!(sim.cc_switches_completed(), 1);
        // Conservation: every slot still in exactly one state, and the
        // gate's population matches the states that hold an MPL slot.
        let census = sim.txn_state_census();
        assert_eq!(census.iter().sum::<usize>(), 25, "slot lost in drain");
        assert_eq!(
            sim.gate().in_system() as usize,
            census[2] + census[3] + census[4],
            "in-system count diverged from the running/blocked/restarting states"
        );
        // Monotone counters: the post-switch window did real work, and
        // nothing was un-counted by the swap.
        assert!(after.commits > before.commits, "no progress after switch");
        assert!(after.aborts >= before.aborts);
        // Determinism across reruns.
        let (before2, after2, _) = run();
        assert_eq!(before, before2);
        assert_eq!(after, after2);
    }

    /// Displacement firing *during* a CC-switch drain must not
    /// double-start a parked restart: a displaced `RestartWait` slot
    /// moves to the gate queue and re-enters through the release, not
    /// through the parked list (the swap's census debug-assert and the
    /// conservation checks below catch a double `cc.begin`).
    #[test]
    fn displacement_during_drain_does_not_double_start_parked_restarts() {
        let run = || {
            // High write contention on a small database + long restart
            // delays: many slots sit in RestartWait at any moment, so
            // drains regularly park restarts. Displacement is on and the
            // controller slams the bound down every few samples, so
            // victims (including parked RestartWait slots) are taken
            // while drains are in flight.
            let workload = WorkloadConfig {
                k: alc_analytic::surface::Schedule::Constant(8.0),
                query_frac: alc_analytic::surface::Schedule::Constant(0.0),
                write_frac: alc_analytic::surface::Schedule::Constant(1.0),
                ..WorkloadConfig::default()
            };
            let mut sys = small_sys(30, 81);
            sys.db_size = 60;
            sys.restart_delay = Dist::constant(400.0);
            struct Slammer {
                calls: u32,
            }
            impl LoadController for Slammer {
                fn name(&self) -> &'static str {
                    "slammer"
                }
                fn update(&mut self, _m: &alc_core::measure::Measurement) -> u32 {
                    self.calls += 1;
                    if self.calls.is_multiple_of(3) {
                        2
                    } else {
                        25
                    }
                }
                fn current_bound(&self) -> u32 {
                    25
                }
                fn reset(&mut self) {}
            }
            let mut sim = Simulator::new(
                sys,
                workload,
                CcKind::Certification,
                ControlConfig {
                    sample_interval_ms: 300.0,
                    displacement: true,
                    warmup_ms: 0.0,
                    ..ControlConfig::default()
                },
                Some(Box::new(Slammer { calls: 0 })),
            );
            sim.set_record_optimum(false);
            let switches: Vec<(f64, CcKind)> = (1..20)
                .map(|i| {
                    (
                        f64::from(i) * 1_000.0,
                        if i % 2 == 0 {
                            CcKind::Certification
                        } else {
                            CcKind::WaitDie
                        },
                    )
                })
                .collect();
            sim.set_cc_switches(&switches);
            let stats = sim.run_until(25_000.0);
            (stats, sim)
        };
        let (stats, sim) = run();
        assert!(stats.displaced > 0, "scenario never displaced");
        assert!(sim.cc_switches_completed() > 5, "drains never completed");
        assert!(stats.commits > 50, "system wedged");
        // Conservation after heavy drain × displacement interleaving.
        let census = sim.txn_state_census();
        assert_eq!(census.iter().sum::<usize>(), 30);
        assert_eq!(
            sim.gate().in_system() as usize,
            census[2] + census[3] + census[4]
        );
        assert_eq!(
            sim.cc_in_flight() as usize,
            census[2] + census[3],
            "cc_active must equal the running+blocked census"
        );
        let (stats2, _) = run();
        assert_eq!(stats, stats2, "switch+displacement run must be deterministic");
    }

    #[test]
    fn cc_switch_without_contention_is_transparent() {
        // Read-only workload: the switch must not lose a single commit
        // relative to... itself on rerun, and both protocols commit.
        let workload = WorkloadConfig {
            query_frac: alc_analytic::surface::Schedule::Constant(1.0),
            ..WorkloadConfig::default()
        };
        let mut sim = Simulator::new(
            small_sys(15, 78),
            workload,
            CcKind::Certification,
            no_control(10),
            None,
        );
        sim.set_record_optimum(false);
        sim.set_cc_switches(&[(8_000.0, CcKind::Multiversion), (16_000.0, CcKind::WaitDie)]);
        let stats = sim.run_until(24_000.0);
        assert_eq!(sim.cc_switches_completed(), 2);
        assert_eq!(sim.current_cc(), CcKind::WaitDie);
        assert_eq!(stats.aborts, 0, "read-only runs must never abort");
        assert!(stats.commits > 100);
    }

    #[test]
    fn fault_kill_restart_changes_capacity_and_recovers() {
        let run = || {
            let mut sim = Simulator::new(
                small_sys(30, 79),
                WorkloadConfig::default(),
                CcKind::Certification,
                no_control(u32::MAX),
                None,
            );
            sim.set_record_optimum(false);
            // Kill 3 of 4 CPUs during [8s, 20s), then restore.
            sim.set_faults(&[(8_000.0, -3), (20_000.0, 3)]);
            // Window boundaries sit just before the fault events (an
            // event at exactly t fires within `run_until(t)`).
            let healthy = sim.run_until(7_999.0);
            assert_eq!(sim.cpu_servers(), 4);
            sim.reset_window();
            let degraded = sim.run_until(19_999.0);
            assert_eq!(sim.cpu_servers(), 1);
            sim.reset_window();
            let recovered = sim.run_until(32_000.0);
            assert_eq!(sim.cpu_servers(), 4);
            (healthy, degraded, recovered)
        };
        let (healthy, degraded, recovered) = run();
        assert!(
            degraded.throughput_per_sec < 0.7 * healthy.throughput_per_sec,
            "losing 3 of 4 CPUs should throttle throughput: {} vs {}",
            degraded.throughput_per_sec,
            healthy.throughput_per_sec
        );
        assert!(
            recovered.throughput_per_sec > 1.3 * degraded.throughput_per_sec,
            "restart should restore throughput: {} vs {}",
            recovered.throughput_per_sec,
            degraded.throughput_per_sec
        );
        // Census conservation under faults, and determinism.
        let again = run();
        assert_eq!((healthy, degraded, recovered), again);
    }

    #[test]
    fn total_cpu_outage_stalls_until_restart() {
        let mut sim = Simulator::new(
            small_sys(10, 80),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(u32::MAX),
            None,
        );
        sim.set_record_optimum(false);
        sim.set_faults(&[(5_000.0, -4), (15_000.0, 4)]);
        sim.run_until(5_000.0);
        sim.reset_window();
        let out = sim.run_until(15_000.0);
        // With every CPU dead, phases cannot complete — only runs already
        // past their last CPU burst may still trickle through the disk.
        assert!(
            out.commits <= 10,
            "a total outage should stall commits, saw {}",
            out.commits
        );
        sim.reset_window();
        let back = sim.run_until(30_000.0);
        assert!(back.commits > 50, "system must recover after the restart");
        assert_eq!(sim.txn_state_census().iter().sum::<usize>(), 10);
    }

    /// Closed-loop protocol selection: a conflict-threshold policy must
    /// escalate to the high-contention candidate when the workload turns
    /// hot, and de-escalate when it calms — with every decision recorded
    /// in the switch-event trace, conservation intact, and the whole run
    /// deterministic.
    #[test]
    fn adaptive_cc_switches_on_conflict_and_conserves() {
        use alc_core::meta::{ConflictThreshold, GuardParams};
        let run = || {
            // Calm (k=2, few writes) → hot (k=8, small db) → calm again.
            let workload = WorkloadConfig {
                k: alc_analytic::surface::Schedule::Piecewise(vec![
                    (0.0, 2.0),
                    (8_000.0, 8.0),
                    (22_000.0, 2.0),
                ]),
                query_frac: alc_analytic::surface::Schedule::Constant(0.0),
                write_frac: alc_analytic::surface::Schedule::Constant(0.8),
                ..WorkloadConfig::default()
            };
            let mut sys = small_sys(25, 91);
            sys.db_size = 120;
            let mut sim = Simulator::new(
                sys,
                workload,
                CcKind::Certification,
                ControlConfig {
                    sample_interval_ms: 500.0,
                    initial_bound: 15,
                    warmup_ms: 0.0,
                    ..ControlConfig::default()
                },
                None,
            );
            sim.set_record_optimum(false);
            let policy = ConflictThreshold::new(
                2,
                0.6,
                0.5,
                GuardParams {
                    min_dwell_ms: 3_000.0,
                    cooldown_ms: 1_000.0,
                    hysteresis: 0.2,
                },
            );
            sim.set_adaptive_cc(
                vec![CcKind::Certification, CcKind::TwoPhaseLocking],
                Box::new(policy),
            );
            let stats = sim.run_until(35_000.0);
            (stats, sim)
        };
        let (stats, sim) = run();
        let switches = &sim.trajectories().switches;
        assert!(
            switches.len() >= 2,
            "expected an escalation and a de-escalation, saw {switches:?}"
        );
        assert_eq!(switches[0].from, CcKind::Certification);
        assert_eq!(switches[0].to, CcKind::TwoPhaseLocking);
        assert_eq!(
            sim.cc_switches_completed(),
            switches.len() as u64,
            "trace must record every completed switch"
        );
        // The dwell guard: consecutive decisions at least min_dwell apart.
        for w in switches.windows(2) {
            assert!(
                w[1].decided_at_ms - w[0].decided_at_ms >= 3_000.0,
                "decisions at {} and {} violate min_dwell",
                w[0].decided_at_ms,
                w[1].decided_at_ms
            );
        }
        for e in switches {
            assert!(e.completed_at_ms >= e.decided_at_ms);
        }
        // Conservation across policy-driven drains.
        let census = sim.txn_state_census();
        assert_eq!(census.iter().sum::<usize>(), 25, "slot lost in drain");
        assert_eq!(
            sim.gate().in_system() as usize,
            census[2] + census[3] + census[4]
        );
        assert!(stats.commits > 100, "system starved under adaptation");
        // Determinism across reruns (stats and the full switch trace).
        let (stats2, sim2) = run();
        assert_eq!(stats, stats2);
        assert_eq!(*switches, sim2.trajectories().switches);
    }

    /// An adaptive run whose policy never fires must be byte-identical
    /// to the same run without any meta-controller: the wiring itself
    /// is free.
    #[test]
    fn adaptive_cc_with_quiet_policy_is_transparent() {
        use alc_core::meta::{ConflictThreshold, GuardParams};
        let base = || {
            let mut sim = Simulator::new(
                small_sys(20, 92),
                WorkloadConfig::default(),
                CcKind::Certification,
                no_control(10),
                None,
            );
            sim.set_record_optimum(false);
            sim
        };
        let plain = {
            let mut sim = base();
            sim.run(20_000.0)
        };
        let adaptive = {
            // A threshold far above anything the default workload can
            // produce: the policy observes but never acts.
            let policy = ConflictThreshold::new(
                2,
                1e9,
                0.3,
                GuardParams {
                    min_dwell_ms: 1_000.0,
                    cooldown_ms: 0.0,
                    hysteresis: 0.1,
                },
            );
            let mut sim2 = base();
            sim2.set_adaptive_cc(
                vec![CcKind::Certification, CcKind::TwoPhaseLocking],
                Box::new(policy),
            );
            sim2.run(20_000.0)
        };
        assert_eq!(plain, adaptive);
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn adaptive_cc_rejects_scheduled_switch_mix() {
        use alc_core::meta::{ConflictThreshold, GuardParams};
        let mut sim = Simulator::new(
            small_sys(10, 93),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(5),
            None,
        );
        sim.set_cc_switches(&[(1_000.0, CcKind::WaitDie)]);
        sim.set_adaptive_cc(
            vec![CcKind::Certification, CcKind::WaitDie],
            Box::new(ConflictThreshold::new(
                2,
                1.0,
                0.5,
                GuardParams {
                    min_dwell_ms: 0.0,
                    cooldown_ms: 0.0,
                    hysteresis: 0.0,
                },
            )),
        );
    }

    /// Scheduled phase switches also land in the switch-event trace, so
    /// `time_in_protocol` columns work for `cc.phases` specs too.
    #[test]
    fn scheduled_switches_are_recorded_in_the_trace() {
        let workload = WorkloadConfig {
            query_frac: alc_analytic::surface::Schedule::Constant(1.0),
            ..WorkloadConfig::default()
        };
        let mut sim = Simulator::new(
            small_sys(15, 94),
            workload,
            CcKind::Certification,
            no_control(10),
            None,
        );
        sim.set_record_optimum(false);
        sim.set_cc_switches(&[(8_000.0, CcKind::Multiversion)]);
        sim.run_until(20_000.0);
        let switches = &sim.trajectories().switches;
        assert_eq!(switches.len(), 1);
        assert_eq!(switches[0].from, CcKind::Certification);
        assert_eq!(switches[0].to, CcKind::Multiversion);
        assert!(switches[0].decided_at_ms >= 8_000.0);
        assert!(switches[0].completed_at_ms >= switches[0].decided_at_ms);
    }

    #[test]
    fn little_law_consistency() {
        // mean_mpl ≈ throughput × mean in-system residence. Residence is
        // response minus queue wait; with an unlimited gate there is no
        // queueing, so response == residence.
        let stats = run_fixed(
            25,
            u32::MAX,
            CcKind::Certification,
            WorkloadConfig::default(),
            40_000.0,
            12,
        );
        let little = stats.throughput_per_sec / 1000.0 * stats.mean_response_ms;
        let rel = (little - stats.mean_mpl).abs() / stats.mean_mpl;
        assert!(
            rel < 0.15,
            "Little's law violated: X*R = {little}, mean MPL = {}",
            stats.mean_mpl
        );
    }

    // ------------------------------------------------------------------
    // Client mode
    // ------------------------------------------------------------------

    use crate::client::{ClientConfig, LatencyFeedback, RetryPolicy};

    fn client_pool(population: u32, timeout_ms: f64) -> ClientConfig {
        ClientConfig::new(population, Dist::constant(timeout_ms))
    }

    fn assert_client_conservation(sim: &Simulator) {
        let s = sim.client_stats().expect("client mode");
        assert_eq!(
            s.issued,
            s.committed + s.abandoned + s.in_flight,
            "request conservation violated: {s:?}"
        );
        assert_eq!(
            s.attempts,
            s.first_attempts + s.retries,
            "attempt conservation violated: {s:?}"
        );
    }

    #[test]
    fn patient_clients_commit_and_conserve_requests() {
        // Generous timeout: clients behave like slightly richer terminals.
        let mut sim = Simulator::new(
            small_sys(20, 7),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(u32::MAX),
            None,
        );
        sim.set_record_optimum(false);
        sim.set_clients(client_pool(20, 60_000.0));
        let stats = sim.run(20_000.0);
        let s = sim.client_stats().expect("client mode");
        assert!(stats.commits > 100, "only {} commits", stats.commits);
        assert_eq!(s.committed, stats.commits, "every commit is a client commit");
        assert_eq!(s.timeouts, 0, "nobody should time out at this patience");
        assert_eq!(s.retries, 0);
        assert_client_conservation(&sim);
    }

    #[test]
    fn impatient_clients_time_out_retry_and_conserve() {
        // Tight timeout against a tiny gate: timeouts and retries flow.
        let mut sim = Simulator::new(
            small_sys(16, 11),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(2),
            None,
        );
        sim.set_record_optimum(false);
        let mut cfg = client_pool(16, 120.0);
        cfg.retry = RetryPolicy::Backoff {
            base_ms: 40.0,
            factor: 2.0,
            max_ms: 500.0,
            jitter: 0.5,
        };
        cfg.max_retries = 2;
        sim.set_clients(cfg);
        sim.run(20_000.0);
        let s = sim.client_stats().expect("client mode");
        assert!(s.timeouts > 0, "expected timeouts: {s:?}");
        assert!(s.retries > 0, "expected retries: {s:?}");
        assert!(s.abandoned > 0, "expected abandonment: {s:?}");
        assert_client_conservation(&sim);
        let census = sim.txn_state_census();
        assert_eq!(census.iter().sum::<usize>(), 16, "slots conserved");
    }

    #[test]
    fn client_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(
                small_sys(12, 33),
                WorkloadConfig::default(),
                CcKind::Certification,
                no_control(3),
                None,
            );
            sim.set_record_optimum(false);
            let mut cfg = client_pool(12, 200.0);
            cfg.retry = RetryPolicy::Backoff {
                base_ms: 30.0,
                factor: 2.0,
                max_ms: 400.0,
                jitter: 0.5,
            };
            sim.set_clients(cfg);
            let stats = sim.run(15_000.0);
            (stats, sim.client_stats())
        };
        assert_eq!(run(), run(), "same seed must give identical client runs");
    }

    #[test]
    fn clientless_runs_are_unperturbed_by_the_client_code_path() {
        // The client layer must be invisible when unused: identical
        // stats to a build that never had it. (Golden CSVs pin this
        // repo-wide; this is the in-crate canary.)
        let a = run_fixed(
            15,
            10,
            CcKind::Certification,
            WorkloadConfig::default(),
            10_000.0,
            42,
        );
        assert!(a.commits > 0);
        assert_eq!(a.lost, 0);
    }

    #[test]
    fn hedged_clients_duplicate_work_and_cancel_the_loser() {
        let mut sim = Simulator::new(
            small_sys(24, 5),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(u32::MAX),
            None,
        );
        sim.set_record_optimum(false);
        let mut cfg = client_pool(12, 5_000.0);
        cfg.retry = RetryPolicy::Hedged { delay_ms: 30.0 };
        sim.set_clients(cfg);
        sim.run(20_000.0);
        let s = sim.client_stats().expect("client mode");
        assert!(s.retries > 0, "hedges count as retries: {s:?}");
        assert!(s.committed > 0);
        assert_client_conservation(&sim);
        let census = sim.txn_state_census();
        assert_eq!(census.iter().sum::<usize>(), 24);
    }

    #[test]
    fn budget_retries_are_bounded_by_the_bucket() {
        let mut sim = Simulator::new(
            small_sys(16, 21),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(1),
            None,
        );
        sim.set_record_optimum(false);
        let mut cfg = client_pool(16, 80.0);
        cfg.retry = RetryPolicy::Budget {
            per_commit: 0.1,
            burst: 4.0,
            delay_ms: 25.0,
        };
        cfg.max_retries = 100;
        sim.set_clients(cfg);
        sim.run(15_000.0);
        let s = sim.client_stats().expect("client mode");
        assert_client_conservation(&sim);
        // The bucket caps retry amplification: retries can never exceed
        // initial burst + per_commit × commits (within the window,
        // re-based at warm-up, so compare against the cumulative form).
        assert!(
            (s.retries as f64) <= 4.0 + 0.1 * (s.committed as f64) + (s.shed as f64) + 1.0
                || s.retries < s.timeouts,
            "retries outran the token bucket: {s:?}"
        );
        assert!(s.abandoned > 0, "empty bucket must abandon: {s:?}");
    }

    #[test]
    fn retry_shedding_bounces_retries_at_a_saturated_gate() {
        let mut sim = Simulator::new(
            small_sys(16, 13),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(1),
            None,
        );
        sim.set_record_optimum(false);
        let mut cfg = client_pool(16, 100.0);
        cfg.shed_retries = true;
        cfg.max_retries = 3;
        sim.set_clients(cfg);
        sim.run(15_000.0);
        let s = sim.client_stats().expect("client mode");
        assert!(s.shed > 0, "a bound of 1 must shed retries: {s:?}");
        assert_client_conservation(&sim);
    }

    #[test]
    fn latency_feedback_stretches_think_and_lowers_offered_load() {
        let offered = |gain: f64| {
            let mut sim = Simulator::new(
                small_sys(16, 17),
                WorkloadConfig::default(),
                CcKind::Certification,
                no_control(2),
                None,
            );
            sim.set_record_optimum(false);
            let mut cfg = client_pool(16, 2_000.0);
            cfg.feedback = LatencyFeedback {
                gain,
                reference_ms: 100.0,
                weight: 0.2,
            };
            sim.set_clients(cfg);
            sim.run(20_000.0);
            sim.client_stats().expect("client mode").issued
        };
        let patient = offered(0.0);
        let deferring = offered(4.0);
        assert!(
            deferring < patient,
            "feedback gain must reduce issued requests: {deferring} !< {patient}"
        );
    }

    #[test]
    fn client_trajectories_record_interval_deltas_only_in_client_mode() {
        let mut plain = Simulator::new(
            small_sys(10, 3),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(5),
            None,
        );
        plain.set_record_optimum(false);
        plain.run(8_000.0);
        assert!(plain.trajectories().attempts.is_empty());
        assert!(plain.trajectories().retries.is_empty());
        assert!(plain.trajectories().abandons.is_empty());

        let mut sim = Simulator::new(
            small_sys(10, 3),
            WorkloadConfig::default(),
            CcKind::Certification,
            no_control(5),
            None,
        );
        sim.set_record_optimum(false);
        sim.set_clients(client_pool(10, 500.0));
        sim.run(8_000.0);
        let traj = sim.trajectories();
        assert!(!traj.attempts.is_empty());
        assert_eq!(traj.attempts.len(), traj.retries.len());
        assert_eq!(traj.attempts.len(), traj.abandons.len());
    }
}
