//! The simulator-side admission gate (§4.3, Figure 5).
//!
//! Event-driven counterpart of the runtime [`alc_core::gate::AdaptiveGate`]:
//! a bound `n*`, an in-system count `n`, and a FCFS queue of transaction
//! slots waiting to be admitted. Displacement (§4.3's stronger enforcement
//! option) selects the youngest running transactions as victims and parks
//! them at the *front* of the queue — they were admitted once and should
//! not pay the full queue again.

use std::collections::VecDeque;

/// The event-driven admission gate.
#[derive(Debug, Clone)]
pub struct SimGate {
    bound: u32,
    in_system: u32,
    queue: VecDeque<usize>,
    total_admitted: u64,
    total_displaced: u64,
    /// Admission hold: while set, every arrival queues and departures
    /// admit nobody — the engine uses this to drain the system before a
    /// CC-protocol switch. The bound and queue order are untouched.
    hold: bool,
}

impl SimGate {
    /// Creates a gate with the given initial bound.
    pub fn new(bound: u32) -> Self {
        Self::with_queue_capacity(bound, 0)
    }

    /// Creates a gate with the admission queue pre-sized for `cap`
    /// waiters (the engine passes the terminal count — the queue holds at
    /// most one entry per transaction slot, so steady state never
    /// reallocates).
    pub fn with_queue_capacity(bound: u32, cap: usize) -> Self {
        SimGate {
            bound,
            in_system: 0,
            queue: VecDeque::with_capacity(cap),
            total_admitted: 0,
            total_displaced: 0,
            hold: false,
        }
    }

    /// Current bound `n*`.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Transactions currently admitted (the actual load `n`).
    pub fn in_system(&self) -> u32 {
        self.in_system
    }

    /// Waiting transactions.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total admissions so far.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted
    }

    /// Total displacement victims so far.
    pub fn total_displaced(&self) -> u64 {
        self.total_displaced
    }

    /// Whether an admission hold is in force.
    pub fn held(&self) -> bool {
        self.hold
    }

    /// Starts an admission hold: arrivals queue unconditionally and no
    /// departure or bound change admits anyone until
    /// [`SimGate::release_hold_into`].
    pub fn set_hold(&mut self) {
        self.hold = true;
    }

    /// Ends an admission hold and appends the transactions now admitted
    /// (FIFO, up to the bound) to `admitted`.
    pub fn release_hold_into(&mut self, admitted: &mut Vec<usize>) {
        self.hold = false;
        self.drain_queue_into(admitted);
    }

    /// An arrival: admitted immediately (`true`) or queued (`false`).
    pub fn arrive(&mut self, txn: usize) -> bool {
        if !self.hold && self.in_system < self.bound {
            self.in_system += 1;
            self.total_admitted += 1;
            true
        } else {
            self.queue.push_back(txn);
            false
        }
    }

    /// A departure (commit or displacement-to-terminal): frees a slot and
    /// returns the transactions admitted from the queue as a result.
    pub fn depart(&mut self) -> Vec<usize> {
        let mut admitted = Vec::new();
        self.depart_into(&mut admitted);
        admitted
    }

    /// Allocation-free [`SimGate::depart`]: appends the admitted slots to
    /// `admitted` (the engine passes a pooled buffer).
    pub fn depart_into(&mut self, admitted: &mut Vec<usize>) {
        debug_assert!(self.in_system > 0, "departure from an empty system");
        self.in_system = self.in_system.saturating_sub(1);
        self.drain_queue_into(admitted);
    }

    /// Applies a new bound. Returns the slots admitted from the queue if
    /// the bound rose. (Shrinking below the current load is handled by the
    /// engine via [`SimGate::excess`] + [`SimGate::displace`] when
    /// displacement is on, otherwise the population drains by normal
    /// departures.)
    pub fn set_bound(&mut self, bound: u32) -> Vec<usize> {
        let mut admitted = Vec::new();
        self.set_bound_into(bound, &mut admitted);
        admitted
    }

    /// Allocation-free [`SimGate::set_bound`]: appends the admitted slots
    /// to `admitted`.
    pub fn set_bound_into(&mut self, bound: u32, admitted: &mut Vec<usize>) {
        self.bound = bound;
        self.drain_queue_into(admitted);
    }

    /// How many transactions must be displaced to honor the bound now.
    pub fn excess(&self) -> u32 {
        self.in_system.saturating_sub(self.bound)
    }

    /// Records that a running transaction was displaced: it leaves the
    /// in-system population and re-queues at the front.
    pub fn displace(&mut self, txn: usize) {
        debug_assert!(self.in_system > 0);
        self.in_system -= 1;
        self.total_displaced += 1;
        self.queue.push_front(txn);
    }

    /// Removes a *queued* transaction (a client timeout cancelling an
    /// attempt that never got admitted). Returns whether it was found.
    /// O(queue_len), but only ever runs on the timeout path — never in
    /// the steady-state commit loop.
    pub fn remove(&mut self, txn: usize) -> bool {
        match self.queue.iter().position(|&t| t == txn) {
            Some(idx) => {
                self.queue.remove(idx);
                true
            }
            None => false,
        }
    }

    fn drain_queue_into(&mut self, admitted: &mut Vec<usize>) {
        while !self.hold && self.in_system < self.bound {
            match self.queue.pop_front() {
                Some(txn) => {
                    self.in_system += 1;
                    self.total_admitted += 1;
                    admitted.push(txn);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_below_bound_queues_above() {
        let mut g = SimGate::new(2);
        assert!(g.arrive(0));
        assert!(g.arrive(1));
        assert!(!g.arrive(2));
        assert_eq!(g.in_system(), 2);
        assert_eq!(g.queue_len(), 1);
    }

    #[test]
    fn departure_admits_fifo() {
        let mut g = SimGate::new(1);
        g.arrive(0);
        g.arrive(1);
        g.arrive(2);
        assert_eq!(g.depart(), vec![1]);
        assert_eq!(g.depart(), vec![2]);
        assert_eq!(g.depart(), Vec::<usize>::new());
        assert_eq!(g.in_system(), 0);
    }

    #[test]
    fn raising_bound_drains_queue() {
        let mut g = SimGate::new(0);
        g.arrive(0);
        g.arrive(1);
        g.arrive(2);
        let admitted = g.set_bound(2);
        assert_eq!(admitted, vec![0, 1]);
        assert_eq!(g.queue_len(), 1);
    }

    #[test]
    fn lowering_bound_reports_excess() {
        let mut g = SimGate::new(5);
        for i in 0..5 {
            g.arrive(i);
        }
        assert!(g.set_bound(2).is_empty());
        assert_eq!(g.excess(), 3);
        assert_eq!(g.in_system(), 5, "no implicit displacement");
    }

    #[test]
    fn displacement_requeues_at_front() {
        let mut g = SimGate::new(3);
        g.arrive(0);
        g.arrive(1);
        g.arrive(2);
        g.arrive(3); // queued
        g.set_bound(1);
        g.displace(2);
        g.displace(1);
        assert_eq!(g.in_system(), 1);
        assert_eq!(g.excess(), 0);
        // Front of queue: most recently displaced first, then 2, then the
        // original waiter 3.
        let admitted = g.set_bound(4);
        assert_eq!(admitted, vec![1, 2, 3]);
        assert_eq!(g.total_displaced(), 2);
    }

    #[test]
    fn hold_blocks_all_admissions_until_released() {
        let mut g = SimGate::new(3);
        g.arrive(0);
        g.arrive(1);
        g.set_hold();
        assert!(g.held());
        // Below the bound, but the hold queues the arrival anyway.
        assert!(!g.arrive(2));
        // Departures and bound raises admit nobody while held.
        assert_eq!(g.depart(), Vec::<usize>::new());
        assert_eq!(g.set_bound(10), Vec::<usize>::new());
        assert_eq!(g.in_system(), 1);
        assert_eq!(g.queue_len(), 1);
        let mut admitted = Vec::new();
        g.release_hold_into(&mut admitted);
        assert_eq!(admitted, vec![2]);
        assert!(!g.held());
        assert_eq!(g.in_system(), 2);
    }

    #[test]
    fn remove_cancels_a_waiter_without_touching_admissions() {
        let mut g = SimGate::new(1);
        g.arrive(0);
        g.arrive(1);
        g.arrive(2);
        assert!(g.remove(1));
        assert!(!g.remove(1), "already gone");
        assert_eq!(g.in_system(), 1);
        // Slot 1 no longer exists in the queue; the departure admits 2.
        assert_eq!(g.depart(), vec![2]);
    }

    #[test]
    fn counters_accumulate() {
        let mut g = SimGate::new(10);
        for i in 0..7 {
            g.arrive(i);
        }
        assert_eq!(g.total_admitted(), 7);
    }
}
