//! Time-varying workload parameters (§8).
//!
//! "The dynamic change of the load characteristic was carried out by
//! varying one of the following parameters: k, the number of locks per
//! transaction; fraction of queries; fraction of write accesses for
//! updaters. Variation of all these parameters showed significant impact
//! on both height and position of the optimum throughput."
//!
//! Each parameter is an [`alc_analytic::surface::Schedule`], so jumps
//! (Figures 13/14) and sinusoids (§9 "smooth and gradual changes") come
//! for free and stay consistent with the synthetic surfaces used in
//! controller unit tests.

use alc_analytic::occ::OccModel;
use alc_analytic::surface::Schedule;

use crate::config::SystemConfig;

/// The logical-model workload over time.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadConfig {
    /// Data items accessed per transaction, `k(t)`. Evaluated at instance
    /// creation; rounded to an integer ≥ 1.
    pub k: Schedule,
    /// Fraction of read-only queries, `q(t) ∈ [0, 1]`.
    pub query_frac: Schedule,
    /// Fraction of an updater's accesses that are writes, `w(t) ∈ [0, 1]`.
    pub write_frac: Schedule,
    /// Zipf skew θ(t) of item selection. The paper's model uses uniform
    /// selection ("no hot spots"), i.e. θ = 0 — the default. Positive
    /// values concentrate accesses on hot items (our hot-spot extension).
    pub access_skew: Schedule,
    /// Load-intensity extension: multiplier on the *open-mode* arrival
    /// rate, `a(t) > 0`. Interarrival delays are divided by it, so `2.0`
    /// doubles the offered load — the knob flash-crowd / surge scenarios
    /// turn. `1.0` (the default) reproduces the stationary arrival
    /// process exactly.
    pub arrival_rate_factor: Schedule,
    /// Load-intensity extension: multiplier on the *closed-mode* think
    /// time, `h(t) > 0`. Think delays are multiplied by it, so `0.5`
    /// makes every terminal twice as eager — the closed-model analogue of
    /// an arrival surge. `1.0` (the default) is the paper's stationary
    /// terminal behaviour.
    pub think_time_factor: Schedule,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            k: Schedule::Constant(8.0),
            query_frac: Schedule::Constant(0.2),
            write_frac: Schedule::Constant(0.25),
            access_skew: Schedule::Constant(0.0),
            arrival_rate_factor: Schedule::Constant(1.0),
            think_time_factor: Schedule::Constant(1.0),
        }
    }
}

/// The workload parameter values in force at one instant.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadAt {
    /// Items accessed per transaction.
    pub k: u32,
    /// Query (read-only) fraction.
    pub query_frac: f64,
    /// Updater write-access fraction.
    pub write_frac: f64,
    /// Zipf access skew θ (0 = uniform).
    pub access_skew: f64,
}

impl WorkloadConfig {
    /// Samples the schedules at time `t_ms`.
    pub fn at(&self, t_ms: f64) -> WorkloadAt {
        WorkloadAt {
            k: self.k.value(t_ms).round().max(1.0) as u32,
            query_frac: self.query_frac.value(t_ms).clamp(0.0, 1.0),
            write_frac: self.write_frac.value(t_ms).clamp(0.0, 1.0),
            access_skew: self.access_skew.value(t_ms).max(0.0),
        }
    }

    /// The analytic OCC throughput model matching this workload at time
    /// `t_ms` — the source of the "true optimum" reference line `n_opt(t)`
    /// (the broken line in Figures 13/14). Access skew enters through the
    /// effective database size (`1/Σpᵢ²`).
    pub fn occ_model_at(&self, t_ms: f64, sys: &SystemConfig) -> OccModel {
        let w = self.at(t_ms);
        let effective_db =
            alc_analytic::occ::effective_db_size(sys.db_size, w.access_skew).round() as u64;
        OccModel::new(
            w.k,
            effective_db.max(1),
            w.query_frac,
            w.write_frac,
            sys.cpu_per_run_ms(w.k),
            sys.disk_per_run_ms(w.k),
            sys.cpus,
        )
    }

    /// The arrival-rate multiplier in force at `t_ms`, floored at a tiny
    /// positive value so a zero/negative schedule cannot stall the
    /// arrival stream into a division by zero.
    pub fn arrival_rate_factor_at(&self, t_ms: f64) -> f64 {
        self.arrival_rate_factor.value(t_ms).max(1e-9)
    }

    /// The think-time multiplier in force at `t_ms`, floored at zero
    /// (a zero factor means terminals resubmit immediately).
    pub fn think_time_factor_at(&self, t_ms: f64) -> f64 {
        self.think_time_factor.value(t_ms).max(0.0)
    }

    /// The analytic optimal MPL at time `t_ms`, scanned up to `n_max`.
    pub fn analytic_optimum(&self, t_ms: f64, sys: &SystemConfig, n_max: u32) -> u32 {
        self.occ_model_at(t_ms, sys).curve(n_max).optimal_mpl()
    }

    /// A jump workload for the Figure 13/14 scenario: `k` steps from
    /// `k_before` to `k_after` at `t_ms`.
    pub fn k_jump(k_before: f64, k_after: f64, at_ms: f64) -> Self {
        WorkloadConfig {
            k: Schedule::Jump {
                at: at_ms,
                before: k_before,
                after: k_after,
            },
            ..WorkloadConfig::default()
        }
    }

    /// A sinusoidal workload (§9's gradual variation): `k` oscillates
    /// around `mean` with the given amplitude and period.
    pub fn k_sinusoid(mean: f64, amplitude: f64, period_ms: f64) -> Self {
        WorkloadConfig {
            k: Schedule::Sinusoid {
                mean,
                amplitude,
                period: period_ms,
            },
            ..WorkloadConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_stationary() {
        let w = WorkloadConfig::default();
        let a = w.at(0.0);
        let b = w.at(1e9);
        assert_eq!(a, b);
        assert_eq!(a.k, 8);
    }

    #[test]
    fn k_jump_switches_at_time() {
        let w = WorkloadConfig::k_jump(8.0, 14.0, 500_000.0);
        assert_eq!(w.at(499_999.0).k, 8);
        assert_eq!(w.at(500_000.0).k, 14);
    }

    #[test]
    fn k_sinusoid_oscillates() {
        let w = WorkloadConfig::k_sinusoid(10.0, 4.0, 100_000.0);
        assert_eq!(w.at(0.0).k, 10);
        assert_eq!(w.at(25_000.0).k, 14);
        assert_eq!(w.at(75_000.0).k, 6);
    }

    #[test]
    fn k_is_at_least_one() {
        let w = WorkloadConfig {
            k: Schedule::Constant(-3.0),
            ..WorkloadConfig::default()
        };
        assert_eq!(w.at(0.0).k, 1);
    }

    #[test]
    fn fractions_are_clamped() {
        let w = WorkloadConfig {
            query_frac: Schedule::Constant(1.7),
            write_frac: Schedule::Constant(-0.5),
            ..WorkloadConfig::default()
        };
        let a = w.at(0.0);
        assert_eq!(a.query_frac, 1.0);
        assert_eq!(a.write_frac, 0.0);
    }

    #[test]
    fn load_factors_default_to_identity() {
        let w = WorkloadConfig::default();
        assert_eq!(w.arrival_rate_factor_at(0.0), 1.0);
        assert_eq!(w.think_time_factor_at(1e9), 1.0);
    }

    #[test]
    fn load_factors_are_floored() {
        let w = WorkloadConfig {
            arrival_rate_factor: Schedule::Constant(-2.0),
            think_time_factor: Schedule::Constant(-2.0),
            ..WorkloadConfig::default()
        };
        assert!(w.arrival_rate_factor_at(0.0) > 0.0);
        assert_eq!(w.think_time_factor_at(0.0), 0.0);
    }

    #[test]
    fn burst_profile_on_arrival_rate() {
        // A flash crowd: 1× baseline, 3× during [100s, 120s).
        let w = WorkloadConfig {
            arrival_rate_factor: Schedule::Piecewise(vec![
                (0.0, 1.0),
                (100_000.0, 3.0),
                (120_000.0, 1.0),
            ]),
            ..WorkloadConfig::default()
        };
        assert_eq!(w.arrival_rate_factor_at(50_000.0), 1.0);
        assert_eq!(w.arrival_rate_factor_at(110_000.0), 3.0);
        assert_eq!(w.arrival_rate_factor_at(130_000.0), 1.0);
    }

    #[test]
    fn analytic_optimum_moves_with_k() {
        let sys = SystemConfig::default();
        let w = WorkloadConfig::k_jump(8.0, 14.0, 1000.0);
        let before = w.analytic_optimum(0.0, &sys, 800);
        let after = w.analytic_optimum(2000.0, &sys, 800);
        assert!(
            after < before,
            "optimum should drop when k rises: {before} -> {after}"
        );
        assert!((20..=800).contains(&before));
    }
}
