//! Simulator configuration.
//!
//! The physical-model parameters follow the paper's §7 description; the
//! concrete values are our calibration (the original used customer-trace
//! parameters from Yu et al. 1987 that are not public — see DESIGN.md).
//! Defaults are chosen so the stationary optimum MPL lands in the low
//! hundreds and the load axis meaningfully extends to 800, matching the
//! axes of Figures 12–14.

use alc_des::dist::Dist;
use alc_core::measure::PerfIndicator;

/// How transactions enter the system.
///
/// The paper's model (Figure 11) is *closed*: `N` terminals resubmit
/// after a think time, so the offered load is bounded by construction.
/// The open variant — the classic habitat of admission control — feeds
/// an external arrival stream instead: arrivals beyond the slot pool are
/// rejected (counted as lost), everything admitted competes for the MPL
/// exactly as in the closed model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalProcess {
    /// The paper's closed loop: commit → think time → resubmit.
    Closed,
    /// An external (e.g. Poisson) source with the given interarrival
    /// distribution. `terminals` becomes the transaction slot-pool size
    /// (a connection limit); arrivals finding no free slot are lost.
    Open {
        /// Interarrival-time distribution, ms.
        interarrival: Dist,
    },
}

/// Physical-model parameters: stations, service times, population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemConfig {
    /// Number of terminals `N` (the closed population / offered load) —
    /// or, in [`ArrivalProcess::Open`] mode, the transaction slot pool.
    pub terminals: u32,
    /// How transactions enter: the paper's closed loop, or an open
    /// arrival stream.
    pub arrival: ArrivalProcess,
    /// Number of CPUs in the homogeneous multiprocessor.
    pub cpus: u32,
    /// CPU burst per phase (the paper's multiprocessor serves one shared
    /// queue; bursts are drawn per phase). CPU demand scales with `k`.
    pub cpu_phase: Dist,
    /// Disk service per *access* phase — "constant service times and no
    /// contention" makes the disk an infinite server. Small by default:
    /// data pages mostly hit the buffer pool.
    pub disk_access: Dist,
    /// Disk service of the init and commit phases each (fixed per
    /// transaction: catalog reads, log force at commit). Dominating the
    /// I/O demand makes the CPU saturation knee — and with it the optimum
    /// MPL — move with `k`, the §8 behaviour the controllers must track.
    pub disk_init_commit: Dist,
    /// Terminal think time between a commit and the next submission.
    pub think: Dist,
    /// Delay before an aborted transaction restarts inside the system.
    pub restart_delay: Dist,
    /// Number of data items in the database (`D`).
    pub db_size: u64,
    /// Whether a restarted transaction draws a fresh access set (`true`,
    /// models a re-planned execution and avoids repeated deterministic
    /// collisions) or retries the same items (`false`).
    pub resample_on_restart: bool,
    /// Master RNG seed; every run is fully determined by it.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            terminals: 400,
            arrival: ArrivalProcess::Closed,
            cpus: 16,
            cpu_phase: Dist::exponential(4.0),
            disk_access: Dist::constant(4.0),
            disk_init_commit: Dist::constant(150.0),
            think: Dist::exponential(1000.0),
            restart_delay: Dist::constant(5.0),
            db_size: 2000,
            resample_on_restart: true,
            seed: 0x5EED_1991,
        }
    }
}

impl SystemConfig {
    /// Expected total CPU demand of one run with `k` access phases
    /// (`k + 2` phases overall), used for analytic cross-checks.
    pub fn cpu_per_run_ms(&self, k: u32) -> f64 {
        use alc_des::dist::Sample;
        f64::from(k + 2) * self.cpu_phase.mean()
    }

    /// Expected total disk demand of one run with `k` access phases.
    pub fn disk_per_run_ms(&self, k: u32) -> f64 {
        use alc_des::dist::Sample;
        2.0 * self.disk_init_commit.mean() + f64::from(k) * self.disk_access.mean()
    }
}

/// Which concurrency-control protocol the run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CcKind {
    /// Timestamp certification (optimistic backward validation) — the
    /// paper's protocol.
    Certification,
    /// Strict two-phase locking with deadlock detection.
    TwoPhaseLocking,
    /// Basic timestamp ordering.
    TimestampOrdering,
    /// Strict 2PL with wound-wait deadlock prevention (older requesters
    /// preempt younger holders).
    WoundWait,
    /// Strict 2PL with wait-die deadlock prevention (younger requesters
    /// abort themselves).
    WaitDie,
    /// Multiversion timestamp ordering (reads never abort).
    Multiversion,
}

impl CcKind {
    /// All protocols, for sweeps and comparison benches.
    pub const ALL: [CcKind; 6] = [
        CcKind::Certification,
        CcKind::TwoPhaseLocking,
        CcKind::TimestampOrdering,
        CcKind::WoundWait,
        CcKind::WaitDie,
        CcKind::Multiversion,
    ];

    /// Short static name, as used in trace events and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Certification => "certification",
            CcKind::TwoPhaseLocking => "2pl",
            CcKind::TimestampOrdering => "timestamp",
            CcKind::WoundWait => "wound-wait",
            CcKind::WaitDie => "wait-die",
            CcKind::Multiversion => "multiversion",
        }
    }
}

/// How displacement (§4.3) picks which running transaction to abort when
/// the bound drops below the current load. "Victim selection may be based
/// on the same criteria as for deadlock breaking."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum VictimPolicy {
    /// The youngest run (largest timestamp) — least sunk work by age, the
    /// classic deadlock-breaking default.
    #[default]
    Youngest,
    /// The oldest run (smallest timestamp) — a deliberately bad policy,
    /// kept as an ablation baseline (it maximizes wasted work).
    Oldest,
    /// The run with the fewest completed phases — minimizes wasted
    /// resource consumption directly instead of via age.
    LeastProgress,
    /// The run with the most completed phases — the other ablation
    /// extreme.
    MostProgress,
}

impl VictimPolicy {
    /// All policies, for sweeps and ablations.
    pub const ALL: [VictimPolicy; 4] = [
        VictimPolicy::Youngest,
        VictimPolicy::Oldest,
        VictimPolicy::LeastProgress,
        VictimPolicy::MostProgress,
    ];
}

/// Load-control wiring for a run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlConfig {
    /// Measurement interval Δt between controller invocations, ms.
    pub sample_interval_ms: f64,
    /// The §6 performance indicator fed to the controller.
    pub indicator: PerfIndicator,
    /// Enforce a freshly lowered bound by aborting surplus transactions
    /// (§4.3 "displacement"). The paper's default — and ours — is off:
    /// admission control alone was "responsive enough".
    pub displacement: bool,
    /// Who gets displaced when `displacement` is on.
    pub victim_policy: VictimPolicy,
    /// Initial gate bound before the controller's first decision.
    pub initial_bound: u32,
    /// Simulated time to run before measurements count (warm-up), ms.
    pub warmup_ms: f64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            sample_interval_ms: 2000.0,
            indicator: PerfIndicator::Throughput,
            displacement: false,
            victim_policy: VictimPolicy::default(),
            initial_bound: 50,
            warmup_ms: 20_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let cfg = SystemConfig::default();
        assert!(cfg.terminals > 0 && cfg.cpus > 0 && cfg.db_size > 0);
        // Per-run demands for the default k=8: 10 phases of CPU, fixed
        // init/commit disk plus 8 access-phase reads.
        assert!((cfg.cpu_per_run_ms(8) - 40.0).abs() < 1e-9);
        assert!((cfg.disk_per_run_ms(8) - 332.0).abs() < 1e-9);
    }

    #[test]
    fn control_defaults() {
        let c = ControlConfig::default();
        assert!(!c.displacement);
        assert!(c.sample_interval_ms > 0.0);
        assert_eq!(c.indicator, PerfIndicator::Throughput);
    }
}
