//! Property-based tests of the CC protocols and the simulation engine.
//!
//! The serializability properties are checked against independent oracles
//! that replay the same operation sequence with simple reference
//! semantics.

#![allow(clippy::type_complexity, clippy::needless_range_loop)] // oracle bookkeeping

use proptest::prelude::*;

use alc_tpsim::cc::{
    AccessOutcome, Certification, ConcurrencyControl, Mvto, Prevention, PreventionPolicy,
    TimestampOrdering, TwoPhaseLocking,
};

/// A random workload step for protocol testing.
#[derive(Debug, Clone, Copy)]
enum Step {
    Access { txn: usize, item: u64, write: bool },
    TryCommit { txn: usize },
    Abort { txn: usize },
}

fn steps(txns: usize, items: u64) -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        6 => (0..txns, 0..items, any::<bool>())
            .prop_map(|(txn, item, write)| Step::Access { txn, item, write }),
        2 => (0..txns).prop_map(|txn| Step::TryCommit { txn }),
        1 => (0..txns).prop_map(|txn| Step::Abort { txn }),
    ];
    prop::collection::vec(step, 1..200)
}

proptest! {
    /// Certification enforces first-committer-wins: for every committed
    /// transaction, no item it accessed was written by another transaction
    /// that committed within its lifetime. Verified with an independent
    /// commit-log oracle.
    #[test]
    fn certification_first_committer_wins(ops in steps(6, 12)) {
        let mut cc = Certification::new(6);
        let mut ts = 0u64;
        // Oracle state: global commit log of (commit_index, item) writes,
        // plus per-txn (start_index, access set).
        let mut commit_index = 0u64;
        let mut log: Vec<(u64, u64)> = Vec::new();
        let mut active: Vec<Option<(u64, Vec<(u64, bool)>)>> = vec![None; 6];

        let begin = |cc: &mut Certification, active: &mut Vec<Option<(u64, Vec<(u64, bool)>)>>, txn: usize, ts: &mut u64, commit_index: u64| {
            *ts += 1;
            cc.begin(txn, *ts);
            active[txn] = Some((commit_index, Vec::new()));
        };

        for txn in 0..6 {
            begin(&mut cc, &mut active, txn, &mut ts, commit_index);
        }
        for op in ops {
            match op {
                Step::Access { txn, item, write } => {
                    prop_assert_eq!(cc.access(txn, item, write), AccessOutcome::Granted);
                    active[txn].as_mut().expect("active").1.push((item, write));
                }
                Step::TryCommit { txn } => {
                    let v = cc.validate(txn);
                    let (start, accesses) = active[txn].clone().expect("active");
                    // Oracle: conflicts = accessed items written by commits
                    // after `start`.
                    let dirty: std::collections::HashSet<u64> = log
                        .iter()
                        .filter(|&&(idx, _)| idx > start)
                        .map(|&(_, item)| item)
                        .collect();
                    let expect_conflict = accesses.iter().any(|&(item, _)| dirty.contains(&item));
                    prop_assert_eq!(
                        v.ok,
                        !expect_conflict,
                        "validate disagrees with oracle for txn {}", txn
                    );
                    if v.ok {
                        cc.commit(txn);
                        commit_index += 1;
                        for &(item, write) in &accesses {
                            if write {
                                log.push((commit_index, item));
                            }
                        }
                    } else {
                        cc.abort(txn);
                    }
                    begin(&mut cc, &mut active, txn, &mut ts, commit_index);
                }
                Step::Abort { txn } => {
                    cc.abort(txn);
                    begin(&mut cc, &mut active, txn, &mut ts, commit_index);
                }
            }
        }
    }

    /// 2PL never grants incompatible locks simultaneously; an oracle lock
    /// table is maintained from the observed grant/release events.
    #[test]
    fn twopl_grants_are_always_compatible(ops in steps(5, 8)) {
        let mut cc = TwoPhaseLocking::new(5);
        let mut ts = 0u64;
        // Oracle: item -> (writers, readers) currently granted.
        let mut held: std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)> =
            std::collections::HashMap::new();
        let mut blocked = [false; 5];

        for txn in 0..5usize {
            ts += 1;
            cc.begin(txn, ts);
        }
        let release_all = |held: &mut std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)>, txn: usize| {
            for (_, (w, r)) in held.iter_mut() {
                w.retain(|&t| t != txn);
                r.retain(|&t| t != txn);
            }
        };
        for op in ops {
            match op {
                Step::Access { txn, item, write } => {
                    if blocked[txn] {
                        continue; // a blocked txn cannot issue requests
                    }
                    match cc.access(txn, item, write) {
                        AccessOutcome::Granted => {
                            let (w, r) = held.entry(item).or_default();
                            if write {
                                prop_assert!(
                                    w.iter().all(|&t| t == txn) && r.iter().all(|&t| t == txn),
                                    "X granted on {item} while held by others"
                                );
                                if !w.contains(&txn) {
                                    w.push(txn);
                                }
                            } else {
                                prop_assert!(
                                    w.iter().all(|&t| t == txn),
                                    "S granted on {item} while X-held by another"
                                );
                                if !r.contains(&txn) {
                                    r.push(txn);
                                }
                            }
                        }
                        AccessOutcome::Blocked => {
                            blocked[txn] = true;
                            // Deadlock handling: abort the named victim.
                            if let Some(victim) = cc.deadlock_victim(txn) {
                                let unblocked = cc.abort(victim);
                                release_all(&mut held, victim);
                                blocked[victim] = false;
                                for u in unblocked {
                                    blocked[u] = false;
                                    // The granted request is now held: track
                                    // it conservatively as a reader (mode is
                                    // internal; compatibility was checked by
                                    // the protocol itself).
                                }
                                ts += 1;
                                cc.begin(victim, ts);
                            }
                        }
                        AccessOutcome::Abort => unreachable!("2PL never self-aborts on access"),
                    }
                }
                Step::TryCommit { txn } | Step::Abort { txn } => {
                    if blocked[txn] {
                        continue;
                    }
                    let unblocked = if matches!(op, Step::TryCommit { .. }) {
                        prop_assert!(cc.validate(txn).ok);
                        cc.commit(txn)
                    } else {
                        cc.abort(txn)
                    };
                    release_all(&mut held, txn);
                    for u in unblocked {
                        blocked[u] = false;
                    }
                    ts += 1;
                    cc.begin(txn, ts);
                }
            }
        }
    }

    /// The deadlock-prevention protocols never grant incompatible locks,
    /// and their wound/die decisions always unblock the system: no run of
    /// operations can wedge (a blocked transaction either waits for a
    /// live holder or the protocol names a victim).
    #[test]
    fn prevention_grants_are_always_compatible(
        ops in steps(5, 8),
        wound in any::<bool>(),
    ) {
        let policy = if wound { PreventionPolicy::WoundWait } else { PreventionPolicy::WaitDie };
        let mut cc = Prevention::new(policy, 5);
        let mut ts = 0u64;
        // Oracle: item -> (writers, readers) currently granted.
        let mut held: std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)> =
            std::collections::HashMap::new();
        let mut blocked = [false; 5];

        for txn in 0..5usize {
            ts += 1;
            cc.begin(txn, ts);
        }
        let release_all = |held: &mut std::collections::HashMap<u64, (Vec<usize>, Vec<usize>)>, txn: usize| {
            for (_, (w, r)) in held.iter_mut() {
                w.retain(|&t| t != txn);
                r.retain(|&t| t != txn);
            }
        };
        for op in ops {
            match op {
                Step::Access { txn, item, write } => {
                    if blocked[txn] {
                        continue;
                    }
                    match cc.access(txn, item, write) {
                        AccessOutcome::Granted => {
                            let (w, r) = held.entry(item).or_default();
                            if write {
                                prop_assert!(
                                    w.iter().all(|&t| t == txn) && r.iter().all(|&t| t == txn),
                                    "X granted on {item} while held by others"
                                );
                                if !w.contains(&txn) {
                                    w.push(txn);
                                }
                            } else {
                                prop_assert!(
                                    w.iter().all(|&t| t == txn),
                                    "S granted on {item} while X-held by another"
                                );
                                if !r.contains(&txn) {
                                    r.push(txn);
                                }
                            }
                        }
                        AccessOutcome::Blocked => {
                            blocked[txn] = true;
                            // Drain the victim chain exactly as the engine does.
                            let mut guard = 0;
                            while let Some(victim) = cc.deadlock_victim(txn) {
                                let unblocked = cc.abort(victim);
                                release_all(&mut held, victim);
                                blocked[victim] = false;
                                for u in unblocked {
                                    blocked[u] = false;
                                }
                                ts += 1;
                                cc.begin(victim, ts);
                                if victim == txn {
                                    break;
                                }
                                guard += 1;
                                prop_assert!(guard <= 5, "victim chain did not converge");
                            }
                        }
                        AccessOutcome::Abort => unreachable!("prevention never aborts on access"),
                    }
                }
                Step::TryCommit { txn } | Step::Abort { txn } => {
                    if blocked[txn] {
                        continue;
                    }
                    let unblocked = if matches!(op, Step::TryCommit { .. }) {
                        prop_assert!(cc.validate(txn).ok);
                        cc.commit(txn)
                    } else {
                        cc.abort(txn)
                    };
                    release_all(&mut held, txn);
                    for u in unblocked {
                        blocked[u] = false;
                    }
                    ts += 1;
                    cc.begin(txn, ts);
                }
            }
        }
        // No-wedge check: repeatedly aborting every runnable transaction
        // must eventually free all waiters (prevention admits no cycles,
        // so every blocked transaction waits on a live chain of holders).
        let mut done = [false; 5];
        let mut progress = true;
        while progress {
            progress = false;
            for txn in 0..5usize {
                if !blocked[txn] && !done[txn] {
                    let unblocked = cc.abort(txn);
                    release_all(&mut held, txn);
                    done[txn] = true;
                    for u in unblocked {
                        blocked[u] = false;
                    }
                    progress = true;
                }
            }
        }
        prop_assert!(
            blocked.iter().all(|&b| !b),
            "aborting all runners left transactions wedged: {blocked:?}"
        );
    }

    /// MVTO's committed projection is serializable in timestamp order:
    /// every committed reader saw exactly the version the ts-order serial
    /// execution over committed writers would have produced.
    #[test]
    fn mvto_commits_serialize_in_timestamp_order(ops in steps(6, 10)) {
        // A large retention bound keeps GC out of this property.
        let mut cc = Mvto::with_max_versions(6, 1024);
        let mut ts_counter = 0u64;
        let mut txn_ts = [0u64; 6];
        // Committed history: (ts, reads as (item, wts_read), writes).
        let mut committed: Vec<(u64, Vec<(u64, u64)>, Vec<u64>)> = Vec::new();

        for txn in 0..6usize {
            ts_counter += 1;
            txn_ts[txn] = ts_counter;
            cc.begin(txn, ts_counter);
        }
        for op in ops {
            match op {
                Step::Access { txn, item, write } => {
                    if cc.access(txn, item, write) == AccessOutcome::Abort {
                        cc.abort(txn);
                        ts_counter += 1;
                        txn_ts[txn] = ts_counter;
                        cc.begin(txn, ts_counter);
                    }
                }
                Step::TryCommit { txn } => {
                    let reads = cc.reads_of(txn).to_vec();
                    let writes = cc.writes_of(txn).to_vec();
                    if cc.validate(txn).ok {
                        cc.commit(txn);
                        committed.push((txn_ts[txn], reads, writes));
                    } else {
                        cc.abort(txn);
                    }
                    ts_counter += 1;
                    txn_ts[txn] = ts_counter;
                    cc.begin(txn, ts_counter);
                }
                Step::Abort { txn } => {
                    cc.abort(txn);
                    ts_counter += 1;
                    txn_ts[txn] = ts_counter;
                    cc.begin(txn, ts_counter);
                }
            }
        }
        // Serial oracle: the version a reader at `ts` must see is the
        // largest committed write timestamp below ts on that item (0 =
        // initial). Strictly below: the commit-time-install variant
        // serializes a transaction's reads before its own writes, so its
        // own version is never its read target.
        for (reader_ts, reads, _) in &committed {
            for &(item, wts_read) in reads {
                let serial = committed
                    .iter()
                    .filter(|(w_ts, _, writes)| w_ts < reader_ts && writes.contains(&item))
                    .map(|(w_ts, _, _)| *w_ts)
                    .max()
                    .unwrap_or(0);
                prop_assert_eq!(
                    wts_read, serial,
                    "reader {} on item {} saw {}, serial order says {}",
                    reader_ts, item, wts_read, serial
                );
            }
        }
    }

    /// Timestamp ordering matches the textbook rts/wts oracle exactly.
    #[test]
    fn timestamp_ordering_matches_oracle(ops in steps(5, 10)) {
        let mut cc = TimestampOrdering::new(5);
        let mut ts_counter = 0u64;
        let mut txn_ts = [0u64; 5];
        let mut oracle: std::collections::HashMap<u64, (u64, u64)> =
            std::collections::HashMap::new(); // item -> (rts, wts)
        let mut dead = [false; 5];

        for txn in 0..5usize {
            ts_counter += 1;
            txn_ts[txn] = ts_counter;
            cc.begin(txn, ts_counter);
        }
        for op in ops {
            match op {
                Step::Access { txn, item, write } => {
                    if dead[txn] {
                        continue;
                    }
                    let ts = txn_ts[txn];
                    let e = oracle.entry(item).or_insert((0, 0));
                    let expect = if write {
                        if ts < e.0 || ts < e.1 {
                            AccessOutcome::Abort
                        } else {
                            e.1 = ts;
                            AccessOutcome::Granted
                        }
                    } else if ts < e.1 {
                        AccessOutcome::Abort
                    } else {
                        e.0 = e.0.max(ts);
                        AccessOutcome::Granted
                    };
                    let got = cc.access(txn, item, write);
                    prop_assert_eq!(got, expect, "T/O deviates from oracle");
                    if got == AccessOutcome::Abort {
                        cc.abort(txn);
                        dead[txn] = true;
                    }
                }
                Step::TryCommit { txn } | Step::Abort { txn } => {
                    if matches!(op, Step::TryCommit { .. }) && !dead[txn] {
                        prop_assert!(cc.validate(txn).ok);
                        cc.commit(txn);
                    } else {
                        cc.abort(txn);
                    }
                    ts_counter += 1;
                    txn_ts[txn] = ts_counter;
                    cc.begin(txn, ts_counter);
                    dead[txn] = false;
                }
            }
        }
    }
}

mod engine_props {
    use super::*;
    use alc_tpsim::config::{CcKind, ControlConfig, SystemConfig};
    use alc_tpsim::engine::Simulator;
    use alc_tpsim::workload::WorkloadConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// For arbitrary small configurations the engine terminates,
        /// conserves transactions, respects the bound, and produces finite
        /// statistics.
        #[test]
        fn engine_invariants_hold(
            seed in any::<u64>(),
            terminals in 4u32..40,
            bound in 1u32..50,
            k in 1.0f64..10.0,
            write_frac in 0.0f64..1.0,
            cc_pick in 0usize..CcKind::ALL.len(),
        ) {
            let cc = CcKind::ALL[cc_pick];
            let sys = SystemConfig {
                terminals,
                cpus: 2,
                db_size: 200,
                think: alc_des::dist::Dist::exponential(100.0),
                disk_access: alc_des::dist::Dist::constant(2.0),
                disk_init_commit: alc_des::dist::Dist::constant(20.0),
                seed,
                ..SystemConfig::default()
            };
            let workload = WorkloadConfig {
                k: alc_analytic::surface::Schedule::Constant(k),
                write_frac: alc_analytic::surface::Schedule::Constant(write_frac),
                ..WorkloadConfig::default()
            };
            let mut sim = Simulator::new(
                sys,
                workload,
                cc,
                ControlConfig {
                    initial_bound: bound,
                    sample_interval_ms: 500.0,
                    warmup_ms: 0.0,
                    ..ControlConfig::default()
                },
                None,
            );
            sim.set_record_optimum(false);
            let stats = sim.run_until(8_000.0);
            prop_assert!(sim.gate().in_system() <= bound);
            prop_assert!(stats.mean_mpl <= f64::from(bound) + 1e-9);
            prop_assert!(stats.throughput_per_sec.is_finite());
            prop_assert!(stats.mean_response_ms >= 0.0);
            prop_assert!(stats.abort_ratio >= 0.0 && stats.abort_ratio <= 1.0);
            prop_assert!(stats.cpu_utilization >= 0.0 && stats.cpu_utilization <= 1.0 + 1e-9);
            // Transaction conservation: every terminal slot is in exactly
            // one place (thinking/queued/in-system) — implied by in_system
            // + queue being bounded by the population.
            prop_assert!(
                sim.gate().in_system() + sim.gate().queue_len() as u32 <= terminals
            );
        }
    }
}
