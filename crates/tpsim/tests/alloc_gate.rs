//! Allocation gate: the 2PL deadlock machinery must be zero-allocation
//! in steady state.
//!
//! This test binary installs a counting global allocator and drives a
//! warmed-up [`TwoPhaseLocking`] instance through a contended workload of
//! repeated multi-transaction deadlock cycles: every round builds a
//! waits-for cycle, runs the detector (`deadlock_victim`), aborts the
//! victim and drains the survivors. After warm-up (lock-table arena,
//! queues, DFS buffers at working-set capacity) *no* operation may touch
//! the allocator: the parent-pointer DFS reuses epoch-stamped per-slot
//! buffers instead of cloning paths into a fresh `HashSet`/`Vec` per
//! block, and the arena lock table recycles entries.
//!
//! Kept as its own integration-test binary so the global allocator and
//! the single `#[test]` cannot race with unrelated tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use alc_tpsim::cc::{AccessOutcome, ConcurrencyControl, TwoPhaseLocking};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const SLOTS: usize = 32;

/// One contended round with a deadlock cycle of length `cycle`:
/// every transaction grabs its own item exclusively, then requests its
/// neighbour's — the last request closes the cycle. The detector is
/// invoked after every block (exactly the engine's discipline), the
/// victim aborts, and the survivors drain through the FIFO grants.
fn deadlock_round(
    cc: &mut TwoPhaseLocking,
    ts_counter: &mut u64,
    cycle: usize,
    unblocked: &mut Vec<usize>,
) {
    for i in 0..cycle {
        *ts_counter += 1;
        cc.begin(i, *ts_counter);
        assert_eq!(cc.access(i, i as u64, true), AccessOutcome::Granted);
    }
    let mut victim = None;
    for i in 0..cycle {
        assert_eq!(cc.access(i, ((i + 1) % cycle) as u64, true), AccessOutcome::Blocked);
        if let Some(v) = cc.deadlock_victim(i) {
            victim = Some(v);
            break;
        }
    }
    let victim = victim.expect("a full cycle must produce a victim");
    unblocked.clear();
    cc.abort_into(victim, unblocked);
    // Drain the survivors: every release may grant queued requests.
    for i in 0..cycle {
        if i != victim {
            unblocked.clear();
            cc.commit_into(i, unblocked);
        }
    }
    assert_eq!(cc.locked_items(), 0, "round must end with an empty table");
}

#[test]
fn steady_state_2pl_deadlock_churn_is_allocation_free() {
    const WARMUP_ROUNDS: usize = 400;
    const MEASURED_ROUNDS: usize = 4_000;

    let mut cc = TwoPhaseLocking::new(SLOTS);
    let mut ts = 0u64;
    let mut unblocked: Vec<usize> = Vec::new();
    // Cycle lengths vary round to round so queues, holder buffers and the
    // DFS stack all see their working-set maxima during warm-up.
    let cycle_of = |round: usize| 2 + round * 7 % (SLOTS - 2);

    for round in 0..WARMUP_ROUNDS {
        deadlock_round(&mut cc, &mut ts, cycle_of(round), &mut unblocked);
    }

    let before = allocations();
    for round in 0..MEASURED_ROUNDS {
        deadlock_round(&mut cc, &mut ts, cycle_of(round), &mut unblocked);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "2PL deadlock hot path allocated {} times over {MEASURED_ROUNDS} contended rounds",
        after - before
    );
}
