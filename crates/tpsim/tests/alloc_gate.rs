//! Allocation gate: the CC hot paths must be zero-allocation in steady
//! state.
//!
//! This test binary installs a counting global allocator and drives
//! warmed-up protocol instances through contended workloads:
//!
//! * [`TwoPhaseLocking`] — repeated multi-transaction deadlock cycles:
//!   every round builds a waits-for cycle, runs the detector
//!   (`deadlock_victim`), aborts the victim and drains the survivors.
//!   After warm-up (lock-table arena, queues, DFS buffers at working-set
//!   capacity) *no* operation may touch the allocator.
//! * [`Certification`] — begin/access/validate/commit/abort churn: the
//!   per-item `wts` table and the validate-time dedup set are
//!   direct-indexed, db-sized arrays (no `HashMap`/`HashSet` on the
//!   access or validation path).
//! * [`Mvto`] — the version store is a direct-indexed, db-sized chain
//!   table; retention-capped chains and recycled read/write buffers keep
//!   the commit path off the allocator.
//!
//! Kept as its own integration-test binary so the global allocator
//! cannot race with unrelated tests, and built with `harness = false`:
//! libtest's runner thread lazily allocates its parking state the first
//! time it blocks waiting on a test, which intermittently lands inside
//! the first measurement window. A plain `main` keeps the process truly
//! single-threaded, so the counter sees only the workload.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use alc_tpsim::cc::{AccessOutcome, Certification, ConcurrencyControl, Mvto, TwoPhaseLocking};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const SLOTS: usize = 32;

/// One contended round with a deadlock cycle of length `cycle`:
/// every transaction grabs its own item exclusively, then requests its
/// neighbour's — the last request closes the cycle. The detector is
/// invoked after every block (exactly the engine's discipline), the
/// victim aborts, and the survivors drain through the FIFO grants.
fn deadlock_round(
    cc: &mut TwoPhaseLocking,
    ts_counter: &mut u64,
    cycle: usize,
    unblocked: &mut Vec<usize>,
) {
    for i in 0..cycle {
        *ts_counter += 1;
        cc.begin(i, *ts_counter);
        assert_eq!(cc.access(i, i as u64, true), AccessOutcome::Granted);
    }
    let mut victim = None;
    for i in 0..cycle {
        assert_eq!(cc.access(i, ((i + 1) % cycle) as u64, true), AccessOutcome::Blocked);
        if let Some(v) = cc.deadlock_victim(i) {
            victim = Some(v);
            break;
        }
    }
    let victim = victim.expect("a full cycle must produce a victim");
    unblocked.clear();
    cc.abort_into(victim, unblocked);
    // Drain the survivors: every release may grant queued requests.
    for i in 0..cycle {
        if i != victim {
            unblocked.clear();
            cc.commit_into(i, unblocked);
        }
    }
    assert_eq!(cc.locked_items(), 0, "round must end with an empty table");
}

fn steady_state_2pl_deadlock_churn_is_allocation_free() {
    const WARMUP_ROUNDS: usize = 400;
    const MEASURED_ROUNDS: usize = 4_000;

    let mut cc = TwoPhaseLocking::new(SLOTS);
    let mut ts = 0u64;
    let mut unblocked: Vec<usize> = Vec::new();
    // Cycle lengths vary round to round so queues, holder buffers and the
    // DFS stack all see their working-set maxima during warm-up.
    let cycle_of = |round: usize| 2 + round * 7 % (SLOTS - 2);

    for round in 0..WARMUP_ROUNDS {
        deadlock_round(&mut cc, &mut ts, cycle_of(round), &mut unblocked);
    }

    let before = allocations();
    for round in 0..MEASURED_ROUNDS {
        deadlock_round(&mut cc, &mut ts, cycle_of(round), &mut unblocked);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "2PL deadlock hot path allocated {} times over {MEASURED_ROUNDS} contended rounds",
        after - before
    );
}

const DB: usize = 512;

/// One certification round: `SLOTS` concurrent transactions access
/// overlapping windows of the database (reads and writes), then validate
/// in order — early committers pass, later ones with stale reads fail
/// and abort. Item windows slide every round so the whole table is
/// touched over time.
fn certification_round(cc: &mut Certification, round: usize) {
    for txn in 0..SLOTS {
        cc.begin(txn, (round * SLOTS + txn) as u64);
        for j in 0..8usize {
            let item = ((round * 13 + txn * 5 + j * 3) % DB) as u64;
            let write = (txn + j) % 3 == 0;
            assert_eq!(cc.access(txn, item, write), AccessOutcome::Granted);
        }
    }
    for txn in 0..SLOTS {
        let v = cc.validate(txn);
        if v.ok {
            cc.commit(txn);
        } else {
            cc.abort(txn);
        }
    }
}

fn steady_state_certification_churn_is_allocation_free() {
    const WARMUP_ROUNDS: usize = 200;
    const MEASURED_ROUNDS: usize = 4_000;

    let mut cc = Certification::with_db_size(SLOTS, DB);
    for round in 0..WARMUP_ROUNDS {
        certification_round(&mut cc, round);
    }

    let before = allocations();
    for round in 0..MEASURED_ROUNDS {
        certification_round(&mut cc, WARMUP_ROUNDS + round);
    }
    let after = allocations();

    assert!(cc.commits() > 0, "rounds must actually commit");
    assert_eq!(
        after - before,
        0,
        "certification hot path allocated {} times over {MEASURED_ROUNDS} rounds \
         (per-item tables must stay direct-indexed, dedup must stay epoch-stamped)",
        after - before
    );
}

/// One MVTO round: interleaved readers and writers over sliding item
/// windows; writers that would invalidate younger reads abort. Version
/// chains hit their retention cap during warm-up, after which inserts
/// recycle capacity.
fn mvto_round(cc: &mut Mvto, ts: &mut u64, round: usize) {
    for txn in 0..SLOTS {
        *ts += 1;
        cc.begin(txn, *ts);
    }
    let mut aborted = [false; SLOTS];
    for (txn, txn_aborted) in aborted.iter_mut().enumerate() {
        for j in 0..6usize {
            if *txn_aborted {
                break;
            }
            let item = ((round * 11 + txn * 7 + j) % DB) as u64;
            let write = (txn + j) % 2 == 0;
            if cc.access(txn, item, write) == AccessOutcome::Abort {
                cc.abort(txn);
                *txn_aborted = true;
            }
        }
    }
    for (txn, txn_aborted) in aborted.iter().enumerate() {
        if *txn_aborted {
            continue;
        }
        if cc.validate(txn).ok {
            cc.commit(txn);
        } else {
            cc.abort(txn);
        }
    }
}

fn steady_state_mvto_churn_is_allocation_free() {
    const WARMUP_ROUNDS: usize = 400;
    const MEASURED_ROUNDS: usize = 4_000;

    let mut cc = Mvto::with_db_size(SLOTS, DB);
    let mut ts = 0u64;
    for round in 0..WARMUP_ROUNDS {
        mvto_round(&mut cc, &mut ts, round);
    }

    let before = allocations();
    for round in 0..MEASURED_ROUNDS {
        mvto_round(&mut cc, &mut ts, WARMUP_ROUNDS + round);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "MVTO hot path allocated {} times over {MEASURED_ROUNDS} rounds \
         (version store must stay direct-indexed, buffers must recycle)",
        after - before
    );
}

fn main() {
    steady_state_2pl_deadlock_churn_is_allocation_free();
    steady_state_certification_churn_is_allocation_free();
    steady_state_mvto_churn_is_allocation_free();
    println!("alloc_gate ok: 2PL, certification and MVTO churn allocation-free");
}
