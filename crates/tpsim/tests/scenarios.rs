//! Scenario-level integration tests of the simulator: controller-in-the-
//! loop behaviours beyond single-module unit tests, at CI scale.

use alc_core::controller::{
    IyerRule, IyerRuleParams, LoadController, OuterParams, PaParams, ParabolaApproximation,
    SelfTuningIs, TayRule,
};
use alc_core::controller::IsParams;
use alc_tpsim::config::{CcKind, ControlConfig, SystemConfig};
use alc_tpsim::experiment::{run_trajectory, sweep_bounds};
use alc_tpsim::workload::WorkloadConfig;
use alc_analytic::surface::Schedule;

fn sys(seed: u64) -> SystemConfig {
    SystemConfig {
        terminals: 100,
        cpus: 8,
        db_size: 400,
        think: alc_des::dist::Dist::exponential(300.0),
        disk_access: alc_des::dist::Dist::constant(2.0),
        disk_init_commit: alc_des::dist::Dist::constant(50.0),
        seed,
        ..SystemConfig::default()
    }
}

fn control() -> ControlConfig {
    ControlConfig {
        sample_interval_ms: 1000.0,
        warmup_ms: 0.0,
        ..ControlConfig::default()
    }
}

#[test]
fn sinusoidal_tracking_stays_bounded() {
    let horizon = 180_000.0;
    let workload = WorkloadConfig::k_sinusoid(8.0, 4.0, horizon / 2.0);
    let pa = Box::new(ParabolaApproximation::new(PaParams {
        initial_bound: 10,
        max_bound: 120,
        dither_amplitude: 3.0,
        alpha: 0.9,
        ..PaParams::default()
    }));
    let (stats, traj) = run_trajectory(
        &sys(31),
        &workload,
        CcKind::Certification,
        &control(),
        pa,
        horizon,
        true,
    );
    assert!(stats.commits > 1000);
    // Tracking error over the second half stays below half the mean optimum.
    let pts = traj.bound.points();
    let mut err = 0.0;
    let mut opt_sum = 0.0;
    let tail = &pts[pts.len() / 2..];
    for &(t, b) in tail {
        let opt = traj
            .optimum
            .value_at(alc_des::SimTime::new(t))
            .expect("optimum recorded");
        err += (b - opt).abs();
        opt_sum += opt;
    }
    let mean_err = err / tail.len() as f64;
    let mean_opt = opt_sum / tail.len() as f64;
    assert!(
        mean_err < 0.5 * mean_opt,
        "tracking error {mean_err} vs mean optimum {mean_opt}"
    );
}

#[test]
fn self_tuning_is_works_in_the_loop() {
    // A deliberately mis-tuned gain; the §5 outer loop must still deliver
    // decent throughput. The workload writes heavily so the uncontrolled
    // system genuinely thrashes and there is something to win.
    let workload = WorkloadConfig {
        write_frac: Schedule::Constant(0.6),
        query_frac: Schedule::Constant(0.1),
        ..WorkloadConfig::default()
    };
    let tuned = Box::new(SelfTuningIs::new(
        IsParams {
            initial_bound: 10,
            max_bound: 120,
            beta: 100.0, // absurd for ~tx/s-scale performance signals
            ..IsParams::default()
        },
        OuterParams {
            window: 10,
            ..OuterParams::default()
        },
    ));
    let (stats_tuned, _) = run_trajectory(
        &sys(32),
        &workload,
        CcKind::Certification,
        &control(),
        tuned,
        180_000.0,
        false,
    );
    let uncontrolled = alc_tpsim::experiment::stationary_run(
        &sys(32),
        &workload,
        CcKind::Certification,
        u32::MAX,
        &control(),
        180_000.0,
    );
    assert!(
        stats_tuned.throughput_per_sec > uncontrolled.throughput_per_sec,
        "self-tuned IS {} did not beat uncontrolled {}",
        stats_tuned.throughput_per_sec,
        uncontrolled.throughput_per_sec
    );
}

#[test]
fn iyer_rule_keeps_conflicts_near_target() {
    let iyer = Box::new(IyerRule::new(IyerRuleParams {
        initial_bound: 10,
        max_bound: 120,
        target: 0.75,
        ..IyerRuleParams::default()
    }));
    let (stats, _) = run_trajectory(
        &sys(33),
        &WorkloadConfig {
            write_frac: Schedule::Constant(0.5),
            ..WorkloadConfig::default()
        },
        CcKind::Certification,
        &control(),
        iyer,
        120_000.0,
        false,
    );
    // The closed loop holds the conflict rate within a factor ~2.5 of the
    // 0.75 target (per-commit conflicts measured only on commits, so the
    // steady state sits somewhat above).
    assert!(
        stats.conflicts_per_commit < 2.0,
        "conflicts/commit {} far above Iyer target",
        stats.conflicts_per_commit
    );
    assert!(stats.commits > 500);
}

#[test]
fn tay_rule_is_protocol_blind() {
    // Tay's rule picks the same MPL for 2PL and certification — and the
    // measured best bounds differ. This is the quantified §1 caution.
    let tay = TayRule::new(8, 400, 1, 200);
    let rule_bound = tay.current_bound();
    let grid = [2u32, 5, 10, 20, 40, 80];
    let best = |cc: CcKind, seed: u64| -> u32 {
        sweep_bounds(&sys(seed), &WorkloadConfig::default(), cc, &grid, &control(), 45_000.0)
            .into_iter()
            .max_by(|a, b| a.stats.throughput_per_sec.total_cmp(&b.stats.throughput_per_sec))
            .map(|p| p.x)
            .expect("non-empty")
    };
    let best_cert = best(CcKind::Certification, 34);
    // The certification optimum is far above Tay's blocking-derived value.
    assert!(
        f64::from(best_cert) > 2.0 * f64::from(rule_bound),
        "certification best {best_cert} vs Tay rule {rule_bound}"
    );
}

#[test]
fn two_pl_thrashes_harder_than_certification() {
    // Blocking thrash (deadlock victims + convoys) collapses past the
    // optimum much more sharply than certification's waste-driven decay.
    let grid = [2u32, 5, 10, 20, 40, 80];
    let curve = |cc: CcKind| -> Vec<f64> {
        sweep_bounds(
            &sys(35),
            &WorkloadConfig {
                write_frac: Schedule::Constant(0.5),
                ..WorkloadConfig::default()
            },
            cc,
            &grid,
            &control(),
            45_000.0,
        )
        .into_iter()
        .map(|p| p.stats.throughput_per_sec)
        .collect()
    };
    let cert = curve(CcKind::Certification);
    let twopl = curve(CcKind::TwoPhaseLocking);
    let drop = |c: &[f64]| {
        let peak = c.iter().cloned().fold(f64::MIN, f64::max);
        c.last().unwrap() / peak
    };
    assert!(
        drop(&twopl) < drop(&cert),
        "2PL tail {:.2} should fall below certification tail {:.2}",
        drop(&twopl),
        drop(&cert)
    );
}

#[test]
fn ramp_schedule_moves_optimum_gradually() {
    let workload = WorkloadConfig {
        k: Schedule::Ramp {
            from: 4.0,
            to: 12.0,
            t_start: 20_000.0,
            t_end: 100_000.0,
        },
        ..WorkloadConfig::default()
    };
    let s = sys(36);
    let early = workload.analytic_optimum(0.0, &s, 200);
    let mid = workload.analytic_optimum(60_000.0, &s, 200);
    let late = workload.analytic_optimum(120_000.0, &s, 200);
    assert!(early > mid && mid > late, "{early} {mid} {late}");
}

#[test]
fn piecewise_schedule_drives_the_simulator() {
    let workload = WorkloadConfig {
        k: Schedule::Piecewise(vec![(0.0, 4.0), (20_000.0, 8.0), (40_000.0, 6.0)]),
        ..WorkloadConfig::default()
    };
    let stats = alc_tpsim::experiment::stationary_run(
        &sys(37),
        &workload,
        CcKind::Certification,
        40,
        &control(),
        60_000.0,
    );
    assert!(stats.commits > 500);
}

#[test]
fn effective_throughput_indicator_also_controls() {
    // §6: other indicators are usable; effective throughput (abort-
    // discounted) must also prevent thrashing.
    let ctl = ControlConfig {
        indicator: alc_core::measure::PerfIndicator::EffectiveThroughput,
        ..control()
    };
    let pa = Box::new(ParabolaApproximation::new(PaParams {
        initial_bound: 10,
        max_bound: 120,
        dither_amplitude: 3.0,
        ..PaParams::default()
    }));
    let (stats, _) = run_trajectory(
        &sys(38),
        &WorkloadConfig::default(),
        CcKind::Certification,
        &ctl,
        pa,
        120_000.0,
        false,
    );
    let uncontrolled = alc_tpsim::experiment::stationary_run(
        &sys(38),
        &WorkloadConfig::default(),
        CcKind::Certification,
        u32::MAX,
        &control(),
        120_000.0,
    );
    assert!(stats.throughput_per_sec > uncontrolled.throughput_per_sec);
}

#[test]
fn queue_wait_counts_toward_response_time() {
    // With a tight bound, the gate queue grows and user-visible response
    // time must include the wait (Little's law over the whole station).
    let tight = alc_tpsim::experiment::stationary_run(
        &sys(39),
        &WorkloadConfig::default(),
        CcKind::Certification,
        3,
        &control(),
        60_000.0,
    );
    let loose = alc_tpsim::experiment::stationary_run(
        &sys(39),
        &WorkloadConfig::default(),
        CcKind::Certification,
        60,
        &control(),
        60_000.0,
    );
    assert!(
        tight.mean_response_ms > 2.0 * loose.mean_response_ms,
        "queue wait missing from response: tight {} vs loose {}",
        tight.mean_response_ms,
        loose.mean_response_ms
    );
}
