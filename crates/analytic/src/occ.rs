//! An optimistic-CC conflict/throughput model (after Dan, Towsley &
//! Kohler, ICDE 1988, reduced to a self-consistent mean-value fixed
//! point).
//!
//! The paper's simulator runs timestamp certification — a non-blocking
//! scheme where data contention is resolved by abort/restart, so "data
//! contention is resolved by increased resource contention" (§1). The
//! model:
//!
//! * each transaction accesses `k` items out of `D`; an updater (fraction
//!   `1 − q`) writes a fraction `w` of its accesses, giving the conflict
//!   pressure `c = k²·w·(1−q)/D` per concurrently *committing* run;
//! * only committed writers invalidate others, and the commit rate itself
//!   falls with contention, so the expected certification conflicts per
//!   run solve the fixed point `λ = c·(n−1)·e^{−λ}`, i.e.
//!   `λ(n) = W₀(c·(n−1))` (Lambert W) — *self-limiting* contention, which
//!   matches the simulator's measured abort ratios closely;
//! * a run commits with probability `σ(n) = e^{−λ(n)}`; a commit costs
//!   `1/σ(n)` runs of resources;
//! * run-completion throughput `X(n)` comes from exact MVA on the closed
//!   resource network ([`crate::mva`]): aborted runs consume the same
//!   resources as committing ones;
//! * goodput is `T(n) = X(n)·σ(n)`.
//!
//! Consequence (visible in both model and simulator): with *unlimited*
//! resources, abort-based CC alone does not thrash — exactly the paper's
//! remark that "only in an ideal system with unlimited capacity, thrashing
//! can be avoided". The throughput peak sits near the resource saturation
//! knee and the post-knee decay steepens with the conflict pressure, so
//! the optimum's position and height both move when `k`, `q`, `w` (which
//! shift demand and pressure) change.

use crate::lambert::lambert_w0;
use crate::mva::{ClosedNetwork, MvaSolution};

/// Parameters of the optimistic-CC throughput model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OccModel {
    /// Data items accessed per transaction (`k`).
    pub k: u32,
    /// Database size in items (`D`).
    pub db_size: u64,
    /// Fraction of transactions that are read-only queries (`q`).
    pub query_frac: f64,
    /// Fraction of an updater's accesses that are writes (`w`).
    pub write_frac: f64,
    /// Total CPU demand of one run, milliseconds.
    pub cpu_per_run: f64,
    /// Total (contention-free) disk time of one run, milliseconds.
    pub io_per_run: f64,
    /// Number of CPUs (`m`).
    pub cpus: u32,
}

impl OccModel {
    /// Validates and constructs the model.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        k: u32,
        db_size: u64,
        query_frac: f64,
        write_frac: f64,
        cpu_per_run: f64,
        io_per_run: f64,
        cpus: u32,
    ) -> Self {
        assert!(k > 0 && db_size > 0 && cpus > 0);
        assert!((0.0..=1.0).contains(&query_frac));
        assert!((0.0..=1.0).contains(&write_frac));
        assert!(cpu_per_run > 0.0 && io_per_run >= 0.0);
        OccModel {
            k,
            db_size,
            query_frac,
            write_frac,
            cpu_per_run,
            io_per_run,
            cpus,
        }
    }

    /// The conflict pressure `c = k²·w·(1−q)/D`: raw invalidations per
    /// (run, committing-writer) pair.
    pub fn conflict_pressure(&self) -> f64 {
        let k = f64::from(self.k);
        k * k * self.write_frac * (1.0 - self.query_frac) / self.db_size as f64
    }

    /// Expected certification conflicts per run at MPL `n`, from the
    /// self-limiting fixed point `λ = c·(n−1)·e^{−λ}`.
    pub fn conflicts_per_run(&self, n: f64) -> f64 {
        if n <= 1.0 {
            return 0.0;
        }
        lambert_w0(self.conflict_pressure() * (n - 1.0))
    }

    /// Probability a run survives certification, `σ(n) = exp(−λ(n))`.
    pub fn commit_probability(&self, n: f64) -> f64 {
        (-self.conflicts_per_run(n)).exp()
    }

    /// Mean runs needed per commit, `1/σ(n)`.
    pub fn runs_per_commit(&self, n: f64) -> f64 {
        1.0 / self.commit_probability(n)
    }

    /// The underlying closed resource network (CPU station + disk delay).
    pub fn network(&self) -> ClosedNetwork {
        ClosedNetwork::new(self.cpu_per_run, self.cpus, self.io_per_run)
    }

    /// Solves the resource network and returns an evaluable goodput curve
    /// for MPLs up to `n_max`. The MVA pass is `O(n_max²)`; do it once and
    /// reuse the curve.
    pub fn curve(&self, n_max: u32) -> OccCurve {
        OccCurve {
            model: *self,
            mva: self.network().solve(n_max),
            n_max,
        }
    }

    /// The largest MPL obeying Iyer's rule of thumb: "mean number of
    /// conflicts per transaction should not exceed `limit`" (0.75 in IBM
    /// RJ6584, 1988). Inverts the fixed point: `λ ≤ L ⇔ c·(n−1) ≤ L·e^L`.
    pub fn iyer_rule_mpl(&self, limit: f64) -> u32 {
        let c = self.conflict_pressure();
        if c <= 0.0 {
            return u32::MAX; // read-only workload never conflicts
        }
        let n = 1.0 + limit * limit.exp() / c;
        n.floor().max(1.0).min(f64::from(u32::MAX)) as u32
    }
}

/// The *effective* database size under Zipf-skewed access with exponent
/// `theta` over `db_size` items: `1 / Σᵢ pᵢ²`, the inverse collision
/// probability of two independent accesses. With `theta = 0` this is
/// exactly `db_size`; skew concentrates accesses on hot items and shrinks
/// the effective size, raising the conflict pressure — the mechanism the
/// paper excludes ("no hot spots") and our hot-spot extension measures.
pub fn effective_db_size(db_size: u64, theta: f64) -> f64 {
    assert!(db_size > 0);
    assert!(theta >= 0.0);
    if theta == 0.0 {
        return db_size as f64;
    }
    // p_i ∝ 1/i^theta, i = 1..=D.
    let mut norm = 0.0;
    let mut sq = 0.0;
    for i in 1..=db_size {
        let p = 1.0 / (i as f64).powf(theta);
        norm += p;
        sq += p * p;
    }
    let collision = sq / (norm * norm);
    1.0 / collision
}

/// A solved OCC goodput curve: combines the MVA run-throughput table with
/// the certification survival probability.
#[derive(Debug, Clone)]
pub struct OccCurve {
    model: OccModel,
    mva: MvaSolution,
    n_max: u32,
}

impl OccCurve {
    /// The model this curve was solved from.
    pub fn model(&self) -> &OccModel {
        &self.model
    }

    /// Run-completion throughput (runs per ms, committing or not).
    pub fn run_throughput(&self, n: f64) -> f64 {
        self.mva.throughput_at(n)
    }

    /// Goodput: committed transactions per millisecond.
    pub fn throughput(&self, n: f64) -> f64 {
        self.run_throughput(n) * self.model.commit_probability(n)
    }

    /// Fraction of completed runs that abort (wasted resource share).
    pub fn wasted_fraction(&self, n: f64) -> f64 {
        1.0 - self.model.commit_probability(n)
    }

    /// The integer MPL maximizing goodput over `[1, n_max]`.
    pub fn optimal_mpl(&self) -> u32 {
        crate::optimum::grid_max_u32(|n| self.throughput(f64::from(n)), 1, self.n_max).0
    }

    /// Peak goodput value.
    pub fn peak_throughput(&self) -> f64 {
        self.throughput(f64::from(self.optimal_mpl()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test calibration mirroring the simulator's: CPU scales with k
    /// (4 ms/phase over k+2 phases), disk is dominated by fixed
    /// init/commit I/O (2×150 ms) plus 4 ms per access.
    fn model_for_k(k: u32, write_frac: f64) -> OccModel {
        let cpu = 4.0 * f64::from(k + 2);
        let io = 300.0 + 4.0 * f64::from(k);
        OccModel::new(k, 2000, 0.2, write_frac, cpu, io, 16)
    }

    fn base() -> OccModel {
        model_for_k(8, 0.25)
    }

    #[test]
    fn no_conflicts_alone() {
        let m = base();
        assert_eq!(m.conflicts_per_run(1.0), 0.0);
        assert_eq!(m.commit_probability(1.0), 1.0);
    }

    #[test]
    fn conflicts_grow_sublinearly() {
        // Self-limiting: λ(n) grows, but slower than the raw pressure.
        let m = base();
        let l50 = m.conflicts_per_run(51.0);
        let l100 = m.conflicts_per_run(101.0);
        let l200 = m.conflicts_per_run(201.0);
        assert!(l50 < l100 && l100 < l200);
        assert!(l200 / l100 < 2.0, "must be sublinear: {l100} -> {l200}");
        // And below the raw (non-limited) pressure.
        assert!(l100 < m.conflict_pressure() * 100.0);
    }

    #[test]
    fn fixed_point_identity() {
        // λ = c·(n−1)·e^{−λ} must hold at the reported λ.
        let m = base();
        for &n in &[2.0, 10.0, 100.0, 500.0] {
            let l = m.conflicts_per_run(n);
            let rhs = m.conflict_pressure() * (n - 1.0) * (-l).exp();
            assert!((l - rhs).abs() < 1e-9, "fixed point broken at n={n}");
        }
    }

    #[test]
    fn read_only_workload_never_aborts() {
        let m = OccModel::new(8, 2000, 1.0, 0.4, 40.0, 300.0, 16);
        assert_eq!(m.commit_probability(500.0), 1.0);
        assert_eq!(m.iyer_rule_mpl(0.75), u32::MAX);
    }

    #[test]
    fn throughput_shape_is_thrashing() {
        let curve = model_for_k(8, 0.4).curve(800);
        let peak = curve.optimal_mpl();
        assert!((60..400).contains(&peak), "peak at implausible MPL {peak}");
        // Underload region roughly linear: T(20)/T(10) close to 2.
        let ratio = curve.throughput(20.0) / curve.throughput(10.0);
        assert!((ratio - 2.0).abs() < 0.3, "underload ratio {ratio}");
        // Overload: clear drop at the end of the load axis.
        let at_peak = curve.peak_throughput();
        let at_end = curve.throughput(800.0);
        assert!(
            at_end < 0.75 * at_peak,
            "no thrashing drop: peak {at_peak}, end {at_end}"
        );
    }

    #[test]
    fn iyer_rule_inverts_conflict_formula() {
        let m = base();
        let n = m.iyer_rule_mpl(0.75);
        assert!(m.conflicts_per_run(f64::from(n)) <= 0.75 + 1e-9);
        assert!(m.conflicts_per_run(f64::from(n + 1)) > 0.75);
    }

    #[test]
    fn larger_k_lowers_optimum_position() {
        // The paper's §8 claim, with the simulator's calibration: CPU
        // scales with k while disk is mostly fixed, so the saturation
        // knee — and with it the optimum — moves down as k rises.
        let small = model_for_k(8, 0.25).curve(800);
        let large = model_for_k(16, 0.25).curve(800);
        assert!(
            large.optimal_mpl() + 20 <= small.optimal_mpl(),
            "k=16 optimum {} should sit well below k=8 optimum {}",
            large.optimal_mpl(),
            small.optimal_mpl()
        );
        // Height drops too ("significant impact on both height and
        // position", §8).
        assert!(large.peak_throughput() < small.peak_throughput());
    }

    #[test]
    fn heavier_writes_lower_peak_height() {
        let light = model_for_k(8, 0.10).curve(800);
        let heavy = model_for_k(8, 0.90).curve(800);
        assert!(heavy.peak_throughput() < light.peak_throughput());
        assert!(heavy.optimal_mpl() <= light.optimal_mpl());
        // And the thrashing flank is steeper under heavy writes.
        let rel_light = light.throughput(800.0) / light.peak_throughput();
        let rel_heavy = heavy.throughput(800.0) / heavy.peak_throughput();
        assert!(rel_heavy < rel_light);
    }

    #[test]
    fn wasted_fraction_monotone() {
        let curve = base().curve(800);
        let w: Vec<f64> = [1.0, 50.0, 200.0, 800.0]
            .iter()
            .map(|&n| curve.wasted_fraction(n))
            .collect();
        assert!(w.windows(2).all(|p| p[0] <= p[1]));
        assert_eq!(w[0], 0.0);
    }

    #[test]
    fn runs_per_commit_inverse_of_sigma() {
        let m = base();
        let n = 100.0;
        assert!((m.runs_per_commit(n) * m.commit_probability(n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effective_db_size_properties() {
        // No skew: exactly D.
        assert_eq!(effective_db_size(1000, 0.0), 1000.0);
        // Skew shrinks the effective size monotonically.
        let d0 = effective_db_size(1000, 0.2);
        let d1 = effective_db_size(1000, 0.8);
        let d2 = effective_db_size(1000, 1.2);
        assert!(d0 < 1000.0);
        assert!(d1 < d0 && d2 < d1, "{d0} {d1} {d2}");
        // Extreme skew approaches a handful of hot items.
        assert!(effective_db_size(1000, 3.0) < 10.0);
    }

    #[test]
    fn curve_matches_model_at_integer_points() {
        let m = base();
        let curve = m.curve(100);
        let net = m.network();
        let x50 = net.throughput(50);
        assert!((curve.run_throughput(50.0) - x50).abs() < 1e-12);
    }
}
