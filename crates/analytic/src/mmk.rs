//! M/M/m queueing formulas (Erlang-C).
//!
//! The paper's physical model is a homogeneous multiprocessor serving one
//! shared queue — in steady state, an M/M/m station. These closed forms
//! anchor the simulator's resource side: the integration tests compare the
//! simulated CPU waiting time against Erlang-C at moderate utilization.

/// An M/M/m service station: `m` identical servers, one FIFO queue,
/// Poisson arrivals at rate `lambda`, exponential service at rate `mu`
/// per server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MMm {
    /// Arrival rate (jobs per unit time).
    pub lambda: f64,
    /// Per-server service rate.
    pub mu: f64,
    /// Number of servers.
    pub m: u32,
}

impl MMm {
    /// Creates a station, panicking on non-positive rates or zero servers.
    pub fn new(lambda: f64, mu: f64, m: u32) -> Self {
        assert!(lambda > 0.0 && mu > 0.0 && m > 0);
        MMm { lambda, mu, m }
    }

    /// Offered load `a = λ/μ` in Erlangs.
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilization `ρ = λ/(mμ)`.
    pub fn utilization(&self) -> f64 {
        self.offered_load() / f64::from(self.m)
    }

    /// True if the queue is stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Erlang-C: the probability an arriving job must wait.
    ///
    /// Computed with the numerically stable recurrence on the Erlang-B
    /// blocking probability `B(m, a)`:
    /// `B(0) = 1`, `B(j) = a·B(j−1) / (j + a·B(j−1))`,
    /// `C = m·B / (m − a·(1 − B))`.
    pub fn erlang_c(&self) -> f64 {
        assert!(self.is_stable(), "Erlang-C undefined for unstable queue");
        let a = self.offered_load();
        let mut b = 1.0;
        for j in 1..=self.m {
            b = a * b / (f64::from(j) + a * b);
        }
        let m = f64::from(self.m);
        m * b / (m - a * (1.0 - b))
    }

    /// Mean waiting time in queue `Wq = C / (mμ − λ)`.
    pub fn mean_wait(&self) -> f64 {
        self.erlang_c() / (f64::from(self.m) * self.mu - self.lambda)
    }

    /// Mean response time (wait + service).
    pub fn mean_response(&self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }

    /// Mean number of jobs in queue (`Lq = λ·Wq`, Little's law).
    pub fn mean_queue_len(&self) -> f64 {
        self.lambda * self.mean_wait()
    }

    /// Mean number of jobs in the station (`L = λ·W`).
    pub fn mean_in_system(&self) -> f64 {
        self.lambda * self.mean_response()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_reduces_to_mm1() {
        // M/M/1: C = rho, Wq = rho / (mu - lambda)
        let q = MMm::new(0.5, 1.0, 1);
        assert!((q.erlang_c() - 0.5).abs() < 1e-12);
        assert!((q.mean_wait() - 1.0).abs() < 1e-12);
        assert!((q.mean_response() - 2.0).abs() < 1e-12);
        assert!((q.mean_in_system() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic table value: m=2, a=1 (rho=0.5) -> C = 1/3.
        let q = MMm::new(1.0, 1.0, 2);
        assert!((q.erlang_c() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_stability() {
        let q = MMm::new(3.0, 1.0, 4);
        assert!((q.utilization() - 0.75).abs() < 1e-12);
        assert!(q.is_stable());
        let u = MMm::new(5.0, 1.0, 4);
        assert!(!u.is_stable());
    }

    #[test]
    fn waiting_grows_with_load() {
        let w1 = MMm::new(1.0, 1.0, 4).mean_wait();
        let w2 = MMm::new(3.0, 1.0, 4).mean_wait();
        let w3 = MMm::new(3.9, 1.0, 4).mean_wait();
        assert!(w1 < w2 && w2 < w3);
    }

    #[test]
    fn more_servers_less_waiting() {
        let w4 = MMm::new(3.0, 1.0, 4).mean_wait();
        let w8 = MMm::new(3.0, 1.0, 8).mean_wait();
        assert!(w8 < w4);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn erlang_c_rejects_unstable() {
        MMm::new(4.0, 1.0, 4).erlang_c();
    }

    #[test]
    fn littles_law_consistency() {
        let q = MMm::new(2.0, 1.0, 3);
        let l = q.mean_in_system();
        let lq = q.mean_queue_len();
        // L = Lq + a
        assert!((l - (lq + q.offered_load())).abs() < 1e-12);
    }
}
