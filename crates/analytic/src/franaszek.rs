//! The Franaszek–Robinson random-graph model of concurrency limits
//! (ACM TODS 1985, "Limitations of Concurrency in Transaction
//! Processing" — cited by the paper's related-work survey as another
//! analytical route that "also reveals thrashing behaviour").
//!
//! The model: `n` concurrent transactions, each accessing `k` of `D`
//! items, form a random *conflict graph* in which two transactions are
//! adjacent iff their access sets intersect. For uniform access,
//!
//! ```text
//! p = P[two transactions conflict] ≈ 1 − (1 − k/D)^k ≈ k²/D
//! ```
//!
//! Only a conflict-free set of transactions can make progress together,
//! so the *useful concurrency* of an optimistic, restart-based executor
//! is the number of transactions with no conflict partner at all:
//!
//! ```text
//! u(n) = n·(1 − p)^(n−1)
//! ```
//!
//! `u(n)` is unimodal with its maximum at `n* = −1/ln(1 − p) ≈ D/k²`,
//! after which adding transactions *reduces* useful work — the
//! random-graph route to Figure 1's thrashing curve, independent of any
//! queueing assumptions. The position `n* ≈ D/k²` also ties neatly to
//! Tay's `k²n/D < 1.5` criterion: both place the cliff at `k²n/D = Θ(1)`.

/// Workload parameters of the random-graph conflict model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrModel {
    /// Items accessed per transaction (`k`).
    pub k: u32,
    /// Database size (`D`).
    pub db_size: u64,
}

impl FrModel {
    /// Creates a model; panics on degenerate parameters.
    pub fn new(k: u32, db_size: u64) -> Self {
        assert!(k > 0 && db_size > 0);
        assert!(
            u64::from(k) <= db_size,
            "transactions cannot access more items than exist"
        );
        FrModel { k, db_size }
    }

    /// Probability that two transactions' access sets intersect:
    /// `1 − (1 − k/D)^k` (exact under independent uniform draws with
    /// replacement across transactions).
    pub fn conflict_probability(&self) -> f64 {
        let k = f64::from(self.k);
        let d = self.db_size as f64;
        1.0 - (1.0 - k / d).powf(k)
    }

    /// Expected number of conflict partners of one transaction among
    /// `n − 1` others — the mean degree of the conflict graph.
    pub fn mean_degree(&self, n: f64) -> f64 {
        (n - 1.0).max(0.0) * self.conflict_probability()
    }

    /// Useful concurrency `u(n) = n·(1 − p)^(n−1)`: the expected number
    /// of transactions free of conflict partners.
    pub fn useful_concurrency(&self, n: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        let p = self.conflict_probability();
        n * (1.0 - p).powf(n - 1.0)
    }

    /// The MPL maximizing useful concurrency: `n* = −1/ln(1 − p)`,
    /// which for small `p` is ≈ `D/k²`. At least 1.
    pub fn optimal_mpl(&self) -> f64 {
        let p = self.conflict_probability();
        if p >= 1.0 {
            return 1.0;
        }
        (-1.0 / (1.0 - p).ln()).max(1.0)
    }

    /// Useful concurrency at the optimum — the model's concurrency
    /// *limit*: `u(n*) = n*·(1 − p)^(n*−1) ≈ n*/e`.
    pub fn concurrency_limit(&self) -> f64 {
        self.useful_concurrency(self.optimal_mpl())
    }

    /// The whole `u(n)` curve for `n = 1..=n_max`, for plotting against
    /// the simulator's measured throughput shape.
    pub fn curve(&self, n_max: u32) -> Vec<(u32, f64)> {
        (1..=n_max)
            .map(|n| (n, self.useful_concurrency(f64::from(n))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_probability_approximates_k_squared_over_d() {
        let m = FrModel::new(8, 2000);
        let p = m.conflict_probability();
        let approx = 64.0 / 2000.0;
        assert!(
            (p - approx).abs() / approx < 0.1,
            "p = {p}, k²/D = {approx}"
        );
    }

    #[test]
    fn useful_concurrency_is_unimodal() {
        let m = FrModel::new(8, 2000);
        let curve = m.curve(400);
        let peak_idx = curve
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, _)| i)
            .unwrap();
        // Strictly rising before the peak, strictly falling after (modulo
        // the flat-ish neighbourhood, checked with a margin of one step).
        for w in curve[..peak_idx].windows(2) {
            assert!(w[1].1 >= w[0].1, "not rising before peak at {:?}", w[0].0);
        }
        for w in curve[peak_idx + 1..].windows(2) {
            assert!(w[1].1 <= w[0].1, "not falling after peak at {:?}", w[0].0);
        }
    }

    #[test]
    fn optimum_lands_near_d_over_k_squared() {
        let m = FrModel::new(8, 2000);
        let n_opt = m.optimal_mpl();
        let rough = 2000.0 / 64.0; // 31.25
        assert!(
            (n_opt - rough).abs() / rough < 0.15,
            "n* = {n_opt}, D/k² = {rough}"
        );
        // And the discrete curve peaks at the same place.
        let curve = m.curve(200);
        let peak_n = curve
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(n, _)| n)
            .unwrap();
        assert!(
            (f64::from(peak_n) - n_opt).abs() <= 1.5,
            "curve peak {peak_n} vs analytic {n_opt}"
        );
    }

    #[test]
    fn concurrency_limit_is_n_opt_over_e() {
        let m = FrModel::new(4, 4000);
        let limit = m.concurrency_limit();
        let expected = m.optimal_mpl() / std::f64::consts::E;
        assert!(
            (limit - expected).abs() / expected < 0.01,
            "limit {limit} vs n*/e {expected}"
        );
    }

    #[test]
    fn more_contention_means_lower_limit() {
        let light = FrModel::new(4, 4000);
        let heavy = FrModel::new(16, 4000);
        assert!(light.optimal_mpl() > 10.0 * heavy.optimal_mpl());
        assert!(light.concurrency_limit() > 10.0 * heavy.concurrency_limit());
    }

    #[test]
    fn agrees_with_tay_on_the_cliff_location() {
        // Both models put the thrashing cliff at k²n/D = Θ(1): the FR
        // optimum times k²/D is a constant (= 1 in the small-p limit).
        for (k, d) in [(4u32, 2000u64), (8, 2000), (8, 8000), (16, 20_000)] {
            let m = FrModel::new(k, d);
            let alpha_at_opt = f64::from(k) * f64::from(k) * m.optimal_mpl() / d as f64;
            assert!(
                (0.8..=1.2).contains(&alpha_at_opt),
                "k={k}, D={d}: k²n*/D = {alpha_at_opt}"
            );
        }
    }

    #[test]
    fn degenerate_full_conflict() {
        // k = D: every pair conflicts, the optimum is serial execution.
        let m = FrModel::new(10, 10);
        assert!((m.conflict_probability() - 1.0).abs() < 1e-12);
        assert_eq!(m.optimal_mpl(), 1.0);
    }

    #[test]
    fn zero_and_negative_n_are_safe() {
        let m = FrModel::new(8, 2000);
        assert_eq!(m.useful_concurrency(0.0), 0.0);
        assert_eq!(m.useful_concurrency(-3.0), 0.0);
        assert_eq!(m.mean_degree(0.5), 0.0);
    }
}
