//! Scalar maximization helpers.
//!
//! The controllers search for the optimum online; the *evaluation* needs
//! the true optimum as a reference (the broken line `n_opt` in Figures 13
//! and 14). For unimodal curves golden-section search is exact enough; a
//! grid scan backs it up for curves with plateaus.

/// Result of a maximization: location and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// Argmax.
    pub x: f64,
    /// Max value.
    pub value: f64,
}

/// Golden-section search for the maximum of a unimodal function on
/// `[lo, hi]`, to within `tol` on the argument.
pub fn golden_section_max(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Maximum {
    assert!(hi > lo && tol > 0.0);
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    Maximum { x, value: f(x) }
}

/// Exhaustive integer grid scan for the maximum over `lo..=hi`. Ties are
/// resolved toward the smallest argument, which is what an MPL bound
/// should prefer (less admitted load for equal performance).
pub fn grid_max_u32(mut f: impl FnMut(u32) -> f64, lo: u32, hi: u32) -> (u32, f64) {
    assert!(hi >= lo);
    let mut best = (lo, f(lo));
    for n in (lo + 1)..=hi {
        let v = f(n);
        if v > best.1 {
            best = (n, v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_vertex() {
        let m = golden_section_max(|x| -(x - 3.7) * (x - 3.7) + 2.0, 0.0, 10.0, 1e-6);
        assert!((m.x - 3.7).abs() < 1e-5);
        assert!((m.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn golden_handles_edge_maximum() {
        let m = golden_section_max(|x| x, 0.0, 1.0, 1e-6);
        assert!(m.x > 0.999);
    }

    #[test]
    fn grid_max_finds_peak_and_prefers_smaller_tie() {
        let (n, v) = grid_max_u32(|n| if n == 5 || n == 7 { 10.0 } else { 0.0 }, 1, 10);
        assert_eq!(n, 5);
        assert_eq!(v, 10.0);
    }

    #[test]
    fn grid_max_single_point() {
        let (n, v) = grid_max_u32(f64::from, 4, 4);
        assert_eq!((n, v), (4, 4.0));
    }
}
