//! The Tay–Goodman–Suri locking model (ACM TODS 10(4), 1985).
//!
//! A closed mean-value model of a database with two-phase locking: `n`
//! transactions, each acquiring `k` locks one at a time out of `D` lockable
//! granules. Its headline results, as used by the paper:
//!
//! * the mean number of *blocked* transactions `b(n)` grows quadratically
//!   in `n`, so past the point where `db/dn > 1` adding a transaction
//!   *reduces* the number of active ones — thrashing (§1);
//! * thrashing begins near workload factor `α = k²·n/D ≈ 1.5`, giving the
//!   rule of thumb `k²n/D < 1.5` that the Tay baseline controller enforces.
//!
//! The model here is the standard "no-waiting approximation" variant: each
//! lock request conflicts with probability proportional to the locks held
//! by others, a blocked transaction waits roughly half a transaction
//! lifetime, and restarts are ignored below saturation. It reproduces the
//! qualitative curve exactly as the paper needs it — a unimodal throughput
//! function whose peak sits near `α ≈ 1.5`.

/// Workload parameters of the locking model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TayModel {
    /// Locks acquired per transaction (`k`).
    pub k: u32,
    /// Number of lockable data granules (`D`).
    pub db_size: u64,
    /// Mean lock-hold "think" time between acquiring successive locks, in
    /// arbitrary time units; only scales throughput, not the shape.
    pub step_time: f64,
}

impl TayModel {
    /// Creates a model; panics on degenerate parameters.
    pub fn new(k: u32, db_size: u64, step_time: f64) -> Self {
        assert!(k > 0 && db_size > 0 && step_time > 0.0);
        assert!(
            u64::from(k) <= db_size,
            "transactions cannot lock more granules than exist"
        );
        TayModel { k, db_size, step_time }
    }

    /// The workload factor `α = k²·n / D`. Tay's thrashing criterion is
    /// `α < 1.5`.
    pub fn workload_factor(&self, n: f64) -> f64 {
        let k = f64::from(self.k);
        k * k * n / self.db_size as f64
    }

    /// The largest MPL satisfying the `k²n/D < 1.5` rule of thumb.
    pub fn rule_of_thumb_mpl(&self) -> u32 {
        let k = f64::from(self.k);
        let n = 1.5 * self.db_size as f64 / (k * k);
        n.floor().max(1.0) as u32
    }

    /// Probability that one lock request conflicts when `n` transactions
    /// each hold `k/2` locks on average.
    pub fn conflict_probability(&self, n: f64) -> f64 {
        if n <= 1.0 {
            return 0.0;
        }
        let held_by_others = (n - 1.0) * f64::from(self.k) / 2.0;
        (held_by_others / self.db_size as f64).min(1.0)
    }

    /// Mean number of blocked transactions — the quadratic form
    /// `b(n) ≈ n·k·p_conflict·w`, with `w` the fraction of a lifetime spent
    /// waiting per block (≈ 1/2 in the standard approximation). For small
    /// conflict probabilities this is `b(n) ≈ k²·n·(n−1)/(4D)`: quadratic
    /// in `n`, exactly the statement quoted in the paper's introduction.
    pub fn blocked(&self, n: f64) -> f64 {
        let p = self.conflict_probability(n);
        let b = n * f64::from(self.k) * p * 0.5;
        b.min(n) // cannot block more transactions than exist
    }

    /// Mean number of *active* (not blocked) transactions `a(n) = n − b(n)`.
    pub fn active(&self, n: f64) -> f64 {
        (n - self.blocked(n)).max(0.0)
    }

    /// Throughput: active transactions each complete `k` steps of duration
    /// `step_time`, so `T(n) = a(n) / (k·step_time)`.
    pub fn throughput(&self, n: f64) -> f64 {
        self.active(n) / (f64::from(self.k) * self.step_time)
    }

    /// The derivative `db/dn`, used to locate the thrashing onset
    /// (`db/dn > 1` means adding one transaction blocks more than one).
    pub fn blocked_derivative(&self, n: f64) -> f64 {
        let h = 1e-4;
        (self.blocked(n + h) - self.blocked(n - h)) / (2.0 * h)
    }

    /// The MPL where `db/dn` first exceeds 1 (the analytic thrashing point),
    /// searched over `[1, n_max]`.
    pub fn thrashing_onset(&self, n_max: u32) -> Option<u32> {
        (1..=n_max).find(|&n| self.blocked_derivative(f64::from(n)) > 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TayModel {
        TayModel::new(8, 4000, 10.0)
    }

    #[test]
    fn workload_factor_formula() {
        let m = model();
        assert!((m.workload_factor(100.0) - 64.0 * 100.0 / 4000.0).abs() < 1e-12);
    }

    #[test]
    fn rule_of_thumb_matches_inversion() {
        let m = model();
        // 1.5 * 4000 / 64 = 93.75 -> 93
        assert_eq!(m.rule_of_thumb_mpl(), 93);
        // And the factor at that MPL is below 1.5 while n+1 exceeds it.
        assert!(m.workload_factor(93.0) < 1.5);
        assert!(m.workload_factor(94.0) >= 1.5);
    }

    #[test]
    fn blocked_is_quadratic_for_small_n() {
        let m = model();
        // b(n) ≈ k^2 n(n-1) / (4D); check the ratio b(2n)/b(n) ≈ 4 for small n.
        let b10 = m.blocked(10.0);
        let b20 = m.blocked(20.0);
        let ratio = b20 / b10;
        assert!(
            (ratio - 20.0 * 19.0 / (10.0 * 9.0)).abs() < 1e-9,
            "ratio {ratio}"
        );
    }

    #[test]
    fn no_blocking_with_single_transaction() {
        let m = model();
        assert_eq!(m.blocked(1.0), 0.0);
        assert_eq!(m.conflict_probability(1.0), 0.0);
        assert_eq!(m.active(1.0), 1.0);
    }

    #[test]
    fn throughput_is_unimodal() {
        let m = model();
        let curve: Vec<f64> = (1..=600).map(|n| m.throughput(f64::from(n))).collect();
        let peak_idx = curve
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // Rises before the peak, falls after it.
        assert!(peak_idx > 10 && peak_idx < 590, "peak at {peak_idx}");
        assert!(curve[peak_idx / 2] < curve[peak_idx]);
        assert!(curve[curve.len() - 1] < curve[peak_idx] * 0.8);
    }

    #[test]
    fn thrashing_onset_near_rule_of_thumb() {
        let m = model();
        let onset = m.thrashing_onset(2000).expect("onset must exist");
        let rot = m.rule_of_thumb_mpl();
        // The db/dn > 1 point and the alpha = 1.5 point agree within a
        // small factor (they are two renderings of the same criterion).
        let ratio = f64::from(onset) / f64::from(rot);
        assert!(
            (0.5..=3.0).contains(&ratio),
            "onset {onset} vs rule-of-thumb {rot}"
        );
    }

    #[test]
    fn blocked_never_exceeds_population() {
        let m = TayModel::new(32, 100, 1.0);
        for n in 1..=50 {
            assert!(m.blocked(f64::from(n)) <= f64::from(n));
        }
    }

    #[test]
    #[should_panic(expected = "cannot lock more granules")]
    fn rejects_k_larger_than_db() {
        TayModel::new(10, 5, 1.0);
    }
}
