//! Exact Mean Value Analysis for the paper's closed resource network.
//!
//! The physical model of §7 is a closed network: a multiprocessor CPU
//! station (one shared FCFS queue, `m` servers) plus pure-delay stations
//! (the contention-free disk and the terminals). For product-form networks
//! this solves *exactly* with load-dependent MVA (Reiser & Lavenberg):
//! the CPU is a load-dependent station with rate multiplier
//! `α(j) = min(j, m)` and the delays fold into a single think time `Z`.
//!
//! The solver yields the run-completion throughput `X(l)` for every
//! population `l ≤ n` in one `O(n²)` pass. It anchors two things:
//! the OCC throughput model ([`crate::occ`]) and the simulator validation
//! tests (a CC-free simulation must match MVA).

/// A closed single-class network: one multiserver queueing station (the
/// CPU) plus an aggregate pure delay (disk + terminal think time).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClosedNetwork {
    /// Total CPU service demand per run, milliseconds.
    pub cpu_demand: f64,
    /// Number of CPU servers.
    pub cpus: u32,
    /// Total pure-delay demand per run (disk + think), milliseconds.
    pub delay: f64,
}

/// The MVA solution for populations `1..=n`.
#[derive(Debug, Clone)]
pub struct MvaSolution {
    /// `throughput[l-1]` = X(l), runs per millisecond with population `l`.
    pub throughput: Vec<f64>,
    /// `cpu_response[l-1]` = CPU residence time (queue + service) at `l`.
    pub cpu_response: Vec<f64>,
}

impl ClosedNetwork {
    /// Validates and constructs a network.
    pub fn new(cpu_demand: f64, cpus: u32, delay: f64) -> Self {
        assert!(cpu_demand > 0.0 && cpus > 0 && delay >= 0.0);
        ClosedNetwork {
            cpu_demand,
            cpus,
            delay,
        }
    }

    /// Runs exact load-dependent MVA up to population `n`.
    pub fn solve(&self, n: u32) -> MvaSolution {
        let n = n.max(1) as usize;
        let s = self.cpu_demand;
        let m = self.cpus;
        let alpha = |j: usize| f64::from((j as u32).min(m));

        // p_prev[j] = P(j customers at CPU | population l-1)
        let mut p_prev = vec![0.0f64; n + 1];
        p_prev[0] = 1.0;
        let mut throughput = Vec::with_capacity(n);
        let mut cpu_response = Vec::with_capacity(n);

        for l in 1..=n {
            let mut r = 0.0;
            for j in 1..=l {
                r += (j as f64 / alpha(j)) * p_prev[j - 1];
            }
            let r = s * r;
            // Clamp to the balanced-job bounds; the recursion's numerical
            // drift can otherwise exceed the saturation asymptote by ~1e-4.
            let x = (l as f64 / (self.delay + r))
                .min(self.saturation_throughput())
                .min(l as f64 / (self.delay + s));

            let mut p_cur = vec![0.0f64; n + 1];
            let mut tail = 0.0;
            for j in 1..=l {
                p_cur[j] = (s * x / alpha(j)) * p_prev[j - 1];
                tail += p_cur[j];
            }
            if tail > 1.0 {
                // The marginal-probability recurrence accumulates drift near
                // saturation; renormalize instead of clamping to keep the
                // distribution proper.
                for p in p_cur.iter_mut() {
                    *p /= tail;
                }
                p_cur[0] = 0.0;
            } else {
                p_cur[0] = 1.0 - tail;
            }

            throughput.push(x);
            cpu_response.push(r);
            p_prev = p_cur;
        }
        MvaSolution {
            throughput,
            cpu_response,
        }
    }

    /// Throughput at exactly population `n` (runs one MVA pass).
    pub fn throughput(&self, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.solve(n).throughput[n as usize - 1]
    }

    /// The asymptotic throughput bound `m / cpu_demand`.
    pub fn saturation_throughput(&self) -> f64 {
        f64::from(self.cpus) / self.cpu_demand
    }
}

impl MvaSolution {
    /// Throughput at real-valued population `n` by linear interpolation
    /// (X(0) = 0). Saturates at the largest solved population.
    pub fn throughput_at(&self, n: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        let max_l = self.throughput.len() as f64;
        if n >= max_l {
            return self.throughput[self.throughput.len() - 1];
        }
        let lo = n.floor() as usize; // X(lo), lo >= 0
        let frac = n - lo as f64;
        let x_lo = if lo == 0 { 0.0 } else { self.throughput[lo - 1] };
        let x_hi = self.throughput[lo];
        x_lo + (x_hi - x_lo) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_customer_no_queueing() {
        let net = ClosedNetwork::new(40.0, 8, 250.0);
        let sol = net.solve(1);
        // One customer never queues: X(1) = 1/(C + Z).
        assert!((sol.throughput[0] - 1.0 / 290.0).abs() < 1e-12);
        assert!((sol.cpu_response[0] - 40.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_monotone_and_bounded() {
        let net = ClosedNetwork::new(40.0, 8, 250.0);
        let sol = net.solve(500);
        let cap = net.saturation_throughput();
        for w in sol.throughput.windows(2) {
            // Allow the documented tiny numerical dip of the load-dependent
            // recursion (≤ 0.1% relative).
            assert!(
                w[1] >= w[0] * (1.0 - 1e-3),
                "throughput must be (numerically) nondecreasing: {} -> {}",
                w[0],
                w[1]
            );
        }
        for &x in &sol.throughput {
            assert!(x <= cap + 1e-12);
        }
        // Saturates close to the bound for large populations.
        assert!(sol.throughput[499] > 0.999 * cap);
    }

    #[test]
    fn matches_asymptotic_bounds() {
        let net = ClosedNetwork::new(40.0, 8, 250.0);
        let sol = net.solve(100);
        // Light-load bound: X(l) <= l / (C + Z).
        for (i, &x) in sol.throughput.iter().enumerate() {
            let l = (i + 1) as f64;
            assert!(x <= l / 290.0 + 1e-12);
        }
    }

    #[test]
    fn single_server_closed_mm1_known_value() {
        // One CPU, demand 1, think 1: balanced machine-repairman.
        // For l=2: R(2) = S(1 + Q1(1)); Q1(1) = X(1)*R(1) = (1/2)*1 = 0.5
        // R(2) = 1.5, X(2) = 2/(1+1.5) = 0.8
        let net = ClosedNetwork::new(1.0, 1, 1.0);
        let sol = net.solve(2);
        assert!((sol.throughput[0] - 0.5).abs() < 1e-12);
        assert!((sol.throughput[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn more_cpus_more_throughput_midrange() {
        let x4 = ClosedNetwork::new(40.0, 4, 250.0).throughput(60);
        let x8 = ClosedNetwork::new(40.0, 8, 250.0).throughput(60);
        assert!(x8 > x4);
    }

    #[test]
    fn interpolation_is_sane() {
        let net = ClosedNetwork::new(40.0, 8, 250.0);
        let sol = net.solve(100);
        assert_eq!(sol.throughput_at(0.0), 0.0);
        let x10 = sol.throughput[9];
        assert!((sol.throughput_at(10.0) - x10).abs() < 1e-12);
        let mid = sol.throughput_at(10.5);
        assert!(mid >= x10 && mid <= sol.throughput[10]);
        // Beyond the table: clamps to the last value.
        assert_eq!(sol.throughput_at(1e9), sol.throughput[99]);
    }

    #[test]
    fn pure_delay_network_is_linear() {
        // With a huge number of CPUs nothing ever queues.
        let net = ClosedNetwork::new(10.0, 10_000, 90.0);
        let sol = net.solve(50);
        for (i, &x) in sol.throughput.iter().enumerate() {
            let l = (i + 1) as f64;
            assert!((x - l / 100.0).abs() < 1e-9);
        }
    }
}
