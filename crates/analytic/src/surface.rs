//! Synthetic load–performance surfaces `P(n, t)`.
//!
//! §3 of the paper abstracts the controlled system to a black box: a
//! time-varying function `P(n, t)` that is unimodal in `n` at every `t`
//! ("the only local maximum is also a global one") and moves slowly enough
//! that the shape at `tᵢ` predicts the shape at `tᵢ₊₁`. These surfaces make
//! that abstraction executable so the controllers can be unit-tested
//! without simulator noise, and so the pathological situations of
//! Figures 7 (flat hump) and 8 (abrupt shape change) can be staged
//! deliberately.

/// A time-varying scalar parameter.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Schedule {
    /// Always the same value.
    Constant(f64),
    /// Step change at `at`: `before` until then, `after` from then on —
    /// the paper's "jump-like variation to model abrupt changes".
    Jump {
        /// Time of the step.
        at: f64,
        /// Value before the step.
        before: f64,
        /// Value from the step on.
        after: f64,
    },
    /// `mean + amplitude·sin(2πt/period)` — the paper's "sinusoidal
    /// variation modelling more smooth and gradual changes".
    Sinusoid {
        /// Mid value.
        mean: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Period in the same unit as `t`.
        period: f64,
    },
    /// Linear ramp from `from` (at `t_start`) to `to` (at `t_end`),
    /// constant outside that window.
    Ramp {
        /// Value before `t_start`.
        from: f64,
        /// Value after `t_end`.
        to: f64,
        /// Ramp start time.
        t_start: f64,
        /// Ramp end time.
        t_end: f64,
    },
    /// Sample-and-hold over explicit `(time, value)` breakpoints.
    Piecewise(Vec<(f64, f64)>),
    /// General piecewise composition: each `(start, shape)` segment
    /// governs from `start` until the next segment's start (the last one
    /// forever), and its shape is evaluated in *phase-local* time
    /// `t − start` — so a sinusoid or ramp inside a phase begins at the
    /// phase boundary regardless of where the phase sits on the global
    /// axis. Before the first start the first shape applies (clamped to
    /// local time 0). Segments must be in ascending start order. This is
    /// the lowering target of the scenario DSL's phase lists; the other
    /// variants are its primitives.
    Profile(Vec<(f64, Schedule)>),
}

impl Schedule {
    /// The parameter value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Schedule::Constant(v) => *v,
            Schedule::Jump { at, before, after } => {
                if t < *at {
                    *before
                } else {
                    *after
                }
            }
            Schedule::Sinusoid {
                mean,
                amplitude,
                period,
            } => mean + amplitude * (2.0 * std::f64::consts::PI * t / period).sin(),
            Schedule::Ramp {
                from,
                to,
                t_start,
                t_end,
            } => {
                if t <= *t_start {
                    *from
                } else if t >= *t_end {
                    *to
                } else {
                    from + (to - from) * (t - t_start) / (t_end - t_start)
                }
            }
            Schedule::Piecewise(points) => {
                let mut v = points.first().map_or(0.0, |&(_, v)| v);
                for &(pt, pv) in points {
                    if pt <= t {
                        v = pv;
                    } else {
                        break;
                    }
                }
                v
            }
            Schedule::Profile(segments) => {
                let Some(first) = segments.first() else {
                    return 0.0;
                };
                let mut active = first;
                for seg in segments {
                    if seg.0 <= t {
                        active = seg;
                    } else {
                        break;
                    }
                }
                active.1.value((t - active.0).max(0.0))
            }
        }
    }
}

/// A load–performance surface: performance as a function of concurrency
/// level and time, with a known true optimum for evaluation.
pub trait Surface {
    /// Deterministic performance at concurrency `n` and time `t`.
    fn performance(&self, n: f64, t: f64) -> f64;

    /// The true optimal concurrency level at time `t`.
    fn optimum(&self, t: f64) -> f64;
}

/// The standard thrashing curve: `P(n) = h·(x·e^{1−x})^s` with
/// `x = n/n_opt`. Rises to `h` at `n = n_opt` and decays beyond it;
/// `steepness` sharpens both flanks (larger = more cliff-like thrashing).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RidgeSurface {
    /// Position of the optimum over time, `n_opt(t)`.
    pub position: Schedule,
    /// Height of the optimum over time.
    pub height: Schedule,
    /// Flank sharpness `s > 0`.
    pub steepness: f64,
}

impl RidgeSurface {
    /// A stationary ridge at `n_opt` with peak `height`.
    pub fn stationary(n_opt: f64, height: f64, steepness: f64) -> Self {
        RidgeSurface {
            position: Schedule::Constant(n_opt),
            height: Schedule::Constant(height),
            steepness,
        }
    }
}

impl Surface for RidgeSurface {
    fn performance(&self, n: f64, t: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        let n_opt = self.position.value(t).max(1.0);
        let h = self.height.value(t);
        let x = n / n_opt;
        h * (x * (1.0 - x).exp()).powf(self.steepness)
    }

    fn optimum(&self, t: f64) -> f64 {
        self.position.value(t).max(1.0)
    }
}

/// Figure 7's pathology: a broad, flat hump. `P(n) = h / (1 + ((n−c)/w)⁴)`
/// is nearly constant across `c ± w`, so a parabola fitted to samples from
/// the plateau can easily come out convex.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlatHumpSurface {
    /// Center of the hump over time.
    pub center: Schedule,
    /// Peak height over time.
    pub height: Schedule,
    /// Half-width of the plateau.
    pub width: f64,
}

impl Surface for FlatHumpSurface {
    fn performance(&self, n: f64, t: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        let c = self.center.value(t);
        let h = self.height.value(t);
        let z = (n - c) / self.width;
        h / (1.0 + z * z * z * z)
    }

    fn optimum(&self, t: f64) -> f64 {
        self.center.value(t)
    }
}

/// Adds zero-mean uniform relative noise to a surface — the measurement
/// noise the controller's stability tuning (§5) is about. Noise is produced
/// by a caller-supplied uniform sample in `[0,1)` to keep this crate free
/// of RNG dependencies.
pub fn noisy_observation(clean: f64, relative_amplitude: f64, u01: f64) -> f64 {
    let eps = (2.0 * u01 - 1.0) * relative_amplitude;
    (clean * (1.0 + eps)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_constant() {
        assert_eq!(Schedule::Constant(5.0).value(123.0), 5.0);
    }

    #[test]
    fn schedule_jump() {
        let s = Schedule::Jump {
            at: 10.0,
            before: 1.0,
            after: 2.0,
        };
        assert_eq!(s.value(9.999), 1.0);
        assert_eq!(s.value(10.0), 2.0);
        assert_eq!(s.value(1e9), 2.0);
    }

    #[test]
    fn schedule_sinusoid_bounds_and_period() {
        let s = Schedule::Sinusoid {
            mean: 10.0,
            amplitude: 3.0,
            period: 100.0,
        };
        assert!((s.value(0.0) - 10.0).abs() < 1e-12);
        assert!((s.value(25.0) - 13.0).abs() < 1e-12);
        assert!((s.value(75.0) - 7.0).abs() < 1e-12);
        assert!((s.value(100.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_ramp() {
        let s = Schedule::Ramp {
            from: 0.0,
            to: 10.0,
            t_start: 100.0,
            t_end: 200.0,
        };
        assert_eq!(s.value(50.0), 0.0);
        assert_eq!(s.value(150.0), 5.0);
        assert_eq!(s.value(250.0), 10.0);
    }

    #[test]
    fn schedule_piecewise_sample_and_hold() {
        let s = Schedule::Piecewise(vec![(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)]);
        assert_eq!(s.value(0.0), 1.0);
        assert_eq!(s.value(15.0), 2.0);
        assert_eq!(s.value(20.0), 3.0);
        assert_eq!(s.value(-5.0), 1.0);
    }

    #[test]
    fn schedule_profile_composes_in_local_time() {
        // Constant 5 until t=100, then a ramp 5→15 over [0,50] local time,
        // then a sinusoid around 20 from t=200.
        let s = Schedule::Profile(vec![
            (0.0, Schedule::Constant(5.0)),
            (
                100.0,
                Schedule::Ramp {
                    from: 5.0,
                    to: 15.0,
                    t_start: 0.0,
                    t_end: 50.0,
                },
            ),
            (
                200.0,
                Schedule::Sinusoid {
                    mean: 20.0,
                    amplitude: 4.0,
                    period: 100.0,
                },
            ),
        ]);
        assert_eq!(s.value(0.0), 5.0);
        assert_eq!(s.value(99.0), 5.0);
        assert_eq!(s.value(100.0), 5.0); // ramp at local t=0
        assert_eq!(s.value(125.0), 10.0); // ramp midpoint (local t=25)
        assert_eq!(s.value(175.0), 15.0); // ramp done, holds
        assert!((s.value(200.0) - 20.0).abs() < 1e-12); // sinusoid local t=0
        assert!((s.value(225.0) - 24.0).abs() < 1e-12); // quarter period
    }

    #[test]
    fn schedule_profile_before_first_segment_and_empty() {
        let s = Schedule::Profile(vec![(100.0, Schedule::Jump {
            at: 10.0,
            before: 1.0,
            after: 2.0,
        })]);
        // Before the first start the first shape applies at local time 0.
        assert_eq!(s.value(0.0), 1.0);
        assert_eq!(s.value(105.0), 1.0);
        assert_eq!(s.value(110.0), 2.0);
        assert_eq!(Schedule::Profile(vec![]).value(42.0), 0.0);
    }

    #[test]
    fn schedule_profile_nests() {
        // A profile inside a profile: the inner one sees local time too.
        let inner = Schedule::Profile(vec![
            (0.0, Schedule::Constant(1.0)),
            (10.0, Schedule::Constant(2.0)),
        ]);
        let s = Schedule::Profile(vec![(50.0, inner)]);
        assert_eq!(s.value(55.0), 1.0);
        assert_eq!(s.value(60.0), 2.0);
    }

    #[test]
    fn ridge_peaks_at_position() {
        let r = RidgeSurface::stationary(200.0, 50.0, 2.0);
        assert!((r.performance(200.0, 0.0) - 50.0).abs() < 1e-9);
        assert!(r.performance(100.0, 0.0) < 50.0);
        assert!(r.performance(400.0, 0.0) < 50.0);
        assert_eq!(r.optimum(0.0), 200.0);
    }

    #[test]
    fn ridge_is_unimodal() {
        let r = RidgeSurface::stationary(150.0, 10.0, 3.0);
        let vals: Vec<f64> = (1..=600).map(|n| r.performance(f64::from(n), 0.0)).collect();
        let peak = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((145..=155).contains(&(peak + 1)), "peak at {}", peak + 1);
        // Strictly increasing before, strictly decreasing after (allowing fp slack).
        assert!(vals[..peak].windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(vals[peak..].windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn ridge_zero_at_zero_load() {
        let r = RidgeSurface::stationary(100.0, 10.0, 2.0);
        assert_eq!(r.performance(0.0, 0.0), 0.0);
        assert_eq!(r.performance(-5.0, 0.0), 0.0);
    }

    #[test]
    fn ridge_tracks_moving_position() {
        let r = RidgeSurface {
            position: Schedule::Jump {
                at: 500.0,
                before: 300.0,
                after: 120.0,
            },
            height: Schedule::Constant(20.0),
            steepness: 2.0,
        };
        assert_eq!(r.optimum(0.0), 300.0);
        assert_eq!(r.optimum(600.0), 120.0);
        // After the jump the old optimum is deep on the thrashing flank.
        assert!(r.performance(300.0, 600.0) < 0.5 * r.performance(120.0, 600.0));
    }

    #[test]
    fn flat_hump_is_flat_on_top() {
        let f = FlatHumpSurface {
            center: Schedule::Constant(200.0),
            height: Schedule::Constant(10.0),
            width: 80.0,
        };
        let p_center = f.performance(200.0, 0.0);
        let p_off = f.performance(240.0, 0.0);
        // Within half a width, performance loses only a few percent.
        assert!(p_off > 0.93 * p_center, "hump not flat: {p_off} vs {p_center}");
        // But far out it drops hard.
        assert!(f.performance(500.0, 0.0) < 0.1 * p_center);
    }

    #[test]
    fn noisy_observation_properties() {
        assert_eq!(noisy_observation(10.0, 0.1, 0.5), 10.0);
        assert!((noisy_observation(10.0, 0.1, 1.0) - 11.0).abs() < 1e-9);
        assert!((noisy_observation(10.0, 0.1, 0.0) - 9.0).abs() < 1e-9);
        // Never negative even with huge noise.
        assert_eq!(noisy_observation(1.0, 10.0, 0.0), 0.0);
    }
}
