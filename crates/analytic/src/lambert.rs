//! The principal branch of the Lambert W function, `W₀`.
//!
//! Needed by the self-limiting OCC conflict model: with certification,
//! only *committed* writers invalidate others, so the conflict exposure
//! per run solves the fixed point `λ = c·n·e^{−λ}`, i.e. `λ = W₀(c·n)`.

/// `W₀(x)` for `x ≥ 0`: the unique `w ≥ 0` with `w·e^w = x`.
///
/// Newton iteration from a log-based initial guess; converges to machine
/// precision in a handful of steps over the whole non-negative range.
pub fn lambert_w0(x: f64) -> f64 {
    assert!(x >= 0.0 && x.is_finite(), "W0 needs finite x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    // ln(1+x) is an excellent starting point for x >= 0.
    let mut w = x.ln_1p();
    if w > 1.0 {
        // Asymptotic refinement for large arguments.
        let l1 = x.ln();
        let l2 = l1.ln();
        w = l1 - l2 + l2 / l1;
    }
    for _ in 0..50 {
        let ew = w.exp();
        let f = w * ew - x;
        // Halley's method: faster and more robust than plain Newton here.
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let dw = f / denom;
        w -= dw;
        if dw.abs() < 1e-14 * w.abs().max(1e-14) {
            break;
        }
    }
    w.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(lambert_w0(0.0), 0.0);
        // W(1) = Ω ≈ 0.5671432904097838
        assert!((lambert_w0(1.0) - 0.567_143_290_409_783_8).abs() < 1e-12);
        // W(e) = 1
        assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn defining_identity_holds() {
        for &x in &[1e-6, 0.01, 0.5, 1.0, 2.0, 5.0, 20.0, 1e3, 1e8] {
            let w = lambert_w0(x);
            let back = w * w.exp();
            assert!(
                (back - x).abs() <= 1e-9 * x.max(1.0),
                "W({x}) = {w}, w·e^w = {back}"
            );
        }
    }

    #[test]
    fn monotone_increasing() {
        let mut last = -1.0;
        for i in 0..1000 {
            let w = lambert_w0(f64::from(i) * 0.05);
            assert!(w >= last);
            last = w;
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        lambert_w0(f64::NAN);
    }
}
