//! `alc-analytic` — analytic companion models for the load-control study.
//!
//! The paper argues (§1) that analytically derived "rules of thumb" — Tay's
//! `k²n/D < 1.5` locking criterion and Iyer's "≤ 0.75 conflicts per
//! transaction" — cannot be trusted across all load situations, which is
//! the motivation for model-independent feedback control. To make that
//! argument reproducible we implement the models themselves:
//!
//! * [`mmk`] — M/M/m (Erlang-C) queueing formulas for the multiprocessor
//!   resource model.
//! * [`mva`] — exact load-dependent Mean Value Analysis of the closed
//!   resource network (multiserver CPU + delays), the run-throughput
//!   backbone of the OCC model and of simulator validation.
//! * [`tay`] — the mean-value locking model of Tay, Goodman & Suri (ACM
//!   TODS 1985): blocked transactions grow quadratically in the MPL, with
//!   the workload factor `k²n/D` locating the thrashing point.
//! * [`occ`] — an optimistic-CC conflict/throughput model in the spirit of
//!   Dan, Towsley & Kohler (ICDE 1988): restart probability rises with the
//!   MPL until wasted re-execution work collapses throughput.
//! * [`franaszek`] — the Franaszek–Robinson random conflict-graph model of
//!   concurrency limits: useful concurrency `n·(1−p)^(n−1)` peaks near
//!   `D/k²`, the queueing-free route to the thrashing curve.
//! * [`surface`] — synthetic load–performance surfaces `P(n, t)` (unimodal
//!   ridge, flat hump, jumps, sinusoidal drift). These drive controller
//!   unit tests and reproduce the pathological situations of Figures 7/8
//!   without simulator noise.
//! * [`optimum`] — scalar maximization helpers used to locate `n_opt` on
//!   any curve, giving the "true optimum" reference lines of Figures 13/14.

#![warn(missing_docs)]

pub mod franaszek;
pub mod lambert;
pub mod mmk;
pub mod mva;
pub mod occ;
pub mod optimum;
pub mod surface;
pub mod tay;
