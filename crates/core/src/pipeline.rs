//! The runtime control loop (Figure 5).
//!
//! ```text
//!            ┌────────────┐   measurements   ┌────────────┐
//!  arrivals →│    Gate    │────────────────→ │ Controller │
//!            └─────┬──────┘                  └─────┬──────┘
//!                  │        new threshold n*       │
//!                  └────────────────←──────────────┘
//! ```
//!
//! [`ControlLoop`] owns the three runtime pieces — gate, sampler and a
//! controller — for applications embedding adaptive admission control in a
//! real (threaded) server. Workers call [`ControlLoop::admit`] around each
//! unit of work and report completions; a timer thread (or any scheduler)
//! calls [`ControlLoop::tick`] once per measurement interval.
//!
//! The simulator in `alc-tpsim` does *not* use this type: it drives the
//! same controllers directly from simulated time.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::controller::LoadController;
use crate::gate::{AdaptiveGate, OwnedPermit};
use crate::measure::{Measurement, PerfIndicator};
use crate::sampler::{AdaptiveInterval, IntervalPolicy, IntervalSampler};

/// A self-contained adaptive admission-control loop for real workloads.
///
/// Generic over the [`IntervalPolicy`] deciding the next measurement
/// interval; [`AdaptiveInterval`] (target departure count) is the default,
/// [`crate::sampler::CiInterval`] gives the exact §5 accuracy/confidence
/// sizing.
pub struct ControlLoop<C, P = AdaptiveInterval> {
    gate: Arc<AdaptiveGate>,
    inner: Mutex<Inner<C, P>>,
    epoch: std::time::Instant,
}

struct Inner<C, P> {
    controller: C,
    sampler: IntervalSampler,
    interval: P,
}

impl<C: LoadController, P: IntervalPolicy> ControlLoop<C, P> {
    /// Wires a controller to a fresh gate. The gate starts at the
    /// controller's current bound.
    pub fn new(controller: C, indicator: PerfIndicator, interval: P) -> Self {
        let gate = Arc::new(AdaptiveGate::new(controller.current_bound()));
        ControlLoop {
            gate,
            inner: Mutex::new(Inner {
                controller,
                sampler: IntervalSampler::new(indicator, 0.0, 0),
                interval,
            }),
            #[allow(clippy::disallowed_methods)] // runtime control loop; the simulator does not use this type
            epoch: std::time::Instant::now(),
        }
    }

    /// Milliseconds since the loop was created (the loop's time base).
    pub fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1000.0
    }

    /// The gate, for sharing with worker threads.
    pub fn gate(&self) -> &Arc<AdaptiveGate> {
        &self.gate
    }

    /// Blocks until admitted and returns the permit. Hold it for the
    /// duration of the unit of work.
    pub fn admit(&self) -> OwnedPermit {
        let permit = self.gate.acquire_owned();
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let in_use = self.gate.in_use();
        inner.sampler.on_mpl_change(now, in_use);
        permit
    }

    /// Reports a successful completion with its response time.
    pub fn complete(&self, response_ms: f64) {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        inner.sampler.on_commit(response_ms);
        let in_use = self.gate.in_use();
        inner.sampler.on_mpl_change(now, in_use);
    }

    /// Reports a failed/aborted unit of work with its conflict count.
    pub fn fail(&self, conflicts: u64) {
        let mut inner = self.inner.lock();
        inner.sampler.on_abort(conflicts);
    }

    /// Closes the measurement interval, runs the controller, pushes the
    /// new bound into the gate, and returns `(measurement, new_bound,
    /// next_interval_ms)`. Call this from a timer at roughly
    /// `next_interval_ms` cadence.
    pub fn tick(&self) -> (Measurement, u32, f64) {
        let now = self.now_ms();
        let mut inner = self.inner.lock();
        let m = inner.sampler.harvest(now);
        let bound = inner.controller.update(&m);
        let next = inner.interval.observe(&m);
        drop(inner);
        self.gate.set_limit(bound);
        (m, bound, next)
    }

    /// Read access to the controller under the loop's lock.
    pub fn with_controller<R>(&self, f: impl FnOnce(&C) -> R) -> R {
        f(&self.inner.lock().controller)
    }
}

#[cfg(test)]
// Tests drive the live control loop in real time; sleeping is the workload.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::controller::{IncrementalSteps, IsParams};
    use crate::sampler::CiInterval;

    fn quick_loop() -> ControlLoop<IncrementalSteps> {
        ControlLoop::new(
            IncrementalSteps::new(IsParams {
                initial_bound: 4,
                max_bound: 64,
                ..IsParams::default()
            }),
            PerfIndicator::Throughput,
            AdaptiveInterval::new(100, 10.0, 10_000.0, 100.0),
        )
    }

    #[test]
    fn gate_starts_at_controller_bound() {
        let cl = quick_loop();
        assert_eq!(cl.gate().limit(), 4);
    }

    #[test]
    fn admit_complete_tick_roundtrip() {
        let cl = quick_loop();
        for _ in 0..10 {
            let p = cl.admit();
            cl.complete(5.0);
            drop(p);
        }
        let (m, bound, next) = cl.tick();
        assert_eq!(m.departures, 10);
        assert!(bound >= 1);
        assert!(next >= 10.0);
        assert_eq!(cl.gate().limit(), bound);
    }

    #[test]
    fn failures_are_counted() {
        let cl = quick_loop();
        let p = cl.admit();
        cl.fail(2);
        drop(p);
        let (m, _, _) = cl.tick();
        assert_eq!(m.aborts, 1);
        assert!(m.conflicts_per_txn >= 2.0);
    }

    #[test]
    fn bound_explores_and_stays_in_range() {
        let cl = quick_loop();
        let mut bounds = Vec::new();
        for round in 0..6u64 {
            for _ in 0..(10 + round * 10) {
                let p = cl.admit();
                cl.complete(1.0);
                drop(p);
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            let (_, b, _) = cl.tick();
            bounds.push(b);
        }
        // The first update has no history, so the controller must probe
        // upward at least once; every bound stays within the static range.
        assert!(
            bounds.iter().max().unwrap() > &4,
            "controller never explored: {bounds:?}"
        );
        assert!(bounds.iter().all(|&b| (1..=64).contains(&b)));
    }

    #[test]
    fn with_controller_exposes_state() {
        let cl = quick_loop();
        let name = cl.with_controller(|c| c.name());
        assert_eq!(name, "incremental-steps");
    }

    #[test]
    fn ci_interval_policy_plugs_in() {
        let cl = ControlLoop::new(
            IncrementalSteps::new(IsParams {
                initial_bound: 4,
                max_bound: 64,
                ..IsParams::default()
            }),
            PerfIndicator::Throughput,
            CiInterval::new(
                0.1,
                alc_des::stats::ConfidenceLevel::P95,
                10.0,
                10_000.0,
                100.0,
            ),
        );
        for _ in 0..20 {
            let p = cl.admit();
            cl.complete(1.0);
            drop(p);
        }
        let (m, bound, next) = cl.tick();
        assert_eq!(m.departures, 20);
        assert!(bound >= 1);
        assert!((10.0..=10_000.0).contains(&next));
    }
}
