//! Building [`Measurement`]s from raw completion events.
//!
//! §5: "A general problem is the choice of an appropriate measurement
//! interval length. … we have to strike a balance between stability (not
//! to react to stochastic events ('noise')) and responsiveness (quickly
//! respond to actual changes in the workload). … an estimate should
//! comprise rather hundreds of departures than some tens."
//!
//! [`IntervalSampler`] accumulates departures/aborts/response times and is
//! harvested once per interval. Two [`IntervalPolicy`] implementations
//! resize the interval between harvests:
//!
//! * [`AdaptiveInterval`] — the pragmatic rule: aim for a target number of
//!   departures per interval.
//! * [`CiInterval`] — the exact §5 calculation: size the interval so the
//!   throughput estimate meets a target accuracy and confidence, from the
//!   measured second moments of the departure process
//!   ([`alc_des::interval`]).

use alc_des::interval::DispersionEstimator;
use alc_des::stats::ConfidenceLevel;

use crate::measure::{Measurement, PerfIndicator};

/// Accumulates one interval's raw events.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    indicator: PerfIndicator,
    interval_start_ms: f64,
    departures: u64,
    aborts: u64,
    conflicts: u64,
    response_sum_ms: f64,
    mpl_area: f64,
    last_mpl_change_ms: f64,
    current_mpl: u32,
}

impl IntervalSampler {
    /// Creates a sampler evaluating the given indicator, starting at time
    /// `now_ms` with `mpl` transactions currently in the system.
    pub fn new(indicator: PerfIndicator, now_ms: f64, mpl: u32) -> Self {
        IntervalSampler {
            indicator,
            interval_start_ms: now_ms,
            departures: 0,
            aborts: 0,
            conflicts: 0,
            response_sum_ms: 0.0,
            mpl_area: 0.0,
            last_mpl_change_ms: now_ms,
            current_mpl: mpl,
        }
    }

    /// Records that the in-system transaction count changed.
    pub fn on_mpl_change(&mut self, now_ms: f64, mpl: u32) {
        self.mpl_area += f64::from(self.current_mpl) * (now_ms - self.last_mpl_change_ms);
        self.last_mpl_change_ms = now_ms;
        self.current_mpl = mpl;
    }

    /// Records a commit with its response time (submission → commit).
    pub fn on_commit(&mut self, response_ms: f64) {
        self.departures += 1;
        self.response_sum_ms += response_ms;
    }

    /// Records an abort/restart caused by `conflicts` data conflicts.
    pub fn on_abort(&mut self, conflicts: u64) {
        self.aborts += 1;
        self.conflicts += conflicts;
    }

    /// Records conflicts detected at a successful commit (certification
    /// that passed but observed contention, or lock waits under 2PL).
    pub fn on_conflicts(&mut self, conflicts: u64) {
        self.conflicts += conflicts;
    }

    /// Departures accumulated so far in the open interval.
    pub fn pending_departures(&self) -> u64 {
        self.departures
    }

    /// Closes the interval at `now_ms`, producing the controller's
    /// measurement, and starts the next interval.
    pub fn harvest(&mut self, now_ms: f64) -> Measurement {
        let interval_ms = (now_ms - self.interval_start_ms).max(f64::EPSILON);
        self.on_mpl_change(now_ms, self.current_mpl); // close the MPL area
        let observed_mpl = self.mpl_area / interval_ms;
        let mut m = Measurement {
            at_ms: now_ms,
            interval_ms,
            performance: 0.0,
            observed_mpl,
            departures: self.departures,
            aborts: self.aborts,
            conflicts_per_txn: if self.departures == 0 {
                self.conflicts as f64
            } else {
                self.conflicts as f64 / self.departures as f64
            },
            mean_response_ms: if self.departures == 0 {
                0.0
            } else {
                self.response_sum_ms / self.departures as f64
            },
        };
        m.performance = self.indicator.evaluate(&m);

        self.interval_start_ms = now_ms;
        self.departures = 0;
        self.aborts = 0;
        self.conflicts = 0;
        self.response_sum_ms = 0.0;
        self.mpl_area = 0.0;
        m
    }
}

/// A policy deciding how long the next measurement interval should be
/// from the intervals already harvested — the §5 balance between
/// stability (enough departures to filter noise) and responsiveness
/// (not longer than that).
pub trait IntervalPolicy {
    /// Absorbs the latest harvest and returns the interval to use next,
    /// in ms.
    fn observe(&mut self, m: &Measurement) -> f64;

    /// The interval currently in force, in ms.
    fn current_ms(&self) -> f64;
}

/// Adapts the measurement interval so each one contains about
/// `target_departures` commits (§5's "hundreds of departures rather than
/// some tens"), within `[min_ms, max_ms]`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveInterval {
    /// Desired departures per interval.
    pub target_departures: u64,
    /// Shortest allowed interval (responsiveness cap), ms.
    pub min_ms: f64,
    /// Longest allowed interval (staleness cap), ms.
    pub max_ms: f64,
    current_ms: f64,
}

impl AdaptiveInterval {
    /// Creates the policy starting from `initial_ms`.
    pub fn new(target_departures: u64, min_ms: f64, max_ms: f64, initial_ms: f64) -> Self {
        assert!(target_departures > 0);
        assert!(min_ms > 0.0 && max_ms >= min_ms);
        assert!((min_ms..=max_ms).contains(&initial_ms));
        AdaptiveInterval {
            target_departures,
            min_ms,
            max_ms,
            current_ms: initial_ms,
        }
    }

    /// The interval to use next.
    pub fn current_ms(&self) -> f64 {
        self.current_ms
    }

    /// Updates the interval from the last harvest's departure count.
    /// Geometric smoothing (x½/x2 max per step) keeps the interval from
    /// oscillating on bursty traffic.
    pub fn observe(&mut self, m: &Measurement) -> f64 {
        let rate = m.departures as f64 / m.interval_ms.max(f64::EPSILON);
        let ideal = if rate > 0.0 {
            self.target_departures as f64 / rate
        } else {
            self.current_ms * 2.0
        };
        let step_limited = ideal.clamp(self.current_ms * 0.5, self.current_ms * 2.0);
        self.current_ms = step_limited.clamp(self.min_ms, self.max_ms);
        self.current_ms
    }
}

impl IntervalPolicy for AdaptiveInterval {
    fn observe(&mut self, m: &Measurement) -> f64 {
        AdaptiveInterval::observe(self, m)
    }

    fn current_ms(&self) -> f64 {
        AdaptiveInterval::current_ms(self)
    }
}

/// The exact §5 interval policy: "calculate the necessary duration of
/// measurements to estimate the throughput with a given accuracy and for
/// a given confidence level", from the measured departure process.
///
/// Each harvest feeds a windowed [`DispersionEstimator`]; the next
/// interval is the length at which the throughput estimate's relative
/// confidence half-width drops to `rel_accuracy`, rate-limited (×½/×2 per
/// step) and clamped into `[min_ms, max_ms]`.
#[derive(Debug, Clone)]
pub struct CiInterval {
    /// Target relative half-width of the throughput CI (e.g. 0.1 = ±10%).
    pub rel_accuracy: f64,
    /// Confidence level of that half-width.
    pub confidence: ConfidenceLevel,
    /// Shortest allowed interval (responsiveness cap), ms.
    pub min_ms: f64,
    /// Longest allowed interval (staleness cap), ms.
    pub max_ms: f64,
    current_ms: f64,
    estimator: DispersionEstimator,
}

impl CiInterval {
    /// Creates the policy starting from `initial_ms`.
    pub fn new(
        rel_accuracy: f64,
        confidence: ConfidenceLevel,
        min_ms: f64,
        max_ms: f64,
        initial_ms: f64,
    ) -> Self {
        assert!(rel_accuracy > 0.0 && rel_accuracy < 1.0);
        assert!(min_ms > 0.0 && max_ms >= min_ms);
        assert!((min_ms..=max_ms).contains(&initial_ms));
        CiInterval {
            rel_accuracy,
            confidence,
            min_ms,
            max_ms,
            current_ms: initial_ms,
            estimator: DispersionEstimator::new(DispersionEstimator::DEFAULT_MAX_HISTORY),
        }
    }

    /// The departure-process statistics gathered so far, for inspection.
    pub fn estimator(&self) -> &DispersionEstimator {
        &self.estimator
    }

    /// Forgets the gathered statistics (e.g. after a known workload
    /// shift) while keeping the current interval.
    pub fn reset_statistics(&mut self) {
        self.estimator.reset();
    }
}

impl IntervalPolicy for CiInterval {
    fn observe(&mut self, m: &Measurement) -> f64 {
        self.estimator.observe(m.departures, m.interval_ms);
        let required = self
            .estimator
            .required_interval_ms(self.rel_accuracy, self.confidence);
        let ideal = if required.is_finite() {
            // Deterministic streams (c² = 0) imply "any interval works";
            // keep the floor instead of collapsing to zero.
            required.max(self.min_ms)
        } else {
            self.current_ms * 2.0 // starved: no departures yet
        };
        let step_limited = ideal.clamp(self.current_ms * 0.5, self.current_ms * 2.0);
        self.current_ms = step_limited.clamp(self.min_ms, self.max_ms);
        self.current_ms
    }

    fn current_ms(&self) -> f64 {
        self.current_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvest_computes_throughput_and_response() {
        let mut s = IntervalSampler::new(PerfIndicator::Throughput, 0.0, 0);
        for _ in 0..100 {
            s.on_commit(50.0);
        }
        let m = s.harvest(500.0);
        assert_eq!(m.departures, 100);
        assert!((m.throughput_per_sec() - 200.0).abs() < 1e-9);
        assert!((m.performance - 200.0).abs() < 1e-9);
        assert!((m.mean_response_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn harvest_resets_for_next_interval() {
        let mut s = IntervalSampler::new(PerfIndicator::Throughput, 0.0, 0);
        s.on_commit(10.0);
        s.harvest(100.0);
        let m2 = s.harvest(200.0);
        assert_eq!(m2.departures, 0);
        assert_eq!(m2.performance, 0.0);
        assert!((m2.interval_ms - 100.0).abs() < 1e-9);
    }

    #[test]
    fn observed_mpl_is_time_weighted() {
        let mut s = IntervalSampler::new(PerfIndicator::Throughput, 0.0, 10);
        s.on_mpl_change(40.0, 20); // 10 held for 40ms
        let m = s.harvest(100.0); // 20 held for 60ms
        assert!((m.observed_mpl - 16.0).abs() < 1e-9, "{}", m.observed_mpl);
    }

    #[test]
    fn conflicts_per_txn_counts_aborts_and_commits() {
        let mut s = IntervalSampler::new(PerfIndicator::Throughput, 0.0, 0);
        s.on_abort(3);
        s.on_abort(1);
        s.on_commit(10.0);
        s.on_commit(10.0);
        let m = s.harvest(1000.0);
        assert_eq!(m.aborts, 2);
        assert!((m.conflicts_per_txn - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_is_well_defined() {
        let mut s = IntervalSampler::new(PerfIndicator::Throughput, 0.0, 5);
        let m = s.harvest(100.0);
        assert_eq!(m.departures, 0);
        assert_eq!(m.mean_response_ms, 0.0);
        assert!((m.observed_mpl - 5.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_interval_grows_when_starved() {
        let mut ai = AdaptiveInterval::new(200, 100.0, 60_000.0, 1000.0);
        // 10 departures in 1000ms -> rate 0.01/ms -> ideal 20s, step-limited x2.
        let m = Measurement {
            departures: 10,
            ..Measurement::basic(1000.0, 1000.0, 0.0, 0.0)
        };
        assert!((ai.observe(&m) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_interval_shrinks_when_flooded() {
        let mut ai = AdaptiveInterval::new(200, 100.0, 60_000.0, 10_000.0);
        // 4000 departures in 10s -> ideal 500ms, step-limited to x0.5.
        let m = Measurement {
            departures: 4000,
            ..Measurement::basic(0.0, 10_000.0, 0.0, 0.0)
        };
        assert!((ai.observe(&m) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_interval_respects_caps() {
        let mut ai = AdaptiveInterval::new(200, 500.0, 4000.0, 1000.0);
        let dead = Measurement {
            departures: 0,
            ..Measurement::basic(0.0, 1000.0, 0.0, 0.0)
        };
        for _ in 0..10 {
            ai.observe(&dead);
        }
        assert_eq!(ai.current_ms(), 4000.0);
        let flood = Measurement {
            departures: 100_000,
            ..Measurement::basic(0.0, 1000.0, 0.0, 0.0)
        };
        for _ in 0..10 {
            ai.observe(&flood);
        }
        assert_eq!(ai.current_ms(), 500.0);
    }

    #[test]
    fn ci_interval_converges_to_the_renewal_formula() {
        // Poisson-like counts (c² ≈ 1) at 0.2/ms: the §5 formula says
        // T = (1.96/0.1)²·1 / 0.2 ≈ 1921 ms.
        let mut ci = CiInterval::new(0.1, ConfidenceLevel::P95, 100.0, 60_000.0, 1000.0);
        let mut interval = IntervalPolicy::current_ms(&ci);
        let mut state = 9u64;
        let mut noise = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..200 {
            let lambda_t = 0.2 * interval;
            // Counts with Poisson-like variance via a uniform kick of
            // matching second moment (±√(3λT)).
            let count = (lambda_t + noise() * (12.0f64 * lambda_t).sqrt()).max(0.0) as u64;
            let m = Measurement {
                departures: count,
                ..Measurement::basic(f64::from(i), interval, 0.0, 0.0)
            };
            interval = IntervalPolicy::observe(&mut ci, &m);
        }
        assert!(
            (1200.0..=3000.0).contains(&interval),
            "converged to {interval}, expected ≈ 1921"
        );
    }

    #[test]
    fn ci_interval_stretches_for_bursty_processes() {
        // Feast/famine counts are overdispersed: the required interval
        // must grow far beyond the Poisson value.
        let mut ci = CiInterval::new(0.1, ConfidenceLevel::P95, 100.0, 600_000.0, 1000.0);
        let mut interval = IntervalPolicy::current_ms(&ci);
        for i in 0..60 {
            let count = if i % 2 == 0 {
                (0.4 * interval) as u64
            } else {
                0
            };
            let m = Measurement {
                departures: count,
                ..Measurement::basic(f64::from(i), interval, 0.0, 0.0)
            };
            interval = IntervalPolicy::observe(&mut ci, &m);
        }
        assert!(interval > 10_000.0, "bursty stream got only {interval}");
    }

    #[test]
    fn ci_interval_grows_when_starved_and_respects_caps() {
        let mut ci = CiInterval::new(0.1, ConfidenceLevel::P95, 500.0, 4000.0, 1000.0);
        let dead = Measurement {
            departures: 0,
            ..Measurement::basic(0.0, 1000.0, 0.0, 0.0)
        };
        for _ in 0..10 {
            IntervalPolicy::observe(&mut ci, &dead);
        }
        assert_eq!(IntervalPolicy::current_ms(&ci), 4000.0);
    }

    #[test]
    fn ci_interval_floors_deterministic_streams() {
        // Identical counts every interval → c² ≈ 0 → required length 0;
        // the policy must hold min_ms, not collapse.
        let mut ci = CiInterval::new(0.1, ConfidenceLevel::P95, 200.0, 60_000.0, 1000.0);
        let mut interval = IntervalPolicy::current_ms(&ci);
        for i in 0..30 {
            let m = Measurement {
                departures: (0.2 * interval) as u64,
                ..Measurement::basic(f64::from(i), interval, 0.0, 0.0)
            };
            interval = IntervalPolicy::observe(&mut ci, &m);
        }
        assert_eq!(interval, 200.0);
    }

    #[test]
    fn ci_interval_reset_statistics_keeps_interval() {
        let mut ci = CiInterval::new(0.1, ConfidenceLevel::P95, 100.0, 10_000.0, 1000.0);
        let m = Measurement {
            departures: 100,
            ..Measurement::basic(0.0, 1000.0, 0.0, 0.0)
        };
        IntervalPolicy::observe(&mut ci, &m);
        let before = IntervalPolicy::current_ms(&ci);
        ci.reset_statistics();
        assert!(ci.estimator().is_empty());
        assert_eq!(IntervalPolicy::current_ms(&ci), before);
    }

    #[test]
    fn adaptive_interval_converges_to_target() {
        // Constant rate of 0.2 departures/ms -> ideal interval 1000ms.
        let mut ai = AdaptiveInterval::new(200, 100.0, 60_000.0, 8000.0);
        let mut interval = ai.current_ms();
        for _ in 0..10 {
            let m = Measurement {
                departures: (0.2 * interval) as u64,
                ..Measurement::basic(0.0, interval, 0.0, 0.0)
            };
            interval = ai.observe(&m);
        }
        assert!((interval - 1000.0).abs() < 50.0, "converged to {interval}");
    }
}
