//! Numerical estimation machinery behind the controllers.
//!
//! * [`Rls`] — recursive least squares with exponentially fading memory
//!   (Young 1984), the engine of the Parabola Approximation (§4.2).
//! * [`Ewma`] — exponentially weighted moving average, optional smoothing
//!   of noisy performance measurements (§5 stability/responsiveness).
//! * [`quadratic`] — interpreting a fitted degree-2 polynomial: vertex,
//!   concavity, and the memory-shape calculations behind Figure 6.

mod ewma;

pub mod quadratic;
pub mod rls;

pub use ewma::Ewma;
pub use rls::{Rls, RlsSnapshot};
