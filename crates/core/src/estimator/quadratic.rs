//! Interpreting a fitted quadratic `P(n) = a₀ + a₁·n + a₂·n²`.
//!
//! The Parabola Approximation's control law (§4.2) reads the fitted
//! coefficients: if the parabola opens downward (`a₂ < 0`) the vertex
//! `−a₁/(2a₂)` is the next load bound; if it opens upward the estimate "is
//! obviously unreliable and useless" (§5.2) and a recovery countermeasure
//! must run instead.

/// A quadratic model `y = a0 + a1·x + a2·x²`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quadratic {
    /// Constant coefficient.
    pub a0: f64,
    /// Linear coefficient.
    pub a1: f64,
    /// Quadratic coefficient; `a2 < 0` means the parabola opens downward.
    pub a2: f64,
}

/// Classification of a fitted parabola, deciding the §4.2 control law
/// branch.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FitShape {
    /// Opens downward with a clear curvature: the vertex is trustworthy.
    Concave {
        /// Location of the maximum.
        vertex: f64,
    },
    /// Opens upward (or curvature below the significance floor): the
    /// Figure 7/8 pathologies. The §5.2 countermeasures apply.
    Unusable,
}

impl Quadratic {
    /// Builds the model from RLS coefficients `[a0, a1, a2]`.
    pub fn from_theta(theta: &[f64; 3]) -> Self {
        Quadratic {
            a0: theta[0],
            a1: theta[1],
            a2: theta[2],
        }
    }

    /// Evaluates the model.
    pub fn eval(&self, x: f64) -> f64 {
        self.a0 + self.a1 * x + self.a2 * x * x
    }

    /// The §4.2 decision: usable vertex or §5.2 pathology. `min_curvature`
    /// is the smallest `|a2|` treated as significantly concave — a flat
    /// hump fit with `a2 ≈ 0⁻` would otherwise send the vertex to ±∞
    /// (Figure 7).
    pub fn classify(&self, min_curvature: f64) -> FitShape {
        if self.a2 < -min_curvature.abs() {
            FitShape::Concave {
                vertex: -self.a1 / (2.0 * self.a2),
            }
        } else {
            FitShape::Unusable
        }
    }

    /// The vertex location regardless of orientation; `None` when the
    /// model is (numerically) linear.
    pub fn vertex(&self) -> Option<f64> {
        if self.a2.abs() < f64::EPSILON {
            None
        } else {
            Some(-self.a1 / (2.0 * self.a2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_vertex() {
        // y = -(x-3)² + 9 = -x² + 6x
        let q = Quadratic {
            a0: 0.0,
            a1: 6.0,
            a2: -1.0,
        };
        assert_eq!(q.eval(3.0), 9.0);
        assert_eq!(q.vertex(), Some(3.0));
    }

    #[test]
    fn classify_concave() {
        let q = Quadratic {
            a0: 0.0,
            a1: 6.0,
            a2: -1.0,
        };
        assert_eq!(q.classify(1e-9), FitShape::Concave { vertex: 3.0 });
    }

    #[test]
    fn classify_convex_is_unusable() {
        let q = Quadratic {
            a0: 0.0,
            a1: -6.0,
            a2: 1.0,
        };
        assert_eq!(q.classify(1e-9), FitShape::Unusable);
    }

    #[test]
    fn classify_flat_hump_below_floor_is_unusable() {
        // a2 barely negative: vertex would fly off to a huge value.
        let q = Quadratic {
            a0: 10.0,
            a1: 0.001,
            a2: -1e-12,
        };
        assert_eq!(q.classify(1e-6), FitShape::Unusable);
    }

    #[test]
    fn linear_has_no_vertex() {
        let q = Quadratic {
            a0: 1.0,
            a1: 2.0,
            a2: 0.0,
        };
        assert_eq!(q.vertex(), None);
        assert_eq!(q.classify(1e-9), FitShape::Unusable);
    }

    #[test]
    fn from_theta_roundtrip() {
        let q = Quadratic::from_theta(&[1.0, -2.0, 0.5]);
        assert_eq!((q.a0, q.a1, q.a2), (1.0, -2.0, 0.5));
    }
}
