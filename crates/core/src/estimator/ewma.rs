//! Exponentially weighted moving average.
//!
//! §5 frames controller tuning as a balance between stability (don't chase
//! noise) and responsiveness (do chase the workload). An EWMA in front of
//! the raw performance signal is the cheapest lever: weight `w` on the new
//! observation, `1 − w` on history.

/// An exponentially weighted moving average of a scalar signal.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ewma {
    weight: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a smoother giving weight `weight ∈ (0, 1]` to each new
    /// observation. `weight = 1` disables smoothing.
    pub fn new(weight: f64) -> Self {
        assert!(weight > 0.0 && weight <= 1.0, "weight must be in (0,1]");
        Ewma {
            weight,
            value: None,
        }
    }

    /// Feeds an observation and returns the smoothed value. The first
    /// observation initializes the average directly.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.weight * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current smoothed value, if any observation has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_value_passes_through() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut e = Ewma::new(0.2);
        let mut last = 0.0;
        e.update(0.0);
        for _ in 0..100 {
            last = e.update(5.0);
        }
        assert!((last - 5.0).abs() < 1e-6);
    }

    #[test]
    fn weight_one_is_identity() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    fn smooths_alternating_noise() {
        let mut e = Ewma::new(0.1);
        e.update(10.0);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..200 {
            let x = if i % 2 == 0 { 9.0 } else { 11.0 };
            let v = e.update(x);
            if i > 20 {
                min = min.min(v);
                max = max.max(v);
            }
        }
        // Raw signal swings ±1; the smoothed one swings a fraction of that.
        assert!(max - min < 0.3, "smoothed range {}", max - min);
        assert!((0.5 * (max + min) - 10.0).abs() < 0.1);
    }

    #[test]
    fn reset_clears_history() {
        let mut e = Ewma::new(0.5);
        e.update(100.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "weight must be in")]
    fn rejects_zero_weight() {
        Ewma::new(0.0);
    }
}
