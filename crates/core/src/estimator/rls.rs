//! Recursive least squares with exponentially fading memory.
//!
//! §4.2: "Based on recent measurement pairs (P, n) the coefficients aᵢ are
//! estimated using a recursive least-square estimator with exponentially
//! fading memory [Young, 1984]. The fading is controllable by a weighting
//! parameter α. The recursive way the algorithm works makes it both space-
//! and time-efficient."
//!
//! The implementation is the textbook RLS recursion for a model
//! `y = φᵀθ + ε` with forgetting factor `α ∈ (0, 1]`:
//!
//! ```text
//! k   = P·φ / (α + φᵀ·P·φ)
//! θ  += k·(y − φᵀ·θ)
//! P   = (P − k·φᵀ·P) / α
//! ```
//!
//! A past observation `j` intervals old carries weight `αʲ` — the
//! "exponentially weighted short intervals" memory shape of Figure 6.
//! The dimension is const-generic; the Parabola Approximation uses `D = 3`
//! with the regressor `φ(n) = [1, n, n²]`.

// Indexed loops are the clearest rendering of the matrix recursions here.
#![allow(clippy::needless_range_loop)]

/// Recursive least-squares estimator of dimension `D` with forgetting.
#[derive(Debug, Clone)]
pub struct Rls<const D: usize> {
    theta: [f64; D],
    p: [[f64; D]; D],
    alpha: f64,
    initial_covariance: f64,
    samples: u64,
}

/// A read-only view of the estimator state, for logging and the `fig04`
/// experiment (plotting the fitted parabola against the measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlsSnapshot<const D: usize> {
    /// Current coefficient estimates.
    pub theta: [f64; D],
    /// Observations absorbed since the last full reset.
    pub samples: u64,
}

impl<const D: usize> Rls<D> {
    /// Creates an estimator with forgetting factor `alpha` and an initial
    /// covariance of `initial_covariance · I` (large values mean "no prior
    /// confidence", the usual choice is 10³–10⁶).
    pub fn new(alpha: f64, initial_covariance: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "forgetting factor must be in (0, 1], got {alpha}"
        );
        assert!(initial_covariance > 0.0);
        let mut p = [[0.0; D]; D];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = initial_covariance;
        }
        Rls {
            theta: [0.0; D],
            p,
            alpha,
            initial_covariance,
            samples: 0,
        }
    }

    /// The forgetting factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Replaces the forgetting factor α — the hook for outer loops that
    /// trade memory length against responsiveness at runtime (§5). State
    /// (θ, P) is preserved; only future updates fade differently.
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "forgetting factor must be in (0, 1], got {alpha}"
        );
        self.alpha = alpha;
    }

    /// Number of observations absorbed since the last reset.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current coefficient estimates.
    pub fn theta(&self) -> &[f64; D] {
        &self.theta
    }

    /// A copyable snapshot of the state.
    pub fn snapshot(&self) -> RlsSnapshot<D> {
        RlsSnapshot {
            theta: self.theta,
            samples: self.samples,
        }
    }

    /// Absorbs one observation `(φ, y)` and returns the prediction error
    /// `y − φᵀθ` *before* the update (the innovation).
    pub fn update(&mut self, phi: &[f64; D], y: f64) -> f64 {
        // p_phi = P·φ
        let mut p_phi = [0.0; D];
        for i in 0..D {
            let mut acc = 0.0;
            for j in 0..D {
                acc += self.p[i][j] * phi[j];
            }
            p_phi[i] = acc;
        }
        // denom = α + φᵀ·P·φ
        let mut phi_p_phi = 0.0;
        for i in 0..D {
            phi_p_phi += phi[i] * p_phi[i];
        }
        let denom = self.alpha + phi_p_phi;

        // innovation
        let mut y_hat = 0.0;
        for i in 0..D {
            y_hat += phi[i] * self.theta[i];
        }
        let err = y - y_hat;

        // gain k = P·φ / denom; θ += k·err
        let mut k = [0.0; D];
        for i in 0..D {
            k[i] = p_phi[i] / denom;
            self.theta[i] += k[i] * err;
        }

        // P = (P − k·(P·φ)ᵀ) / α, then re-symmetrize to fight drift.
        for i in 0..D {
            for j in 0..D {
                self.p[i][j] = (self.p[i][j] - k[i] * p_phi[j]) / self.alpha;
            }
        }
        for i in 0..D {
            for j in (i + 1)..D {
                let avg = 0.5 * (self.p[i][j] + self.p[j][i]);
                self.p[i][j] = avg;
                self.p[j][i] = avg;
            }
        }

        self.samples += 1;
        err
    }

    /// Predicted output for a regressor.
    pub fn predict(&self, phi: &[f64; D]) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += phi[i] * self.theta[i];
        }
        acc
    }

    /// Resets the covariance to `initial_covariance · I`, keeping θ.
    ///
    /// This is the §5.2 recovery countermeasure: after an abrupt workload
    /// change the old measurements are worthless; blowing the covariance
    /// up makes the estimator re-learn from fresh data at full speed while
    /// keeping the last coefficients as a starting point.
    pub fn reset_covariance(&mut self) {
        self.p = [[0.0; D]; D];
        for (i, row) in self.p.iter_mut().enumerate() {
            row[i] = self.initial_covariance;
        }
    }

    /// Full reset: coefficients to zero, covariance to the initial prior.
    pub fn reset(&mut self) {
        self.reset_covariance();
        self.theta = [0.0; D];
        self.samples = 0;
    }

    /// Trace of the covariance matrix — a cheap scalar summary of how
    /// uncertain the estimate is (grows again after `reset_covariance`).
    pub fn covariance_trace(&self) -> f64 {
        (0..D).map(|i| self.p[i][i]).sum()
    }
}

/// The weight an observation `age` intervals old carries in an estimator
/// with forgetting factor `alpha` — Figure 6's "shapes of the estimator's
/// memory". `age = 0` is the newest observation (weight 1).
pub fn memory_weight(alpha: f64, age: u32) -> f64 {
    alpha.powi(age as i32)
}

/// The "amount of information" a configuration uses: the area under its
/// weight profile, `Σ_{j<window} αʲ` (Figure 6 compares a long interval
/// with α = 0 against intervals a fifth as long with α = 0.8 — the areas
/// match, the shapes differ).
pub fn memory_area(alpha: f64, window: u32) -> f64 {
    if (alpha - 1.0).abs() < 1e-12 {
        return f64::from(window);
    }
    (1.0 - alpha.powi(window as i32)) / (1.0 - alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Batch (ordinary) least squares on [1, x, x²] for reference.
    fn batch_quadratic_fit(data: &[(f64, f64)]) -> [f64; 3] {
        // Solve normal equations A^T A c = A^T y with Gaussian elimination.
        let mut ata = [[0.0f64; 3]; 3];
        let mut aty = [0.0f64; 3];
        for &(x, y) in data {
            let phi = [1.0, x, x * x];
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += phi[i] * phi[j];
                }
                aty[i] += phi[i] * y;
            }
        }
        // Gaussian elimination with partial pivoting.
        let mut m = [[0.0f64; 4]; 3];
        for i in 0..3 {
            m[i][..3].copy_from_slice(&ata[i]);
            m[i][3] = aty[i];
        }
        for col in 0..3 {
            let piv = (col..3)
                .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
                .unwrap();
            m.swap(col, piv);
            for row in 0..3 {
                if row != col {
                    let f = m[row][col] / m[col][col];
                    for c in col..4 {
                        m[row][c] -= f * m[col][c];
                    }
                }
            }
        }
        [m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]]
    }

    #[test]
    fn recovers_exact_quadratic() {
        // y = 2 - 3x + 0.5x², no noise, alpha = 1 (no forgetting).
        let mut rls = Rls::<3>::new(1.0, 1e6);
        for i in 0..50 {
            let x = i as f64 / 10.0;
            let y = 2.0 - 3.0 * x + 0.5 * x * x;
            rls.update(&[1.0, x, x * x], y);
        }
        let t = rls.theta();
        assert!((t[0] - 2.0).abs() < 1e-6, "a0 {}", t[0]);
        assert!((t[1] + 3.0).abs() < 1e-6, "a1 {}", t[1]);
        assert!((t[2] - 0.5).abs() < 1e-6, "a2 {}", t[2]);
    }

    #[test]
    fn matches_batch_least_squares_without_forgetting() {
        // Noisy data: RLS with alpha=1 converges to the batch LS solution.
        let mut data = Vec::new();
        let mut seed = 12345u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for i in 0..200 {
            let x = (i % 40) as f64 / 10.0;
            let y = 1.0 + 2.0 * x - 0.7 * x * x + 0.05 * rng();
            data.push((x, y));
        }
        let batch = batch_quadratic_fit(&data);
        let mut rls = Rls::<3>::new(1.0, 1e8);
        for &(x, y) in &data {
            rls.update(&[1.0, x, x * x], y);
        }
        for i in 0..3 {
            assert!(
                (rls.theta()[i] - batch[i]).abs() < 1e-3,
                "coef {i}: rls {} vs batch {}",
                rls.theta()[i],
                batch[i]
            );
        }
    }

    #[test]
    fn forgetting_tracks_a_changing_model() {
        // Model switches from y = x to y = 4 - x at sample 100; with
        // forgetting the estimator follows, without it it averages.
        let run = |alpha: f64| {
            let mut rls = Rls::<2>::new(alpha, 1e6);
            for i in 0..100 {
                let x = (i % 10) as f64;
                rls.update(&[1.0, x], x);
            }
            for i in 0..100 {
                let x = (i % 10) as f64;
                rls.update(&[1.0, x], 4.0 - x);
            }
            rls.theta()[1] // slope estimate
        };
        let slope_fading = run(0.85);
        let slope_infinite = run(1.0);
        assert!(
            (slope_fading + 1.0).abs() < 0.05,
            "fading slope {slope_fading} should be ≈ -1"
        );
        assert!(
            slope_infinite > slope_fading + 0.3,
            "infinite-memory slope {slope_infinite} should lag behind"
        );
    }

    #[test]
    fn innovation_shrinks_on_consistent_data() {
        let mut rls = Rls::<3>::new(1.0, 1e6);
        let mut last = f64::INFINITY;
        for i in 1..30 {
            let x = i as f64;
            let e = rls.update(&[1.0, x, x * x], 5.0 + x).abs();
            if i > 4 {
                assert!(e <= last.max(1e-9) * 1.5, "innovation grew: {e} > {last}");
            }
            last = e;
        }
        assert!(last < 1e-6);
    }

    #[test]
    fn covariance_reset_restores_adaptivity() {
        let mut rls = Rls::<2>::new(1.0, 1e4);
        for i in 0..500 {
            let x = (i % 10) as f64;
            rls.update(&[1.0, x], 2.0 * x);
        }
        let trace_converged = rls.covariance_trace();
        rls.reset_covariance();
        assert!(rls.covariance_trace() > trace_converged * 10.0);
        // After reset, a few samples of the new regime dominate.
        for i in 0..20 {
            let x = (i % 10) as f64;
            rls.update(&[1.0, x], -2.0 * x);
        }
        assert!(
            (rls.theta()[1] + 2.0).abs() < 0.1,
            "slope after reset: {}",
            rls.theta()[1]
        );
    }

    #[test]
    fn full_reset_zeroes_everything() {
        let mut rls = Rls::<2>::new(0.9, 100.0);
        rls.update(&[1.0, 1.0], 5.0);
        rls.reset();
        assert_eq!(rls.theta(), &[0.0, 0.0]);
        assert_eq!(rls.samples(), 0);
        assert_eq!(rls.covariance_trace(), 200.0);
    }

    #[test]
    fn predict_uses_current_theta() {
        let mut rls = Rls::<2>::new(1.0, 1e6);
        for i in 0..50 {
            let x = i as f64;
            rls.update(&[1.0, x], 3.0 + 2.0 * x);
        }
        assert!((rls.predict(&[1.0, 10.0]) - 23.0).abs() < 1e-6);
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut rls = Rls::<2>::new(0.95, 1e3);
        rls.update(&[1.0, 2.0], 4.0);
        let snap = rls.snapshot();
        assert_eq!(snap.samples, 1);
        assert_eq!(snap.theta, *rls.theta());
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn rejects_zero_alpha() {
        Rls::<3>::new(0.0, 1.0);
    }

    #[test]
    fn memory_weight_shapes() {
        // Figure 6: alpha = 0.8, weights decay geometrically.
        assert_eq!(memory_weight(0.8, 0), 1.0);
        assert!((memory_weight(0.8, 1) - 0.8).abs() < 1e-12);
        assert!((memory_weight(0.8, 5) - 0.32768).abs() < 1e-12);
        // alpha = 1: rectangular window.
        assert_eq!(memory_weight(1.0, 100), 1.0);
    }

    #[test]
    fn memory_area_matches_figure6_tradeoff() {
        // A long interval with alpha=0 (one sample, area 1 per unit of
        // 5x-length interval → compare per-sample): the paper's point is
        // that 5 short intervals with alpha = 0.8 carry the same total
        // information as 1 long interval used once.
        let area_short = memory_area(0.8, 1000);
        assert!((area_short - 5.0).abs() < 1e-9, "area {area_short}");
        assert_eq!(memory_area(1.0, 7), 7.0);
    }
}
