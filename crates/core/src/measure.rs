//! Measurements and performance indicators.
//!
//! Once per measurement interval `[tᵢ, tᵢ₊₁)` the system reports what it
//! observed; the controller turns that into a new MPL bound. §6 of the
//! paper compares candidate overload indicators and settles on throughput
//! ("the most significant indicator", i.e. the most distinct extremum);
//! the other indicators remain available both for the `sec6` reproduction
//! experiment and for users whose goals differ (e.g. response-time SLOs).

/// One interval's worth of observations, the controller's only input —
/// the approach is deliberately model-independent (§3: "we are not
/// concerned about any internal details of the system").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Measurement {
    /// End of the measurement interval, milliseconds of system time.
    pub at_ms: f64,
    /// Interval length in milliseconds.
    pub interval_ms: f64,
    /// The performance index `P(tᵢ)` the controller optimizes (already
    /// evaluated through a [`PerfIndicator`]).
    pub performance: f64,
    /// Time-averaged observed concurrency level `n(tᵢ)` over the interval.
    pub observed_mpl: f64,
    /// Committed transactions in the interval (`departures`).
    pub departures: u64,
    /// Aborted/restarted runs in the interval.
    pub aborts: u64,
    /// Mean data-contention conflicts per committed transaction — the
    /// quantity Iyer's rule of thumb bounds.
    pub conflicts_per_txn: f64,
    /// Mean response time of transactions committing in the interval, ms.
    pub mean_response_ms: f64,
}

impl Measurement {
    /// A minimal measurement carrying only what IS/PA strictly need:
    /// timestamp, interval, performance and observed MPL. The remaining
    /// fields are zeroed; use the full struct literal when they matter.
    pub fn basic(at_ms: f64, interval_ms: f64, performance: f64, observed_mpl: f64) -> Self {
        Measurement {
            at_ms,
            interval_ms,
            performance,
            observed_mpl,
            departures: 0,
            aborts: 0,
            conflicts_per_txn: 0.0,
            mean_response_ms: 0.0,
        }
    }

    /// Throughput in transactions per second implied by the departure count.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.interval_ms <= 0.0 {
            0.0
        } else {
            self.departures as f64 * 1000.0 / self.interval_ms
        }
    }

    /// Fraction of runs that aborted in the interval.
    pub fn abort_ratio(&self) -> f64 {
        let total = self.departures + self.aborts;
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

/// The candidate overload indicators compared in §6 of the paper. All are
/// "larger is better" so every controller can maximize uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PerfIndicator {
    /// Committed transactions per second — the paper's choice: "the
    /// throughput T turned out to be the most significant indicator".
    Throughput,
    /// Reciprocal of mean response time (1/ms); falls off both in
    /// underload (idle) — no — it is monotone decreasing in load, giving a
    /// less distinct extremum; kept for the §6 comparison.
    InverseResponseTime,
    /// Throughput degraded by the abort ratio: commits/s × (1 − abort
    /// ratio). Punishes wasted work twice, sharpening the thrashing side.
    EffectiveThroughput,
    /// Negated conflicts per transaction, the signal Iyer's rule watches.
    NegatedConflictRate,
}

impl PerfIndicator {
    /// Evaluates the indicator on an interval's raw statistics.
    pub fn evaluate(&self, m: &Measurement) -> f64 {
        match self {
            PerfIndicator::Throughput => m.throughput_per_sec(),
            PerfIndicator::InverseResponseTime => {
                if m.mean_response_ms > 0.0 {
                    1000.0 / m.mean_response_ms
                } else {
                    0.0
                }
            }
            PerfIndicator::EffectiveThroughput => {
                m.throughput_per_sec() * (1.0 - m.abort_ratio())
            }
            PerfIndicator::NegatedConflictRate => -m.conflicts_per_txn,
        }
    }

    /// Short name for table output.
    pub fn name(&self) -> &'static str {
        match self {
            PerfIndicator::Throughput => "throughput",
            PerfIndicator::InverseResponseTime => "inv-response",
            PerfIndicator::EffectiveThroughput => "eff-throughput",
            PerfIndicator::NegatedConflictRate => "neg-conflicts",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurement {
        Measurement {
            at_ms: 1000.0,
            interval_ms: 500.0,
            performance: 0.0,
            observed_mpl: 42.0,
            departures: 100,
            aborts: 25,
            conflicts_per_txn: 0.5,
            mean_response_ms: 200.0,
        }
    }

    #[test]
    fn throughput_per_sec() {
        // 100 departures in 0.5 s => 200/s.
        assert!((sample().throughput_per_sec() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_zero_interval() {
        let mut m = sample();
        m.interval_ms = 0.0;
        assert_eq!(m.throughput_per_sec(), 0.0);
    }

    #[test]
    fn abort_ratio() {
        assert!((sample().abort_ratio() - 0.2).abs() < 1e-12);
        let mut m = sample();
        m.departures = 0;
        m.aborts = 0;
        assert_eq!(m.abort_ratio(), 0.0);
    }

    #[test]
    fn indicator_throughput() {
        assert!((PerfIndicator::Throughput.evaluate(&sample()) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn indicator_inverse_response() {
        assert!((PerfIndicator::InverseResponseTime.evaluate(&sample()) - 5.0).abs() < 1e-12);
        let mut m = sample();
        m.mean_response_ms = 0.0;
        assert_eq!(PerfIndicator::InverseResponseTime.evaluate(&m), 0.0);
    }

    #[test]
    fn indicator_effective_throughput() {
        let v = PerfIndicator::EffectiveThroughput.evaluate(&sample());
        assert!((v - 160.0).abs() < 1e-12);
    }

    #[test]
    fn indicator_negated_conflicts() {
        assert_eq!(PerfIndicator::NegatedConflictRate.evaluate(&sample()), -0.5);
    }

    #[test]
    fn basic_constructor_zeroes_extras() {
        let m = Measurement::basic(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.departures, 0);
        assert_eq!(m.conflicts_per_txn, 0.0);
        assert_eq!(m.performance, 3.0);
        assert_eq!(m.observed_mpl, 4.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PerfIndicator::Throughput.name(), "throughput");
        assert_eq!(PerfIndicator::NegatedConflictRate.name(), "neg-conflicts");
    }
}
