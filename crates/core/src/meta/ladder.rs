//! Threshold-ladder policies: escalate/de-escalate along an ordered
//! candidate list when a smoothed contention signal crosses a band.
//!
//! The candidate order is semantic: index 0 is the protocol for the
//! *calmest* workload, the last index for the most contended one (e.g.
//! `[certification, 2pl]`: optimistic while conflicts are rare, blocking
//! once wasted restarts dominate). The policy climbs one rung when the
//! EWMA'd signal exceeds `threshold * (1 + hysteresis)` and descends one
//! rung when it falls below `threshold * (1 - hysteresis)` — the dead
//! band between the two edges is what absorbs the signal discontinuity a
//! protocol swap itself causes (each protocol counts conflicts under its
//! own convention).

use crate::estimator::Ewma;

use super::{GuardParams, MetaObservation, MetaPolicy, SwitchGuard};

/// Which contention signal a ladder policy watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LadderSignal {
    /// Mean data conflicts per committed transaction.
    ConflictsPerTxn,
    /// Aborted runs / finished runs (the restart rate).
    AbortRatio,
}

/// The shared ladder machinery behind [`ConflictThreshold`] and
/// [`RestartRate`].
#[derive(Debug, Clone)]
struct Ladder {
    signal: LadderSignal,
    candidates: usize,
    threshold: f64,
    ewma: Ewma,
    guard: SwitchGuard,
}

impl Ladder {
    fn new(
        signal: LadderSignal,
        candidates: usize,
        threshold: f64,
        ewma_weight: f64,
        guard: GuardParams,
    ) -> Self {
        assert!(candidates >= 2, "a ladder needs at least two candidates");
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "threshold must be positive"
        );
        Ladder {
            signal,
            candidates,
            threshold,
            ewma: Ewma::new(ewma_weight),
            guard: SwitchGuard::new(guard),
        }
    }

    fn decide(&mut self, active: usize, obs: &MetaObservation) -> Option<usize> {
        debug_assert!(active < self.candidates);
        // Cooldown: the interval straddles the swap (drain dip, cold
        // protocol state) — discard it entirely instead of smoothing the
        // transient into the signal.
        if self.guard.settling(obs.at_ms) {
            return None;
        }
        let raw = match self.signal {
            LadderSignal::ConflictsPerTxn => obs.conflicts_per_txn,
            LadderSignal::AbortRatio => obs.abort_ratio,
        };
        let v = self.ewma.update(raw);
        if !self.guard.may_switch(obs.at_ms) {
            return None;
        }
        let h = self.guard.params().hysteresis;
        let target = if v > self.threshold * (1.0 + h) && active + 1 < self.candidates {
            active + 1
        } else if v < self.threshold * (1.0 - h) && active > 0 {
            active - 1
        } else {
            return None;
        };
        self.guard.note_switch(obs.at_ms);
        // The new protocol reports the signal under its own convention;
        // forget the old protocol's history rather than blending the two.
        self.ewma.reset();
        Some(target)
    }

    fn reset(&mut self) {
        self.ewma.reset();
        self.guard.reset();
    }
}

/// Threshold-with-hysteresis on the EWMA'd conflict ratio (conflicts per
/// committed transaction) — the signal Iyer's rule of thumb bounds,
/// turned into a protocol-selection ladder.
#[derive(Debug, Clone)]
pub struct ConflictThreshold {
    ladder: Ladder,
}

impl ConflictThreshold {
    /// Creates the policy over `candidates` ordered rungs. `threshold`
    /// is the centre of the conflict-ratio band, `ewma_weight ∈ (0, 1]`
    /// the smoothing weight on new observations.
    pub fn new(candidates: usize, threshold: f64, ewma_weight: f64, guard: GuardParams) -> Self {
        ConflictThreshold {
            ladder: Ladder::new(
                LadderSignal::ConflictsPerTxn,
                candidates,
                threshold,
                ewma_weight,
                guard,
            ),
        }
    }
}

impl MetaPolicy for ConflictThreshold {
    fn name(&self) -> &'static str {
        "conflict-threshold"
    }

    fn candidate_count(&self) -> usize {
        self.ladder.candidates
    }

    fn decide(&mut self, active: usize, obs: &MetaObservation) -> Option<usize> {
        self.ladder.decide(active, obs)
    }

    fn note_swap_complete(&mut self, completed_at_ms: f64) {
        self.ladder.guard.note_swap_complete(completed_at_ms);
    }

    fn reset(&mut self) {
        self.ladder.reset();
    }
}

/// The same ladder driven by the EWMA'd restart (abort) ratio: escalate
/// when the fraction of runs that abort and restart crosses the band.
/// Restart work is what thrashes an optimistic protocol, so this signal
/// reacts to wasted execution rather than raw conflict counts.
#[derive(Debug, Clone)]
pub struct RestartRate {
    ladder: Ladder,
}

impl RestartRate {
    /// Creates the policy; `threshold ∈ (0, 1)` is the centre of the
    /// abort-ratio band.
    pub fn new(candidates: usize, threshold: f64, ewma_weight: f64, guard: GuardParams) -> Self {
        assert!(threshold < 1.0, "an abort-ratio threshold must be < 1");
        RestartRate {
            ladder: Ladder::new(
                LadderSignal::AbortRatio,
                candidates,
                threshold,
                ewma_weight,
                guard,
            ),
        }
    }
}

impl MetaPolicy for RestartRate {
    fn name(&self) -> &'static str {
        "restart-rate"
    }

    fn candidate_count(&self) -> usize {
        self.ladder.candidates
    }

    fn decide(&mut self, active: usize, obs: &MetaObservation) -> Option<usize> {
        self.ladder.decide(active, obs)
    }

    fn note_swap_complete(&mut self, completed_at_ms: f64) {
        self.ladder.guard.note_swap_complete(completed_at_ms);
    }

    fn reset(&mut self) {
        self.ladder.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::super::obs_at;
    use super::*;

    fn guard(dwell: f64, cooldown: f64, hysteresis: f64) -> GuardParams {
        GuardParams {
            min_dwell_ms: dwell,
            cooldown_ms: cooldown,
            hysteresis,
        }
    }

    #[test]
    fn escalates_and_deescalates_across_the_band() {
        let mut p = ConflictThreshold::new(2, 1.0, 1.0, guard(0.0, 0.0, 0.2));
        // Calm: well below the lower edge — no move off rung 0.
        assert_eq!(p.decide(0, &obs_at(1_000.0, 0.1)), None);
        // Hot: above the upper edge (1.2) — climb.
        assert_eq!(p.decide(0, &obs_at(2_000.0, 2.0)), Some(1));
        // Already at the top rung: stays.
        assert_eq!(p.decide(1, &obs_at(3_000.0, 5.0)), None);
        // Calm again: below the lower edge (0.8) — descend.
        assert_eq!(p.decide(1, &obs_at(4_000.0, 0.1)), Some(0));
    }

    #[test]
    fn dead_band_absorbs_mid_range_signals() {
        let mut p = ConflictThreshold::new(2, 1.0, 1.0, guard(0.0, 0.0, 0.5));
        for (i, v) in [0.6, 1.4, 0.9, 1.2].into_iter().enumerate() {
            assert_eq!(
                p.decide(0, &obs_at(1_000.0 * (i + 1) as f64, v)),
                None,
                "in-band value {v} caused a switch"
            );
        }
    }

    /// The dwell guard: no switch may occur within `min_dwell_ms` of the
    /// previous one, however loud the signal — the anti-oscillation
    /// contract the adaptive scenarios rely on.
    #[test]
    fn no_switch_within_min_dwell_of_the_previous_one() {
        let dwell = 10_000.0;
        let mut p = ConflictThreshold::new(3, 1.0, 1.0, guard(dwell, 0.0, 0.0));
        let mut active = 0usize;
        let mut switch_times = Vec::new();
        // A violently alternating signal, sampled every second.
        for i in 1..200 {
            let t = 1_000.0 * f64::from(i);
            let v = if (i / 3) % 2 == 0 { 50.0 } else { 0.001 };
            if let Some(next) = p.decide(active, &obs_at(t, v)) {
                switch_times.push(t);
                active = next;
            }
        }
        assert!(
            switch_times.len() >= 2,
            "the scenario must actually switch to prove anything"
        );
        assert!(
            switch_times[0] >= dwell,
            "first switch at {} fired before the initial dwell",
            switch_times[0]
        );
        for w in switch_times.windows(2) {
            assert!(
                w[1] - w[0] >= dwell,
                "switches at {} and {} violate min_dwell",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn cooldown_discards_post_switch_observations() {
        let mut p = ConflictThreshold::new(2, 1.0, 1.0, guard(0.0, 5_000.0, 0.0));
        // t=1s..4s sit inside the initial cooldown: discarded.
        assert_eq!(p.decide(0, &obs_at(1_000.0, 100.0)), None);
        assert_eq!(p.decide(0, &obs_at(4_999.0, 100.0)), None);
        // First observation past the cooldown acts.
        assert_eq!(p.decide(0, &obs_at(5_000.0, 100.0)), Some(1));
        // And the switch re-arms the cooldown.
        assert_eq!(p.decide(1, &obs_at(6_000.0, 0.0)), None);
        assert_eq!(p.decide(1, &obs_at(11_000.0, 0.0)), Some(0));
    }

    /// A drain that outlasts the cooldown must not leak the post-swap
    /// transient into the signal: `note_swap_complete` re-anchors the
    /// guards at the swap, so the cooldown counts from there.
    #[test]
    fn swap_completion_reanchors_cooldown_and_dwell() {
        let mut p = ConflictThreshold::new(2, 1.0, 1.0, guard(4_000.0, 2_000.0, 0.0));
        // Decision at t=5s; the drain takes until t=8s.
        assert_eq!(p.decide(0, &obs_at(5_000.0, 100.0)), Some(1));
        p.note_swap_complete(8_000.0);
        // t=9s is within the re-anchored cooldown (8s + 2s): discarded.
        assert_eq!(p.decide(1, &obs_at(9_000.0, 0.0)), None);
        // And the dwell counts from the swap too: nothing before 12s.
        assert_eq!(p.decide(1, &obs_at(11_000.0, 0.0)), None);
        assert_eq!(p.decide(1, &obs_at(12_000.0, 0.0)), Some(0));
    }

    #[test]
    fn zero_guards_flap_freely() {
        // The ablation baseline: with no dwell, no cooldown and no
        // hysteresis, an alternating signal flips the ladder every
        // interval — the pathology the guards exist to prevent.
        let mut p = ConflictThreshold::new(2, 1.0, 1.0, guard(0.0, 0.0, 0.0));
        let mut active = 0usize;
        let mut switches = 0;
        for i in 1..100 {
            let v = if i % 2 == 0 { 10.0 } else { 0.001 };
            if let Some(next) = p.decide(active, &obs_at(1_000.0 * f64::from(i), v)) {
                active = next;
                switches += 1;
            }
        }
        assert!(switches > 40, "expected heavy flapping, saw {switches}");
    }

    #[test]
    fn restart_rate_watches_abort_ratio() {
        let mut p = RestartRate::new(2, 0.3, 1.0, guard(0.0, 0.0, 0.0));
        let mut calm = obs_at(1_000.0, 0.0);
        calm.abort_ratio = 0.05;
        assert_eq!(p.decide(0, &calm), None);
        let mut hot = obs_at(2_000.0, 0.0);
        hot.abort_ratio = 0.6;
        assert_eq!(p.decide(0, &hot), Some(1));
    }

    #[test]
    fn decisions_are_deterministic_across_instances() {
        let mk = || ConflictThreshold::new(3, 0.8, 0.4, guard(4_000.0, 2_000.0, 0.3));
        let mut a = mk();
        let mut b = mk();
        let mut active_a = 0usize;
        let mut active_b = 0usize;
        for i in 1u64..300 {
            let t = 500.0 * i as f64;
            let v = ((i * 2_654_435_761) % 97) as f64 / 24.0;
            let da = a.decide(active_a, &obs_at(t, v));
            let db = b.decide(active_b, &obs_at(t, v));
            assert_eq!(da, db, "divergence at step {i}");
            if let Some(n) = da {
                active_a = n;
                active_b = n;
            }
        }
    }
}
