//! Meta-control: closed-loop concurrency-control *protocol* selection.
//!
//! The paper's load controller adapts the MPL bound to measured conflict;
//! this layer sits one level above it and adapts the *concurrency-control
//! protocol itself* from the same per-interval conflict state, in the
//! spirit of O|R|P|E (Lessner et al., arXiv:2308.09121): keep a small set
//! of candidate protocols, watch the measured contention online, and
//! switch to the candidate the current workload favours. Bartolini et
//! al.'s self-* overload control (arXiv:0802.2543) supplies the stability
//! discipline: every policy here is wrapped in dwell-time, cooldown and
//! hysteresis guards so that a noisy conflict signal — or the signal
//! *discontinuity* the switch itself causes (each protocol counts
//! conflicts differently) — cannot drive protocol flapping.
//!
//! This crate knows nothing about concrete protocols: a policy picks
//! among `n` *candidate indices*. The simulation engine (or a real
//! server) maps indices to protocols and performs the actual
//! drain-and-swap; see `alc_tpsim::engine::Simulator::set_adaptive_cc`.
//!
//! # The pieces
//!
//! * [`MetaObservation`] — one measurement interval's conflict state:
//!   conflicts per commit, abort ratio, throughput, gate queue depth.
//! * [`MetaPolicy`] — the decision trait: one call per interval, returns
//!   `Some(target)` to request a protocol switch.
//! * [`SwitchGuard`] / [`GuardParams`] — the shared anti-oscillation
//!   guards (minimum dwell time between switches, post-switch cooldown
//!   during which observations are discarded, relative hysteresis band).
//! * [`ConflictThreshold`] — escalates along an ordered candidate ladder
//!   when the EWMA'd conflict ratio crosses a threshold band.
//! * [`RestartRate`] — the same ladder driven by the abort (restart)
//!   ratio instead of the conflict ratio.
//! * [`ShadowScore`] — O|R|P|E-style running per-candidate score
//!   estimates of delivered throughput; switches to the best-scoring
//!   candidate when it beats the active one by the hysteresis margin.
//!
//! All policies are pure functions of their observation sequence — no
//! randomness, no clocks — so adaptive runs stay exactly as deterministic
//! and replayable as scheduled ones.

mod ladder;
mod shadow;

pub use ladder::{ConflictThreshold, RestartRate};
pub use shadow::ShadowScore;

/// One measurement interval's worth of conflict state — everything a
/// protocol-selection policy may consume. Built by the engine from the
/// same [`crate::measure::Measurement`] the MPL controller sees, plus
/// the gate queue depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaObservation {
    /// End of the measurement interval, ms of system time.
    pub at_ms: f64,
    /// Interval length, ms.
    pub interval_ms: f64,
    /// Mean data conflicts per committed transaction in the interval —
    /// the primary signal (what Iyer's rule bounds, what the paper's
    /// Figure 7 sweeps).
    pub conflicts_per_txn: f64,
    /// Aborted runs / finished runs in the interval (the restart rate).
    pub abort_ratio: f64,
    /// Committed transactions per second in the interval.
    pub throughput_per_s: f64,
    /// Transactions queued at the admission gate at harvest time.
    pub gate_queue: usize,
    /// Time-averaged observed MPL over the interval.
    pub observed_mpl: f64,
}

/// The shared anti-oscillation guard parameters. The switch itself
/// perturbs the measured signal (drain dip, fresh protocol state, a
/// different conflict-counting convention), so naive threshold policies
/// flap; these three knobs are the remedy the ablation scenario sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardParams {
    /// Minimum time between two switch decisions, ms. Also applies from
    /// run start: the first switch cannot fire before `min_dwell_ms`.
    pub min_dwell_ms: f64,
    /// Post-switch settling window, ms: observations inside it are
    /// discarded entirely (they measure the drain and the fresh
    /// protocol's cold state, not the workload).
    pub cooldown_ms: f64,
    /// Relative dead band. Ladder policies escalate above
    /// `threshold * (1 + hysteresis)` and de-escalate below
    /// `threshold * (1 - hysteresis)`; the shadow policy requires a
    /// challenger to beat the active score by the same factor.
    pub hysteresis: f64,
}

impl GuardParams {
    /// Validates the parameter ranges (dwell/cooldown non-negative,
    /// hysteresis in `[0, 1)`).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.min_dwell_ms.is_nan() || self.min_dwell_ms < 0.0 {
            return Err("min_dwell_ms must be >= 0");
        }
        if self.cooldown_ms.is_nan() || self.cooldown_ms < 0.0 {
            return Err("cooldown_ms must be >= 0");
        }
        if !(0.0..1.0).contains(&self.hysteresis) {
            return Err("hysteresis must lie in [0, 1)");
        }
        Ok(())
    }
}

/// Tracks the time of the last switch and enforces the dwell/cooldown
/// guards. Run start counts as a switch at t = 0, so a freshly started
/// system settles before the first decision just like a freshly swapped
/// protocol does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchGuard {
    params: GuardParams,
    last_switch_ms: f64,
}

impl SwitchGuard {
    /// Creates a guard; panics on invalid parameters (the spec layer
    /// validates first and reports a proper error).
    pub fn new(params: GuardParams) -> Self {
        params.validate().expect("invalid guard parameters");
        SwitchGuard {
            params,
            last_switch_ms: 0.0,
        }
    }

    /// The guard parameters in force.
    pub fn params(&self) -> GuardParams {
        self.params
    }

    /// True while the post-switch cooldown holds at `now_ms`:
    /// observations should be discarded, not smoothed in.
    pub fn settling(&self, now_ms: f64) -> bool {
        now_ms - self.last_switch_ms < self.params.cooldown_ms
    }

    /// True when a switch decision is permitted at `now_ms` (the dwell
    /// time since the previous switch has fully elapsed).
    pub fn may_switch(&self, now_ms: f64) -> bool {
        now_ms - self.last_switch_ms >= self.params.min_dwell_ms
    }

    /// Records a committed switch decision at `now_ms`.
    pub fn note_switch(&mut self, now_ms: f64) {
        self.last_switch_ms = now_ms;
    }

    /// Re-anchors the guards at the swap's *completion*: a drain can
    /// outlast the cooldown measured from the decision, so dwell and
    /// cooldown count from whichever is later.
    pub fn note_swap_complete(&mut self, at_ms: f64) {
        self.last_switch_ms = self.last_switch_ms.max(at_ms);
    }

    /// Restores the initial state.
    pub fn reset(&mut self) {
        self.last_switch_ms = 0.0;
    }
}

/// A protocol-selection policy over `n` candidates.
///
/// The engine calls [`MetaPolicy::decide`] once per measurement interval
/// (never while a previous switch is still draining). Returning
/// `Some(target)` with `target != active` is a *committed* decision: the
/// engine will perform the drain-and-swap, so the policy must update its
/// own guard state before returning. Policies must be deterministic
/// functions of their observation sequence.
pub trait MetaPolicy: Send {
    /// Policy name for reports and traces.
    fn name(&self) -> &'static str;

    /// Number of candidates the policy selects among.
    fn candidate_count(&self) -> usize;

    /// Consumes one interval observation with `active` currently in
    /// force; returns the candidate to switch to, if any.
    fn decide(&mut self, active: usize, obs: &MetaObservation) -> Option<usize>;

    /// Notifies the policy that the requested swap *completed* at
    /// `completed_at_ms` (the end of the drain). A decision only starts
    /// the drain; in-flight transactions may take a while to clear, and
    /// the first samples after the swap measure the drain dip and the
    /// fresh protocol's cold state. Implementations should re-anchor
    /// their dwell/cooldown guards here so the cooldown counts from the
    /// swap, not from the decision. Default: no-op.
    fn note_swap_complete(&mut self, completed_at_ms: f64) {
        let _ = completed_at_ms;
    }

    /// Restores the initial state (used between experiment repetitions).
    fn reset(&mut self);
}

#[cfg(test)]
pub(crate) fn obs_at(at_ms: f64, conflicts: f64) -> MetaObservation {
    MetaObservation {
        at_ms,
        interval_ms: 1000.0,
        conflicts_per_txn: conflicts,
        abort_ratio: (conflicts / (1.0 + conflicts)).min(1.0),
        throughput_per_s: 100.0 / (1.0 + conflicts),
        gate_queue: 0,
        observed_mpl: 10.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_enforces_dwell_and_cooldown() {
        let mut g = SwitchGuard::new(GuardParams {
            min_dwell_ms: 10_000.0,
            cooldown_ms: 3_000.0,
            hysteresis: 0.2,
        });
        // Run start counts as a switch at t = 0.
        assert!(g.settling(2_999.0));
        assert!(!g.settling(3_000.0));
        assert!(!g.may_switch(9_999.0));
        assert!(g.may_switch(10_000.0));
        g.note_switch(10_000.0);
        assert!(g.settling(12_000.0));
        assert!(!g.may_switch(19_999.0));
        assert!(g.may_switch(20_000.0));
        g.reset();
        assert!(!g.may_switch(5_000.0));
    }

    #[test]
    fn guard_params_validate_ranges() {
        for bad in [
            GuardParams {
                min_dwell_ms: -1.0,
                cooldown_ms: 0.0,
                hysteresis: 0.1,
            },
            GuardParams {
                min_dwell_ms: 0.0,
                cooldown_ms: f64::NAN,
                hysteresis: 0.1,
            },
            GuardParams {
                min_dwell_ms: 0.0,
                cooldown_ms: 0.0,
                hysteresis: 1.0,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} accepted");
        }
        assert!(GuardParams {
            min_dwell_ms: 0.0,
            cooldown_ms: 0.0,
            hysteresis: 0.0,
        }
        .validate()
        .is_ok());
    }
}
