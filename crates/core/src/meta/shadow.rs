//! Shadow scoring: O|R|P|E-style running per-candidate score estimates.
//!
//! Where the ladder policies react to a *signal level*, this policy
//! compares the candidates' *delivered performance* directly: each
//! candidate keeps a running score — an EWMA of the committed throughput
//! measured while it was active — and the policy switches to the
//! best-scoring candidate once it beats the active one by the hysteresis
//! margin. Candidates that have never run are optimistic (unknown beats
//! known), so the policy explores every rung once, in index order, each
//! visit gated by the dwell guard; after that it settles on the winner
//! and only moves again when the measured scores cross.
//!
//! Scores of inactive candidates are *shadow* state: they are not
//! updated while another protocol runs, so a long-stale score can be
//! wrong about the current workload. The dwell guard bounds how often
//! that staleness can cost a switch; refreshing shadows by periodic
//! probing is the natural next step (see ROADMAP).

use crate::estimator::Ewma;

use super::{GuardParams, MetaObservation, MetaPolicy, SwitchGuard};

/// The shadow-scoring policy.
#[derive(Debug, Clone)]
pub struct ShadowScore {
    scores: Vec<Ewma>,
    guard: SwitchGuard,
}

impl ShadowScore {
    /// Creates the policy over `candidates` protocols with smoothing
    /// weight `ewma_weight ∈ (0, 1]` on each interval's throughput.
    pub fn new(candidates: usize, ewma_weight: f64, guard: GuardParams) -> Self {
        assert!(candidates >= 2, "shadow scoring needs at least two candidates");
        ShadowScore {
            scores: (0..candidates).map(|_| Ewma::new(ewma_weight)).collect(),
            guard: SwitchGuard::new(guard),
        }
    }

    /// The current score estimate of each candidate (`None` = untried).
    pub fn scores(&self) -> Vec<Option<f64>> {
        self.scores.iter().map(Ewma::value).collect()
    }
}

impl MetaPolicy for ShadowScore {
    fn name(&self) -> &'static str {
        "shadow-score"
    }

    fn candidate_count(&self) -> usize {
        self.scores.len()
    }

    fn decide(&mut self, active: usize, obs: &MetaObservation) -> Option<usize> {
        debug_assert!(active < self.scores.len());
        if self.guard.settling(obs.at_ms) {
            return None;
        }
        let mine = self.scores[active].update(obs.throughput_per_s);
        if !self.guard.may_switch(obs.at_ms) {
            return None;
        }
        // Pick the challenger: the first untried candidate in index
        // order (optimism under uncertainty), else the best shadow
        // score. Ties keep the lowest index — fully deterministic.
        let challenger = match (0..self.scores.len()).find(|&i| self.scores[i].value().is_none())
        {
            Some(untried) => untried,
            None => {
                let mut best = 0usize;
                for i in 1..self.scores.len() {
                    let v = self.scores[i].value().expect("all tried");
                    if v > self.scores[best].value().expect("all tried") {
                        best = i;
                    }
                }
                best
            }
        };
        if challenger == active {
            return None;
        }
        let margin = 1.0 + self.guard.params().hysteresis;
        let wins = match self.scores[challenger].value() {
            None => true, // untried: optimistic
            Some(theirs) => theirs > mine * margin,
        };
        if !wins {
            return None;
        }
        self.guard.note_switch(obs.at_ms);
        Some(challenger)
    }

    fn note_swap_complete(&mut self, completed_at_ms: f64) {
        self.guard.note_swap_complete(completed_at_ms);
    }

    fn reset(&mut self) {
        for s in &mut self.scores {
            s.reset();
        }
        self.guard.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::super::obs_at;
    use super::*;

    fn guard(dwell: f64, cooldown: f64, hysteresis: f64) -> GuardParams {
        GuardParams {
            min_dwell_ms: dwell,
            cooldown_ms: cooldown,
            hysteresis,
        }
    }

    fn obs_tp(at_ms: f64, throughput: f64) -> MetaObservation {
        MetaObservation {
            throughput_per_s: throughput,
            ..obs_at(at_ms, 0.5)
        }
    }

    #[test]
    fn explores_untried_candidates_in_index_order() {
        let mut p = ShadowScore::new(3, 1.0, guard(0.0, 0.0, 0.1));
        assert_eq!(p.decide(0, &obs_tp(1_000.0, 100.0)), Some(1));
        assert_eq!(p.decide(1, &obs_tp(2_000.0, 50.0)), Some(2));
        // All tried now: candidate 0 scored best, so return to it.
        assert_eq!(p.decide(2, &obs_tp(3_000.0, 10.0)), Some(0));
        assert_eq!(p.scores(), vec![Some(100.0), Some(50.0), Some(10.0)]);
    }

    #[test]
    fn settles_on_the_winner_until_scores_cross() {
        let mut p = ShadowScore::new(2, 1.0, guard(0.0, 0.0, 0.2));
        assert_eq!(p.decide(0, &obs_tp(1_000.0, 100.0)), Some(1));
        // Candidate 1 underperforms: its fresh score loses to 0's shadow.
        assert_eq!(p.decide(1, &obs_tp(2_000.0, 60.0)), Some(0));
        // Back on 0, still delivering: stays (1's shadow of 60 cannot
        // beat 100 * 1.2).
        assert_eq!(p.decide(0, &obs_tp(3_000.0, 100.0)), None);
        // 0 collapses far enough that the stale shadow wins the margin.
        assert_eq!(p.decide(0, &obs_tp(4_000.0, 20.0)), Some(1));
    }

    #[test]
    fn hysteresis_margin_blocks_marginal_challengers() {
        let mut p = ShadowScore::new(2, 1.0, guard(0.0, 0.0, 0.5));
        assert_eq!(p.decide(0, &obs_tp(1_000.0, 100.0)), Some(1));
        assert_eq!(p.decide(1, &obs_tp(2_000.0, 120.0)), None,);
        // 100 (shadow of 0) < 120 * 1.5: not worth the swap.
        assert_eq!(p.decide(1, &obs_tp(3_000.0, 120.0)), None);
    }

    #[test]
    fn dwell_gates_exploration() {
        let mut p = ShadowScore::new(3, 1.0, guard(10_000.0, 0.0, 0.1));
        // Untried candidates exist, but the initial dwell holds.
        assert_eq!(p.decide(0, &obs_tp(1_000.0, 100.0)), None);
        assert_eq!(p.decide(0, &obs_tp(9_000.0, 100.0)), None);
        assert_eq!(p.decide(0, &obs_tp(10_000.0, 100.0)), Some(1));
        // Next exploration waits out the dwell again.
        assert_eq!(p.decide(1, &obs_tp(11_000.0, 100.0)), None);
        assert_eq!(p.decide(1, &obs_tp(20_000.0, 100.0)), Some(2));
    }

    #[test]
    fn cooldown_discards_post_switch_intervals() {
        let mut p = ShadowScore::new(2, 1.0, guard(0.0, 2_000.0, 0.0));
        // Inside the initial cooldown: nothing is scored.
        assert_eq!(p.decide(0, &obs_tp(1_000.0, 5.0)), None);
        assert_eq!(p.scores(), vec![None, None]);
        // Past it, the first scored interval triggers exploration.
        assert_eq!(p.decide(0, &obs_tp(2_500.0, 100.0)), Some(1));
        // The drain dip right after the swap is discarded, not scored.
        assert_eq!(p.decide(1, &obs_tp(3_000.0, 1.0)), None);
        assert_eq!(p.scores()[1], None);
    }

    #[test]
    fn deterministic_across_instances() {
        let mk = || ShadowScore::new(3, 0.5, guard(3_000.0, 1_000.0, 0.2));
        let (mut a, mut b) = (mk(), mk());
        let (mut ia, mut ib) = (0usize, 0usize);
        for i in 1u64..200 {
            let t = 1_000.0 * i as f64;
            let tp = ((i * 40_503) % 131) as f64;
            let da = a.decide(ia, &obs_tp(t, tp));
            assert_eq!(da, b.decide(ib, &obs_tp(t, tp)), "step {i}");
            if let Some(n) = da {
                ia = n;
                ib = n;
            }
        }
    }
}
