//! A hybrid of the two §4 algorithms: Incremental Steps for exploration,
//! Parabola Approximation for precision.
//!
//! The paper's evaluation (§9) shows a complementary pair: IS "reacts very
//! quickly … but has serious problems to adjust correctly", while PA
//! "needs some more time to respond but tracks the optimum more accurately
//! and reliably". [`Hybrid`] exploits that complementarity:
//!
//! 1. **Bootstrap (IS) phase.** The zig-zag climber owns the bound. Every
//!    measurement is *also* fed to the PA estimator
//!    ([`ParabolaApproximation::observe_only`]), so the IS excursions
//!    double as excitation for the least squares fit — better excitation,
//!    in fact, than PA's own warm-up ramp, because IS visits both flanks
//!    of the ridge.
//! 2. **Refine (PA) phase.** Once the estimator has absorbed enough
//!    samples *and* reports a concave fit, PA takes over at IS's current
//!    position and tracks the vertex.
//! 3. **Revert.** If PA's fit degenerates (upward-opening parabolas for
//!    `revert_after` consecutive intervals — the Fig. 7/8 pathologies), the
//!    hybrid falls back to a fresh IS phase seeded at the current bound,
//!    regenerating excitation until concavity returns.
//!
//! The result keeps IS's fast reaction to jumps without inheriting its
//! poor steady-state accuracy — an ablation the benches quantify
//! (`abl-hybrid`).

use super::{IncrementalSteps, IsParams, LoadController, PaParams, ParabolaApproximation};
use crate::estimator::quadratic::FitShape;
use crate::measure::Measurement;

/// Tuning parameters of the [`Hybrid`] controller.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HybridParams {
    /// Inner IS parameters (bootstrap phase).
    pub is: IsParams,
    /// Inner PA parameters (refine phase). `initial_bound`, `min_bound`
    /// and `max_bound` should agree with the IS ones; the constructor
    /// asserts the range does.
    pub pa: PaParams,
    /// Measurements the estimator must absorb before PA may take over.
    pub bootstrap_samples: u64,
    /// Unusable (convex) fits within the last `revert_window` refine
    /// intervals before the hybrid reverts to a fresh bootstrap. A
    /// windowed count, not a consecutive one: PA's own probing fallback
    /// alternates the fit shape, so pathology shows up as a *rate*.
    pub revert_after: u32,
    /// Length of the sliding window over fit shapes (≤ 64).
    pub revert_window: u32,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            is: IsParams::default(),
            pa: PaParams::default(),
            bootstrap_samples: 12,
            revert_after: 4,
            revert_window: 8,
        }
    }
}

/// Which phase currently owns the output bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridPhase {
    /// Incremental Steps is exploring; the estimator is learning along.
    Bootstrap,
    /// Parabola Approximation is tracking the vertex.
    Refine,
}

/// Diagnostic counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HybridDiagnostics {
    /// Bootstrap → refine hand-overs.
    pub promotions: u64,
    /// Refine → bootstrap reversions (PA pathology hits).
    pub reversions: u64,
}

/// IS-bootstrapped, PA-refined dynamic optimum search.
#[derive(Debug, Clone)]
pub struct Hybrid {
    params: HybridParams,
    is: IncrementalSteps,
    pa: ParabolaApproximation,
    phase: HybridPhase,
    phase_samples: u64,
    /// Bitmask of recent refine-phase fit shapes (1 = unusable), newest
    /// in the lowest bit.
    convex_history: u64,
    diagnostics: HybridDiagnostics,
}

impl Hybrid {
    /// Creates the controller; panics if the IS and PA bound ranges
    /// disagree (the phases must be interchangeable).
    pub fn new(params: HybridParams) -> Self {
        assert_eq!(
            (params.is.min_bound, params.is.max_bound),
            (params.pa.min_bound, params.pa.max_bound),
            "IS and PA must share the same [min_bound, max_bound] range"
        );
        assert!(params.bootstrap_samples >= 3, "the 3-parameter fit needs ≥ 3 samples");
        assert!(params.revert_after >= 1);
        assert!(
            (params.revert_after..=64).contains(&params.revert_window),
            "revert_window must lie in [revert_after, 64]"
        );
        Hybrid {
            is: IncrementalSteps::new(params.is),
            pa: ParabolaApproximation::new(params.pa),
            phase: HybridPhase::Bootstrap,
            phase_samples: 0,
            convex_history: 0,
            diagnostics: HybridDiagnostics::default(),
            params,
        }
    }

    /// The phase currently owning the output.
    pub fn phase(&self) -> HybridPhase {
        self.phase
    }

    /// Hand-over counters.
    pub fn diagnostics(&self) -> HybridDiagnostics {
        self.diagnostics
    }

    /// Read access to the inner PA (fit inspection in experiments).
    pub fn parabola(&self) -> &ParabolaApproximation {
        &self.pa
    }

    fn promote(&mut self) {
        // PA resumes exactly where IS stood; the estimator is already
        // trained from the bootstrap excursions.
        self.pa.set_base_bound(f64::from(self.is.current_bound()));
        self.phase = HybridPhase::Refine;
        self.phase_samples = 0;
        self.convex_history = 0;
        self.diagnostics.promotions += 1;
    }

    fn revert(&mut self) {
        // A fresh IS seeded at PA's current position regenerates
        // excitation around the (possibly moved) ridge.
        self.is = IncrementalSteps::new(IsParams {
            initial_bound: self.pa.current_bound(),
            ..self.params.is
        });
        self.phase = HybridPhase::Bootstrap;
        self.phase_samples = 0;
        self.convex_history = 0;
        self.diagnostics.reversions += 1;
    }
}

impl LoadController for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid-is-pa"
    }

    fn update(&mut self, m: &Measurement) -> u32 {
        self.phase_samples += 1;
        match self.phase {
            HybridPhase::Bootstrap => {
                let bound = self.is.update(m);
                self.pa.observe_only(m);
                if self.phase_samples >= self.params.bootstrap_samples
                    && matches!(self.pa.fit_shape(), FitShape::Concave { .. })
                {
                    self.promote();
                }
                bound
            }
            HybridPhase::Refine => {
                let bound = self.pa.update(m);
                let unusable = matches!(self.pa.fit_shape(), FitShape::Unusable);
                self.convex_history = (self.convex_history << 1) | u64::from(unusable);
                let window_mask = if self.params.revert_window == 64 {
                    u64::MAX
                } else {
                    (1u64 << self.params.revert_window) - 1
                };
                let recent = (self.convex_history & window_mask).count_ones();
                if self.phase_samples >= u64::from(self.params.revert_window)
                    && recent >= self.params.revert_after
                {
                    self.revert();
                    return self.is.current_bound();
                }
                bound
            }
        }
    }

    fn current_bound(&self) -> u32 {
        match self.phase {
            HybridPhase::Bootstrap => self.is.current_bound(),
            HybridPhase::Refine => self.pa.current_bound(),
        }
    }

    fn reset(&mut self) {
        self.is = IncrementalSteps::new(self.params.is);
        self.pa.reset();
        self.phase = HybridPhase::Bootstrap;
        self.phase_samples = 0;
        self.convex_history = 0;
        self.diagnostics = HybridDiagnostics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alc_analytic::surface::{RidgeSurface, Schedule, Surface};

    fn params_500() -> HybridParams {
        HybridParams {
            is: IsParams {
                initial_bound: 10,
                max_bound: 500,
                beta: 2.0,
                ..IsParams::default()
            },
            pa: PaParams {
                initial_bound: 10,
                max_bound: 500,
                ..PaParams::default()
            },
            ..HybridParams::default()
        }
    }

    fn drive<S: Surface>(
        ctrl: &mut Hybrid,
        surface: &S,
        steps: usize,
        interval_ms: f64,
    ) -> Vec<(f64, u32)> {
        let mut traj = Vec::with_capacity(steps);
        let mut bound = ctrl.current_bound();
        for i in 0..steps {
            let t = i as f64 * interval_ms;
            let n = f64::from(bound);
            let perf = surface.performance(n, t);
            bound = ctrl.update(&Measurement::basic(t + interval_ms, interval_ms, perf, n));
            traj.push((t, bound));
        }
        traj
    }

    fn tail_mean(traj: &[(f64, u32)], from: usize) -> f64 {
        let tail = &traj[from..];
        tail.iter().map(|&(_, b)| f64::from(b)).sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn starts_in_bootstrap_then_promotes() {
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = Hybrid::new(params_500());
        assert_eq!(ctrl.phase(), HybridPhase::Bootstrap);
        drive(&mut ctrl, &surface, 100, 1000.0);
        assert_eq!(ctrl.phase(), HybridPhase::Refine);
        assert_eq!(ctrl.diagnostics().promotions, 1);
    }

    #[test]
    fn converges_to_stationary_optimum() {
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = Hybrid::new(params_500());
        let traj = drive(&mut ctrl, &surface, 300, 1000.0);
        let settled = tail_mean(&traj, 200);
        assert!(
            (settled - 150.0).abs() < 25.0,
            "settled at {settled}, optimum 150"
        );
    }

    #[test]
    fn tracks_jump_of_the_optimum() {
        let surface = RidgeSurface {
            position: Schedule::Jump {
                at: 400_000.0,
                before: 300.0,
                after: 120.0,
            },
            height: Schedule::Constant(60.0),
            steepness: 2.0,
        };
        let mut ctrl = Hybrid::new(params_500());
        let traj = drive(&mut ctrl, &surface, 900, 1000.0);
        let before = tail_mean(&traj[..400], 300);
        let after = tail_mean(&traj, 700);
        assert!((before - 300.0).abs() < 60.0, "pre-jump mean {before}");
        assert!((after - 120.0).abs() < 50.0, "post-jump mean {after}");
    }

    #[test]
    fn convex_data_never_promotes() {
        // Measurements straddling a performance *minimum* keep every
        // honest fit convex: the hybrid must refuse the hand-over to PA
        // and keep exploring with IS.
        let mut ctrl = Hybrid::new(HybridParams {
            bootstrap_samples: 6,
            revert_after: 3,
            ..params_500()
        });
        let cycle = [40.0f64, 100.0, 160.0];
        for i in 0..120usize {
            let n = cycle[i % cycle.len()];
            let perf = (n - 100.0).abs(); // V shape
            ctrl.update(&Measurement::basic(i as f64, 1.0, perf, n));
        }
        assert_eq!(ctrl.phase(), HybridPhase::Bootstrap);
        assert_eq!(ctrl.diagnostics().promotions, 0);
    }

    #[test]
    fn shape_degradation_after_promotion_reverts() {
        // Figure 8's scenario at the hybrid level: a healthy ridge long
        // enough to promote into the refine phase, then the surface
        // degenerates into a V — the fits turn convex and the hybrid must
        // fall back to a fresh IS bootstrap.
        let mut ctrl = Hybrid::new(HybridParams {
            bootstrap_samples: 6,
            revert_after: 3,
            ..params_500()
        });
        let cycle = [40.0f64, 100.0, 160.0];
        for i in 0..200usize {
            let n = cycle[i % cycle.len()];
            let perf = if i < 60 {
                100.0 - 0.005 * (n - 100.0) * (n - 100.0) // concave ridge
            } else {
                (n - 100.0).abs() // V: convex
            };
            ctrl.update(&Measurement::basic(i as f64, 1.0, perf, n));
        }
        let d = ctrl.diagnostics();
        assert!(d.promotions >= 1, "never promoted on the healthy ridge: {d:?}");
        assert!(d.reversions >= 1, "pathology never reverted: {d:?}");
    }

    #[test]
    fn bounds_respected_in_both_phases() {
        let surface = RidgeSurface::stationary(900.0, 100.0, 2.0); // beyond max
        let mut ctrl = Hybrid::new(params_500());
        let traj = drive(&mut ctrl, &surface, 400, 1000.0);
        for &(_, b) in &traj {
            assert!((1..=500).contains(&b), "bound {b} escaped [1,500]");
        }
    }

    #[test]
    fn reset_restores_bootstrap() {
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = Hybrid::new(params_500());
        drive(&mut ctrl, &surface, 100, 1000.0);
        ctrl.reset();
        assert_eq!(ctrl.phase(), HybridPhase::Bootstrap);
        assert_eq!(ctrl.current_bound(), 10);
        assert_eq!(ctrl.diagnostics(), HybridDiagnostics::default());
    }

    #[test]
    #[should_panic(expected = "must share")]
    fn rejects_mismatched_ranges() {
        Hybrid::new(HybridParams {
            is: IsParams {
                max_bound: 100,
                ..IsParams::default()
            },
            pa: PaParams {
                max_bound: 200,
                ..PaParams::default()
            },
            ..HybridParams::default()
        });
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Hybrid::new(params_500()).name(), "hybrid-is-pa");
    }
}
