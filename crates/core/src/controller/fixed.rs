//! The non-adaptive baselines of §1.
//!
//! * [`Unlimited`] — solution 1, "do nothing": no admission limit at all.
//!   With it the simulator reproduces the uncontrolled thrashing curve of
//!   Figure 12 ("without control").
//! * [`FixedBound`] — solution 2, the static MPL knob "that is tuned by
//!   the system administrator when the system is installed or started up
//!   … usually found in commercial database systems". Right until the
//!   workload moves.

use super::LoadController;
use crate::measure::Measurement;

/// No load control: the bound is permanently `u32::MAX`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unlimited;

impl LoadController for Unlimited {
    fn name(&self) -> &'static str {
        "unlimited"
    }

    fn update(&mut self, _m: &Measurement) -> u32 {
        u32::MAX
    }

    fn current_bound(&self) -> u32 {
        u32::MAX
    }

    fn reset(&mut self) {}
}

/// A static MPL bound fixed at construction.
#[derive(Debug, Clone, Copy)]
pub struct FixedBound(u32);

impl FixedBound {
    /// Creates a fixed bound; panics on zero (a zero MPL admits nothing,
    /// which is never what an operator means).
    pub fn new(bound: u32) -> Self {
        assert!(bound >= 1, "a fixed MPL bound must admit at least one txn");
        FixedBound(bound)
    }
}

impl LoadController for FixedBound {
    fn name(&self) -> &'static str {
        "fixed-bound"
    }

    fn update(&mut self, _m: &Measurement) -> u32 {
        self.0
    }

    fn current_bound(&self) -> u32 {
        self.0
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_limits() {
        let mut c = Unlimited;
        let m = Measurement::basic(0.0, 1.0, 0.0, 0.0);
        assert_eq!(c.update(&m), u32::MAX);
        assert_eq!(c.current_bound(), u32::MAX);
        assert_eq!(c.name(), "unlimited");
    }

    #[test]
    fn fixed_stays_fixed() {
        let mut c = FixedBound::new(64);
        let m = Measurement::basic(0.0, 1.0, 123.0, 99.0);
        for _ in 0..5 {
            assert_eq!(c.update(&m), 64);
        }
        c.reset();
        assert_eq!(c.current_bound(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn fixed_rejects_zero() {
        FixedBound::new(0);
    }
}
