//! The Method of Incremental Steps (§4.1).
//!
//! Hill climbing on the measured (load, performance) sequence: keep moving
//! the bound in the current direction while performance improves, turn
//! around when it worsens — "so we track the ridge in a zig-zag-fashion"
//! (Figure 3). The paper's adjustment rule:
//!
//! ```text
//! n*(tᵢ₊₁) = n*(tᵢ) + β·(P(tᵢ) − P(tᵢ₋₁))·signum(n*(tᵢ) − n*(tᵢ₋₁))   if |n*(tᵢ) − n(tᵢ)| ≤ δ
//!          = n*(tᵢ) + γ     if |n*(tᵢ) − n(tᵢ)| > δ  and n*(tᵢ) < n(tᵢ)
//!          = n*(tᵢ) − γ     if |n*(tᵢ) − n(tᵢ)| > δ  and n*(tᵢ) > n(tᵢ)
//! ```
//!
//! with `signum(x) = 1 for x > 0, −1 for x ≤ 0`. β scales the step with
//! the observed performance change; γ and δ pull the bound back toward the
//! actual load when the two drift apart (§4.1: "to prevent that the actual
//! load n(tᵢ) and the load bound n*(tᵢ) are drifting apart too far").
//!
//! §5.1 failure mode: if the optimum's *height* grows in place, every step
//! improves performance and the controller walks off the ridge — "the
//! algorithm 'thinks' to be on the way to the top, but actually goes
//! astray". The mandated counter-measure is a static lower and upper bound
//! on `n*`, which [`IsParams::min_bound`]/[`IsParams::max_bound`] provide.

use super::{clamp_bound, LoadController};
use crate::estimator::Ewma;
use crate::measure::Measurement;

/// Tuning parameters of the Incremental Steps controller.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IsParams {
    /// Bound in force before the first measurement arrives.
    pub initial_bound: u32,
    /// Static lower bound on `n*` (§5.1 recovery).
    pub min_bound: u32,
    /// Static upper bound on `n*` (§5.1 recovery).
    pub max_bound: u32,
    /// Proportional gain β: step size per unit of performance change.
    pub beta: f64,
    /// Drift-correction step γ (applied when bound and load diverge).
    pub gamma: f64,
    /// Allowed divergence δ between bound `n*` and observed load `n`.
    pub delta: f64,
    /// Smallest step magnitude, keeping the zig-zag alive when the
    /// performance difference is tiny ("increase it by one at each time
    /// step" in the paper's simplest variant).
    pub min_step: f64,
    /// Largest single-step magnitude, protecting against one noisy
    /// measurement flinging the bound across the range.
    pub max_step: f64,
    /// EWMA weight on the raw performance signal (1.0 = no smoothing).
    pub smoothing: f64,
}

impl Default for IsParams {
    fn default() -> Self {
        IsParams {
            initial_bound: 10,
            min_bound: 1,
            max_bound: 1000,
            beta: 1.0,
            gamma: 4.0,
            delta: 16.0,
            min_step: 1.0,
            max_step: 64.0,
            smoothing: 1.0,
        }
    }
}

/// The Incremental Steps (IS) controller of §4.1.
#[derive(Debug, Clone)]
pub struct IncrementalSteps {
    params: IsParams,
    bound: f64,
    prev_bound: f64,
    prev_perf: Option<f64>,
    smoother: Ewma,
}

impl IncrementalSteps {
    /// Creates the controller; panics on inconsistent parameters.
    pub fn new(params: IsParams) -> Self {
        assert!(params.min_bound >= 1, "min_bound must be at least 1");
        assert!(params.min_bound <= params.max_bound);
        assert!(
            (params.min_bound..=params.max_bound).contains(&params.initial_bound),
            "initial_bound must lie within [min_bound, max_bound]"
        );
        assert!(params.beta >= 0.0 && params.gamma >= 0.0 && params.delta >= 0.0);
        assert!(params.min_step > 0.0 && params.max_step >= params.min_step);
        IncrementalSteps {
            params,
            bound: f64::from(params.initial_bound),
            prev_bound: f64::from(params.initial_bound),
            prev_perf: None,
            smoother: Ewma::new(params.smoothing),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &IsParams {
        &self.params
    }

    /// Replaces the gain β — the hook for the §5 outer control loop
    /// ([`super::SelfTuningIs`]). Controller state is preserved.
    pub fn set_beta(&mut self, beta: f64) {
        assert!(beta >= 0.0);
        self.params.beta = beta;
    }

    /// The paper's signum: 1 for positive, −1 for zero or negative. Zero
    /// mapping to −1 matters: a bound pinned at a clamp still flips
    /// direction instead of freezing.
    fn signum(x: f64) -> f64 {
        if x > 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

impl LoadController for IncrementalSteps {
    fn name(&self) -> &'static str {
        "incremental-steps"
    }

    fn update(&mut self, m: &Measurement) -> u32 {
        let p = &self.params;
        let perf = self.smoother.update(m.performance);
        let n = m.observed_mpl;

        let new_bound = if (self.bound - n).abs() <= p.delta {
            // Ridge-tracking branch.
            match self.prev_perf {
                // No history yet: probe upward by one step.
                None => self.bound + p.min_step,
                Some(prev) => {
                    let dp = perf - prev;
                    let dir = Self::signum(self.bound - self.prev_bound) * Self::signum(dp);
                    // Magnitude proportional to |ΔP| but floored/capped so
                    // the search neither stalls nor explodes.
                    let magnitude = (p.beta * dp.abs()).clamp(p.min_step, p.max_step);
                    // dir already folds in the sign of ΔP: continue when
                    // improving, turn around when worsening.
                    self.bound + dir * magnitude
                }
            }
        } else if self.bound < n {
            // Load is above the bound (e.g. displacement is off and the
            // bound just dropped): drift the bound back up toward reality.
            self.bound + p.gamma
        } else {
            // Bound ran away above the achievable load: pull it back down.
            self.bound - p.gamma
        };

        self.prev_bound = self.bound;
        self.prev_perf = Some(perf);
        self.bound = f64::from(clamp_bound(new_bound, p.min_bound, p.max_bound));
        self.bound as u32
    }

    fn current_bound(&self) -> u32 {
        self.bound as u32
    }

    fn reset(&mut self) {
        self.bound = f64::from(self.params.initial_bound);
        self.prev_bound = self.bound;
        self.prev_perf = None;
        self.smoother.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alc_analytic::surface::{RidgeSurface, Schedule, Surface};

    fn drive<S: Surface>(
        ctrl: &mut IncrementalSteps,
        surface: &S,
        steps: usize,
        interval_ms: f64,
    ) -> Vec<(f64, u32)> {
        let mut traj = Vec::with_capacity(steps);
        let mut bound = ctrl.current_bound();
        for i in 0..steps {
            let t = i as f64 * interval_ms;
            // The gate saturates: observed load equals the bound.
            let n = f64::from(bound);
            let perf = surface.performance(n, t);
            let m = Measurement::basic(t + interval_ms, interval_ms, perf, n);
            bound = ctrl.update(&m);
            traj.push((t, bound));
        }
        traj
    }

    #[test]
    fn climbs_to_stationary_optimum() {
        let surface = RidgeSurface::stationary(120.0, 100.0, 2.0);
        let mut ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 10,
            max_bound: 500,
            beta: 2.0,
            ..IsParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 400, 1000.0);
        let tail: Vec<f64> = traj[300..].iter().map(|&(_, b)| f64::from(b)).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 120.0).abs() < 30.0,
            "settled at {mean}, optimum 120"
        );
    }

    #[test]
    fn zig_zags_around_the_optimum() {
        let surface = RidgeSurface::stationary(80.0, 50.0, 2.0);
        let mut ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 78,
            max_bound: 300,
            ..IsParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 200, 1000.0);
        // Direction must flip repeatedly (zig-zag), not stick.
        let bounds: Vec<i64> = traj.iter().map(|&(_, b)| i64::from(b)).collect();
        let mut flips = 0;
        let mut last_dir = 0i64;
        for w in bounds.windows(2) {
            let dir = (w[1] - w[0]).signum();
            if dir != 0 && last_dir != 0 && dir != last_dir {
                flips += 1;
            }
            if dir != 0 {
                last_dir = dir;
            }
        }
        assert!(flips > 20, "only {flips} direction changes in 200 steps");
    }

    #[test]
    fn reacts_to_jump_of_the_optimum() {
        // Figure 13's scenario: optimum position jumps at t=500s.
        let surface = RidgeSurface {
            position: Schedule::Jump {
                at: 500_000.0,
                before: 300.0,
                after: 120.0,
            },
            height: Schedule::Constant(60.0),
            steepness: 2.0,
        };
        let mut ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 50,
            max_bound: 750,
            beta: 2.0,
            ..IsParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 1000, 1000.0);
        let before: Vec<f64> = traj[350..499].iter().map(|&(_, b)| f64::from(b)).collect();
        let after: Vec<f64> = traj[800..].iter().map(|&(_, b)| f64::from(b)).collect();
        let mean_before = before.iter().sum::<f64>() / before.len() as f64;
        let mean_after = after.iter().sum::<f64>() / after.len() as f64;
        assert!(
            (mean_before - 300.0).abs() < 75.0,
            "pre-jump mean {mean_before}"
        );
        assert!(
            (mean_after - 120.0).abs() < 60.0,
            "post-jump mean {mean_after}"
        );
    }

    #[test]
    fn growing_height_failure_is_caught_by_static_bounds() {
        // §5.1: height grows in place; IS would walk upward forever.
        let surface = RidgeSurface {
            position: Schedule::Constant(100.0),
            height: Schedule::Ramp {
                from: 10.0,
                to: 1000.0,
                t_start: 0.0,
                t_end: 400_000.0,
            },
            steepness: 0.2, // very shallow flanks: every step "improves"
        };
        let mut ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 100,
            max_bound: 400,
            beta: 50.0,
            ..IsParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 400, 1000.0);
        for &(_, b) in &traj {
            assert!(b <= 400, "static upper bound violated: {b}");
            assert!(b >= 1);
        }
    }

    #[test]
    fn drift_correction_pulls_bound_toward_load() {
        // Observed load stuck far below the bound: γ-steps must bring the
        // bound down, not the ridge-tracking branch.
        let mut ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 500,
            max_bound: 1000,
            gamma: 10.0,
            delta: 16.0,
            ..IsParams::default()
        });
        let mut bound = ctrl.current_bound();
        for i in 0..20 {
            let m = Measurement::basic(f64::from(i) * 1000.0, 1000.0, 5.0, 40.0);
            bound = ctrl.update(&m);
        }
        assert!(bound <= 300, "bound should fall toward the load, got {bound}");
    }

    #[test]
    fn drift_correction_raises_bound_under_displacementless_drop() {
        // Observed load above the bound (bound was lowered, admission-only
        // control): bound drifts upward by γ.
        let mut ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 50,
            max_bound: 1000,
            gamma: 7.0,
            delta: 4.0,
            ..IsParams::default()
        });
        let m = Measurement::basic(1000.0, 1000.0, 5.0, 200.0);
        let b = ctrl.update(&m);
        assert_eq!(b, 57);
    }

    #[test]
    fn respects_min_bound() {
        let surface = RidgeSurface::stationary(5.0, 10.0, 3.0);
        let mut ctrl = IncrementalSteps::new(IsParams {
            initial_bound: 50,
            min_bound: 2,
            max_bound: 100,
            beta: 20.0,
            ..IsParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 300, 1000.0);
        for &(_, b) in &traj {
            assert!(b >= 2);
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ctrl = IncrementalSteps::new(IsParams::default());
        let m = Measurement::basic(1000.0, 1000.0, 10.0, 10.0);
        ctrl.update(&m);
        ctrl.update(&m);
        ctrl.reset();
        assert_eq!(ctrl.current_bound(), IsParams::default().initial_bound);
    }

    #[test]
    fn name_is_stable() {
        let ctrl = IncrementalSteps::new(IsParams::default());
        assert_eq!(ctrl.name(), "incremental-steps");
    }

    #[test]
    #[should_panic(expected = "initial_bound")]
    fn rejects_initial_outside_range() {
        IncrementalSteps::new(IsParams {
            initial_bound: 5000,
            ..IsParams::default()
        });
    }

    #[test]
    fn smoothing_reduces_noise_sensitivity() {
        // With heavy noise, the smoothed controller's trajectory variance
        // should be no larger than the raw controller's.
        let surface = RidgeSurface::stationary(100.0, 50.0, 2.0);
        let run = |smoothing: f64, seed: u64| {
            let mut ctrl = IncrementalSteps::new(IsParams {
                initial_bound: 100,
                max_bound: 400,
                smoothing,
                ..IsParams::default()
            });
            let mut state = seed;
            let mut noise = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            };
            let mut bound = ctrl.current_bound();
            let mut tail = Vec::new();
            for i in 0..300 {
                let n = f64::from(bound);
                let perf = surface.performance(n, 0.0) * (1.0 + 0.3 * noise());
                bound = ctrl.update(&Measurement::basic(
                    f64::from(i) * 1000.0,
                    1000.0,
                    perf,
                    n,
                ));
                if i >= 100 {
                    tail.push(f64::from(bound));
                }
            }
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            tail.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / tail.len() as f64
        };
        let var_raw = run(1.0, 42);
        let var_smooth = run(0.3, 42);
        assert!(
            var_smooth <= var_raw * 1.5,
            "smoothing made things much worse: {var_smooth} vs {var_raw}"
        );
    }
}
