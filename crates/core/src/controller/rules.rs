//! The "theoretically derived rules of thumb" of §1, as controllers.
//!
//! The paper's position: "Tay et al. claim that k²n/D should be less than
//! 1.5 … Iyer suggests that the mean number of conflicts per transaction
//! should not exceed 0.75. … the question is whether these bounds actually
//! apply to all possible load situations. As long as no detailed
//! examinations of these rules are available, they have to be considered
//! with caution." Implementing them makes that caution measurable — the
//! ablation experiments race them against the feedback controllers.
//!
//! * [`TayRule`] needs to *know* the workload (`k`, `D`): it is an open-
//!   loop rule. When the workload shifts, somebody must tell it (in the
//!   experiments the harness does, simulating a perfectly informed
//!   operator — the strongest possible version of the rule).
//! * [`IyerRule`] is closed-loop: it watches the measured conflicts per
//!   transaction and steers the bound multiplicatively toward the 0.75
//!   target, with an additive-increase exploration term when conflicts sit
//!   below target.

use super::{clamp_bound, LoadController};
use crate::measure::Measurement;

/// Tay's `k²n/D < 1.5` rule as an (open-loop) controller.
#[derive(Debug, Clone)]
pub struct TayRule {
    k: f64,
    db_size: f64,
    threshold: f64,
    min_bound: u32,
    max_bound: u32,
    bound: u32,
}

impl TayRule {
    /// Creates the rule for a workload with `k` accesses per transaction
    /// on a database of `db_size` items, with the canonical 1.5 threshold.
    pub fn new(k: u32, db_size: u64, min_bound: u32, max_bound: u32) -> Self {
        Self::with_threshold(k, db_size, 1.5, min_bound, max_bound)
    }

    /// Creates the rule with a custom threshold on `k²n/D`.
    pub fn with_threshold(
        k: u32,
        db_size: u64,
        threshold: f64,
        min_bound: u32,
        max_bound: u32,
    ) -> Self {
        assert!(k > 0 && db_size > 0 && threshold > 0.0);
        assert!(min_bound >= 1 && min_bound <= max_bound);
        let mut rule = TayRule {
            k: f64::from(k),
            db_size: db_size as f64,
            threshold,
            min_bound,
            max_bound,
            bound: min_bound,
        };
        rule.recompute();
        rule
    }

    /// Informs the rule that the workload changed (the open-loop part:
    /// in reality an operator or catalog statistics would supply this).
    pub fn set_workload(&mut self, k: u32, db_size: u64) {
        assert!(k > 0 && db_size > 0);
        self.k = f64::from(k);
        self.db_size = db_size as f64;
        self.recompute();
    }

    fn recompute(&mut self) {
        let n = self.threshold * self.db_size / (self.k * self.k);
        self.bound = clamp_bound(n.floor(), self.min_bound, self.max_bound);
    }
}

impl LoadController for TayRule {
    fn name(&self) -> &'static str {
        "tay-rule"
    }

    fn update(&mut self, _m: &Measurement) -> u32 {
        self.bound
    }

    fn current_bound(&self) -> u32 {
        self.bound
    }

    fn reset(&mut self) {
        self.recompute();
    }
}

/// Parameters of the Iyer-rule feedback controller.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IyerRuleParams {
    /// Target mean conflicts per transaction (Iyer: 0.75).
    pub target: f64,
    /// Additive bound increase per interval while conflicts are below
    /// target (exploration).
    pub increase: f64,
    /// Bound in force before the first measurement.
    pub initial_bound: u32,
    /// Static lower bound.
    pub min_bound: u32,
    /// Static upper bound.
    pub max_bound: u32,
}

impl Default for IyerRuleParams {
    fn default() -> Self {
        IyerRuleParams {
            target: 0.75,
            increase: 4.0,
            initial_bound: 10,
            min_bound: 1,
            max_bound: 1000,
        }
    }
}

/// Iyer's conflicts-per-transaction rule as a feedback controller:
/// multiplicative decrease when over target, additive increase when under.
#[derive(Debug, Clone)]
pub struct IyerRule {
    params: IyerRuleParams,
    bound: f64,
}

impl IyerRule {
    /// Creates the controller.
    pub fn new(params: IyerRuleParams) -> Self {
        assert!(params.target > 0.0);
        assert!(params.min_bound >= 1 && params.min_bound <= params.max_bound);
        assert!((params.min_bound..=params.max_bound).contains(&params.initial_bound));
        IyerRule {
            params,
            bound: f64::from(params.initial_bound),
        }
    }
}

impl LoadController for IyerRule {
    fn name(&self) -> &'static str {
        "iyer-rule"
    }

    fn update(&mut self, m: &Measurement) -> u32 {
        let p = self.params;
        let c = m.conflicts_per_txn;
        if c > p.target {
            // Conflicts scale ~linearly with MPL, so scaling the bound by
            // target/c aims straight at the target.
            let basis = if m.observed_mpl > 1.0 {
                m.observed_mpl
            } else {
                self.bound
            };
            self.bound = (basis * p.target / c).max(1.0);
        } else {
            self.bound += p.increase;
        }
        self.bound = self
            .bound
            .clamp(f64::from(p.min_bound), f64::from(p.max_bound));
        clamp_bound(self.bound, p.min_bound, p.max_bound)
    }

    fn current_bound(&self) -> u32 {
        clamp_bound(self.bound, self.params.min_bound, self.params.max_bound)
    }

    fn reset(&mut self) {
        self.bound = f64::from(self.params.initial_bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tay_rule_computes_the_formula() {
        // n = 1.5 * 4000 / 64 = 93.75 -> 93
        let rule = TayRule::new(8, 4000, 1, 1000);
        assert_eq!(rule.current_bound(), 93);
    }

    #[test]
    fn tay_rule_tracks_workload_updates() {
        let mut rule = TayRule::new(8, 4000, 1, 1000);
        rule.set_workload(16, 4000);
        // 1.5 * 4000 / 256 = 23.4 -> 23
        assert_eq!(rule.current_bound(), 23);
    }

    #[test]
    fn tay_rule_clamps() {
        let rule = TayRule::new(2, 1_000_000, 1, 200);
        assert_eq!(rule.current_bound(), 200);
        let rule = TayRule::new(100, 100, 5, 200);
        assert_eq!(rule.current_bound(), 5);
    }

    #[test]
    fn tay_rule_update_ignores_measurements() {
        let mut rule = TayRule::new(8, 4000, 1, 1000);
        let m = Measurement {
            conflicts_per_txn: 50.0,
            ..Measurement::basic(0.0, 1.0, 0.0, 500.0)
        };
        assert_eq!(rule.update(&m), 93);
    }

    #[test]
    fn iyer_rule_decreases_over_target() {
        let mut rule = IyerRule::new(IyerRuleParams {
            initial_bound: 100,
            ..IyerRuleParams::default()
        });
        let m = Measurement {
            conflicts_per_txn: 1.5,
            ..Measurement::basic(0.0, 1.0, 0.0, 100.0)
        };
        // 100 * 0.75/1.5 = 50
        assert_eq!(rule.update(&m), 50);
    }

    #[test]
    fn iyer_rule_increases_under_target() {
        let mut rule = IyerRule::new(IyerRuleParams {
            initial_bound: 100,
            increase: 5.0,
            ..IyerRuleParams::default()
        });
        let m = Measurement {
            conflicts_per_txn: 0.1,
            ..Measurement::basic(0.0, 1.0, 0.0, 100.0)
        };
        assert_eq!(rule.update(&m), 105);
    }

    #[test]
    fn iyer_rule_converges_on_linear_conflict_model() {
        // conflicts = 0.01 * n: the fixed point of the rule is n = 75.
        let mut rule = IyerRule::new(IyerRuleParams {
            initial_bound: 400,
            max_bound: 600,
            ..IyerRuleParams::default()
        });
        let mut bound = rule.current_bound();
        for i in 0..200 {
            let n = f64::from(bound);
            let m = Measurement {
                conflicts_per_txn: 0.01 * n,
                ..Measurement::basic(f64::from(i), 1.0, 0.0, n)
            };
            bound = rule.update(&m);
        }
        assert!(
            (f64::from(bound) - 75.0).abs() <= 6.0,
            "fixed point missed: {bound}"
        );
    }

    #[test]
    fn iyer_rule_respects_bounds() {
        let mut rule = IyerRule::new(IyerRuleParams {
            initial_bound: 10,
            min_bound: 5,
            max_bound: 20,
            ..IyerRuleParams::default()
        });
        for _ in 0..10 {
            let m = Measurement {
                conflicts_per_txn: 0.0,
                ..Measurement::basic(0.0, 1.0, 0.0, 10.0)
            };
            assert!(rule.update(&m) <= 20);
        }
        let m = Measurement {
            conflicts_per_txn: 1000.0,
            ..Measurement::basic(0.0, 1.0, 0.0, 20.0)
        };
        assert!(rule.update(&m) >= 5);
    }

    #[test]
    fn iyer_reset() {
        let mut rule = IyerRule::new(IyerRuleParams::default());
        let m = Measurement {
            conflicts_per_txn: 0.0,
            ..Measurement::basic(0.0, 1.0, 0.0, 10.0)
        };
        rule.update(&m);
        rule.reset();
        assert_eq!(rule.current_bound(), IyerRuleParams::default().initial_bound);
    }
}
