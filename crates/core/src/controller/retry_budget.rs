//! Retry-budget admission control as an MPL load controller.
//!
//! The arithmetic is the token bucket of the runtime's `RetryBudgetLaw`:
//! every commit deposits `budget` retries of credit, every abort
//! withdraws one, and the balance is capped at `burst`. Living in
//! `alc-core` lets the simulator drive it directly, so a gate log
//! captured from a simulated retry storm replays byte-identically
//! through the runtime law — the two are the same decision function on
//! either side of the conformance pin.

use super::LoadController;
use crate::measure::Measurement;

/// Parameters of [`RetryBudget`]. Field-for-field identical to the
/// runtime's `RetryBudgetParams`; keep the defaults in lock-step or the
/// gate-log conformance pins snap.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryBudgetParams {
    /// Bound before the first decision.
    pub initial_bound: u32,
    /// Floor of the bound.
    pub min_bound: u32,
    /// Ceiling of the bound.
    pub max_bound: u32,
    /// Retry credit earned per successful completion (e.g. `0.1` = one
    /// retry allowed per ten commits).
    pub budget: f64,
    /// Maximum banked credit, in retries (the burst the bucket absorbs).
    pub burst: f64,
    /// Additive step applied when the window spends at most
    /// `headroom × earned` credit (comfortably inside the budget).
    pub increase: u32,
    /// Multiplicative factor applied when the bucket runs dry (in
    /// `(0, 1)`).
    pub decrease: f64,
    /// Fraction of the per-window earned credit under which the system
    /// counts as comfortable (in `[0, 1]`).
    pub headroom: f64,
}

impl Default for RetryBudgetParams {
    fn default() -> Self {
        RetryBudgetParams {
            initial_bound: 8,
            min_bound: 1,
            max_bound: 1024,
            budget: 0.1,
            burst: 32.0,
            increase: 1,
            decrease: 0.5,
            headroom: 0.5,
        }
    }
}

/// Token-bucket retry budgeting over interval measurements: a window
/// that drains the bucket below zero is an overload — the bound is cut
/// multiplicatively and the bucket resets to empty. A window that spends
/// only a small fraction of what it earned lets the bound creep up
/// additively; anything in between holds.
///
/// Unlike a plain abort-ratio threshold, the bucket forgives short
/// conflict bursts (paid from banked credit) while still clamping
/// sustained restart storms — the closed-loop retry amplification that
/// turns a transient fault into a metastable collapse.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    params: RetryBudgetParams,
    bound: u32,
    credit: f64,
}

impl RetryBudget {
    /// Creates the controller at its initial bound with an empty bucket.
    pub fn new(params: RetryBudgetParams) -> Self {
        assert!(params.min_bound >= 1, "min_bound must be at least 1");
        assert!(
            params.min_bound <= params.max_bound,
            "min_bound must not exceed max_bound"
        );
        assert!(params.budget >= 0.0, "budget must be non-negative");
        assert!(params.burst >= 0.0, "burst must be non-negative");
        assert!(
            params.decrease > 0.0 && params.decrease < 1.0,
            "decrease must be in (0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&params.headroom),
            "headroom must be in [0, 1]"
        );
        let bound = params.initial_bound.clamp(params.min_bound, params.max_bound);
        RetryBudget {
            params,
            bound,
            credit: 0.0,
        }
    }

    /// The banked retry credit (for tests and introspection).
    pub fn credit(&self) -> f64 {
        self.credit
    }
}

impl LoadController for RetryBudget {
    fn name(&self) -> &'static str {
        "retry-budget"
    }

    fn update(&mut self, m: &Measurement) -> u32 {
        if m.departures == 0 && m.aborts == 0 {
            return self.bound; // starved window: no evidence
        }
        let earned = m.departures as f64 * self.params.budget;
        let spent = m.aborts as f64;
        let balance = self.credit + earned - spent;
        self.bound = if balance < 0.0 {
            self.credit = 0.0;
            let cut = (f64::from(self.bound) * self.params.decrease).floor() as u32;
            cut.clamp(self.params.min_bound, self.params.max_bound)
        } else {
            self.credit = balance.min(self.params.burst);
            if spent <= self.params.headroom * earned {
                self.bound
                    .saturating_add(self.params.increase)
                    .clamp(self.params.min_bound, self.params.max_bound)
            } else {
                self.bound // inside budget but not comfortable: hold
            }
        };
        self.bound
    }

    fn current_bound(&self) -> u32 {
        self.bound
    }

    fn reset(&mut self) {
        self.bound = self
            .params
            .initial_bound
            .clamp(self.params.min_bound, self.params.max_bound);
        self.credit = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(departures: u64, aborts: u64) -> Measurement {
        Measurement {
            departures,
            aborts,
            ..Measurement::basic(0.0, 1000.0, 10.0, 100.0)
        }
    }

    #[test]
    fn clean_windows_grow_the_bound_and_bank_credit() {
        let mut c = RetryBudget::new(RetryBudgetParams {
            initial_bound: 10,
            budget: 0.1,
            burst: 5.0,
            ..RetryBudgetParams::default()
        });
        assert_eq!(c.update(&window(100, 0)), 11); // earns 10, capped at 5
        assert!((c.credit() - 5.0).abs() < 1e-12);
        assert_eq!(c.update(&window(100, 2)), 12); // 2 ≤ 0.5 × 10
    }

    #[test]
    fn burst_is_forgiven_from_banked_credit() {
        let mut c = RetryBudget::new(RetryBudgetParams {
            initial_bound: 10,
            budget: 0.1,
            burst: 20.0,
            ..RetryBudgetParams::default()
        });
        for _ in 0..5 {
            c.update(&window(100, 0)); // bank 10 per window, cap 20
        }
        // One bursty window: 25 aborts on 100 departures spends 25
        // against 20 banked + 10 earned — inside budget, bound holds.
        let before = c.current_bound();
        assert_eq!(c.update(&window(100, 25)), before);
        assert!(c.credit() < 20.0);
    }

    #[test]
    fn sustained_storm_drains_the_bucket_and_cuts() {
        let mut c = RetryBudget::new(RetryBudgetParams {
            initial_bound: 40,
            budget: 0.1,
            burst: 10.0,
            decrease: 0.5,
            ..RetryBudgetParams::default()
        });
        // 30 aborts per 100 departures spends 30 against ≤ 20 available.
        assert_eq!(c.update(&window(100, 30)), 20);
        assert_eq!(c.credit(), 0.0);
        assert_eq!(c.update(&window(100, 30)), 10);
    }

    #[test]
    fn starved_windows_hold_and_reset_restores() {
        let mut c = RetryBudget::new(RetryBudgetParams {
            initial_bound: 7,
            ..RetryBudgetParams::default()
        });
        assert_eq!(c.update(&window(0, 0)), 7);
        c.update(&window(100, 0));
        c.reset();
        assert_eq!(c.current_bound(), 7);
        assert_eq!(c.credit(), 0.0);
    }
}
