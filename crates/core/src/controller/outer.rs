//! The overlaid outer control loop of §5.
//!
//! "Tuning does not necessarily mean manual adjustment, it can also be
//! done automatically by an overlaid, outer control loop that takes
//! long-term measurements to adjust the parameters of the inner control
//! loop."
//!
//! Two outer loops are provided, one per inner algorithm:
//!
//! * [`SelfTuningIs`] wraps the Incremental Steps controller and adapts
//!   its gain β from the long-term *step size* of the bound trajectory: a
//!   healthy zig-zag around a stationary optimum takes modest steps, a
//!   too-small gain shows long sluggish climbs, a too-large gain huge
//!   swings. The outer loop nudges β to keep the mean |step| near a
//!   target fraction of the current bound.
//! * [`SelfTuningPa`] wraps the Parabola Approximation and adapts its
//!   forgetting factor α from the *innovation* (RLS prediction error)
//!   statistics: innovations persistently above their long-run level mean
//!   the surface is moving and memory should shorten (smaller α);
//!   innovations at the noise floor mean the estimate can afford a longer
//!   memory (α toward its maximum). This automates the Δt/α trade-off of
//!   Figure 6 that §5.2 leaves to manual tuning.

use super::{IncrementalSteps, IsParams, LoadController, PaParams, ParabolaApproximation};
use crate::estimator::Ewma;
use crate::measure::Measurement;

/// Parameters of the outer tuning loop.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OuterParams {
    /// Inner-loop updates per outer-loop adjustment.
    pub window: u32,
    /// Desired mean |bound step| as a fraction of the current bound.
    /// Small = calm steady state, large = fast reaction.
    pub target_step_fraction: f64,
    /// Multiplicative β adjustment per outer tick (> 1).
    pub adjust_factor: f64,
    /// Lower clamp for β.
    pub beta_min: f64,
    /// Upper clamp for β.
    pub beta_max: f64,
}

impl Default for OuterParams {
    fn default() -> Self {
        OuterParams {
            window: 25,
            target_step_fraction: 0.05,
            adjust_factor: 1.5,
            beta_min: 1e-4,
            beta_max: 1e4,
        }
    }
}

/// Incremental Steps with the §5 outer loop auto-tuning its gain β.
#[derive(Debug, Clone)]
pub struct SelfTuningIs {
    inner: IncrementalSteps,
    outer: OuterParams,
    initial_beta: f64,
    ticks: u32,
    step_sum: f64,
    bound_sum: f64,
    last_bound: u32,
}

impl SelfTuningIs {
    /// Wraps IS with the given inner and outer parameters.
    pub fn new(inner_params: IsParams, outer: OuterParams) -> Self {
        assert!(outer.window >= 2);
        assert!(outer.target_step_fraction > 0.0);
        assert!(outer.adjust_factor > 1.0);
        assert!(outer.beta_min > 0.0 && outer.beta_min <= outer.beta_max);
        let inner = IncrementalSteps::new(inner_params);
        SelfTuningIs {
            last_bound: inner.current_bound(),
            initial_beta: inner_params.beta,
            inner,
            outer,
            ticks: 0,
            step_sum: 0.0,
            bound_sum: 0.0,
        }
    }

    /// The gain currently in force (read by tests and ablations).
    pub fn beta(&self) -> f64 {
        self.inner.params().beta
    }

    fn outer_tick(&mut self) {
        let mean_step = self.step_sum / f64::from(self.outer.window);
        let mean_bound = (self.bound_sum / f64::from(self.outer.window)).max(1.0);
        let target = self.outer.target_step_fraction * mean_bound;
        let beta = self.inner.params().beta;
        let new_beta = if mean_step > 2.0 * target {
            beta / self.outer.adjust_factor
        } else if mean_step < 0.5 * target {
            beta * self.outer.adjust_factor
        } else {
            beta
        };
        self.inner
            .set_beta(new_beta.clamp(self.outer.beta_min, self.outer.beta_max));
        self.ticks = 0;
        self.step_sum = 0.0;
        self.bound_sum = 0.0;
    }
}

impl LoadController for SelfTuningIs {
    fn name(&self) -> &'static str {
        "self-tuning-is"
    }

    fn update(&mut self, m: &Measurement) -> u32 {
        let bound = self.inner.update(m);
        self.step_sum += (f64::from(bound) - f64::from(self.last_bound)).abs();
        self.bound_sum += f64::from(bound);
        self.last_bound = bound;
        self.ticks += 1;
        if self.ticks >= self.outer.window {
            self.outer_tick();
        }
        bound
    }

    fn current_bound(&self) -> u32 {
        self.inner.current_bound()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.inner.set_beta(self.initial_beta);
        self.ticks = 0;
        self.step_sum = 0.0;
        self.bound_sum = 0.0;
        self.last_bound = self.inner.current_bound();
    }
}

/// Parameters of the α-tuning outer loop for PA.
///
/// The loop is deliberately asymmetric. *Shortening* memory must happen
/// while the shock is still in flight — a jump of the optimum produces a
/// burst of innovations that lives and dies within a handful of
/// intervals, so waiting for a window boundary would miss it. *Lengthening*
/// memory is never urgent, so it runs calmly once per window.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaOuterParams {
    /// Inner-loop updates per lengthening decision.
    pub window: u32,
    /// EWMA weight of the fast |innovation| tracker (recent level).
    pub fast_weight: f64,
    /// EWMA weight of the slow |innovation| tracker (the noise floor).
    pub slow_weight: f64,
    /// A step is a *shock* when its |innovation| exceeds `shock_factor`
    /// times the slow tracker.
    pub shock_factor: f64,
    /// Consecutive shock steps required before shortening starts (single
    /// measurement blips must not shorten the memory).
    pub shock_confirm: u32,
    /// Fast/slow ratio below which memory lengthens (steady state).
    pub lengthen_below: f64,
    /// Multiplicative step applied to `1 − α` per adjustment (> 1).
    pub adjust_factor: f64,
    /// Lower clamp for α (shortest memory allowed).
    pub alpha_min: f64,
    /// Upper clamp for α (longest memory allowed).
    pub alpha_max: f64,
}

impl Default for PaOuterParams {
    fn default() -> Self {
        PaOuterParams {
            window: 10,
            fast_weight: 0.4,
            slow_weight: 0.05,
            shock_factor: 3.0,
            shock_confirm: 2,
            lengthen_below: 0.8,
            adjust_factor: 1.5,
            alpha_min: 0.6,
            alpha_max: 0.99,
        }
    }
}

/// Parabola Approximation with the §5 outer loop auto-tuning its
/// forgetting factor α from innovation statistics.
#[derive(Debug, Clone)]
pub struct SelfTuningPa {
    inner: ParabolaApproximation,
    outer: PaOuterParams,
    initial_alpha: f64,
    fast: Ewma,
    slow: Ewma,
    ticks: u32,
    shock_streak: u32,
}

impl SelfTuningPa {
    /// Wraps PA with the given inner and outer parameters. The inner α is
    /// clamped into `[alpha_min, alpha_max]` immediately.
    pub fn new(inner_params: PaParams, outer: PaOuterParams) -> Self {
        assert!(outer.window >= 2);
        assert!(outer.fast_weight > outer.slow_weight && outer.slow_weight > 0.0);
        assert!(outer.fast_weight <= 1.0);
        assert!(outer.shock_factor > 1.0 && outer.shock_confirm >= 1);
        assert!(outer.lengthen_below > 0.0 && outer.lengthen_below < 1.0);
        assert!(outer.adjust_factor > 1.0);
        assert!(outer.alpha_min > 0.0 && outer.alpha_min <= outer.alpha_max && outer.alpha_max < 1.0);
        let mut inner = ParabolaApproximation::new(inner_params);
        let initial_alpha = inner.alpha().clamp(outer.alpha_min, outer.alpha_max);
        inner.set_alpha(initial_alpha);
        SelfTuningPa {
            inner,
            outer,
            initial_alpha,
            fast: Ewma::new(outer.fast_weight),
            slow: Ewma::new(outer.slow_weight),
            ticks: 0,
            shock_streak: 0,
        }
    }

    /// The forgetting factor currently in force.
    pub fn alpha(&self) -> f64 {
        self.inner.alpha()
    }

    /// Read access to the wrapped PA controller.
    pub fn parabola(&self) -> &ParabolaApproximation {
        &self.inner
    }

    /// Moves α by one geometric step of the forgetting *rate* `1 − α` —
    /// shorter memory for `shorten = true`, longer otherwise.
    fn step_alpha(&mut self, shorten: bool) {
        let o = self.outer;
        let one_minus = 1.0 - self.inner.alpha();
        let new_alpha = if shorten {
            1.0 - (one_minus * o.adjust_factor)
        } else {
            1.0 - (one_minus / o.adjust_factor)
        };
        self.inner.set_alpha(new_alpha.clamp(o.alpha_min, o.alpha_max));
    }
}

impl LoadController for SelfTuningPa {
    fn name(&self) -> &'static str {
        "self-tuning-pa"
    }

    fn update(&mut self, m: &Measurement) -> u32 {
        let o = self.outer;
        let bound = self.inner.update(m);
        let innovation = self.inner.last_innovation().abs();
        let noise_floor = self.slow.value().unwrap_or(innovation);
        let fast = self.fast.update(innovation);
        let slow = self.slow.update(innovation);

        // Shock path: confirmed innovation bursts shorten memory at once.
        if innovation > o.shock_factor * noise_floor.max(f64::EPSILON) {
            self.shock_streak += 1;
            if self.shock_streak >= o.shock_confirm {
                self.step_alpha(true);
            }
        } else {
            self.shock_streak = 0;
        }

        // Calm path: lengthen once per window when innovations sit below
        // their long-run level.
        self.ticks += 1;
        if self.ticks >= o.window {
            self.ticks = 0;
            if fast < o.lengthen_below * slow.max(f64::EPSILON) && self.shock_streak == 0 {
                self.step_alpha(false);
            }
        }
        bound
    }

    fn current_bound(&self) -> u32 {
        self.inner.current_bound()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.inner.set_alpha(self.initial_alpha);
        self.fast.reset();
        self.slow.reset();
        self.ticks = 0;
        self.shock_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alc_analytic::surface::{RidgeSurface, Surface};

    fn drive(
        ctrl: &mut SelfTuningIs,
        surface: &RidgeSurface,
        steps: usize,
        noise_amp: f64,
        seed: u64,
    ) -> Vec<u32> {
        let mut state = seed;
        let mut noise = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut bound = ctrl.current_bound();
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = i as f64 * 1000.0;
            let n = f64::from(bound);
            let perf = surface.performance(n, t) * (1.0 + noise_amp * noise());
            bound = ctrl.update(&Measurement::basic(t, 1000.0, perf, n));
            out.push(bound);
        }
        out
    }

    fn amplitude(tail: &[u32]) -> f64 {
        let max = f64::from(*tail.iter().max().unwrap());
        let min = f64::from(*tail.iter().min().unwrap());
        max - min
    }

    #[test]
    fn tames_an_overaggressive_gain() {
        let surface = RidgeSurface::stationary(100.0, 50.0, 2.0);
        // β far too large: plain IS would swing wildly forever.
        let params = IsParams {
            initial_bound: 100,
            max_bound: 400,
            beta: 500.0,
            max_step: 200.0,
            ..IsParams::default()
        };
        let mut plain = IncrementalSteps::new(params);
        let mut tuned = SelfTuningIs::new(params, OuterParams::default());

        let mut bound = plain.current_bound();
        let mut plain_traj = Vec::new();
        for i in 0..400 {
            let n = f64::from(bound);
            let perf = surface.performance(n, 0.0);
            bound = plain.update(&Measurement::basic(f64::from(i), 1.0, perf, n));
            plain_traj.push(bound);
        }
        let tuned_traj = drive(&mut tuned, &surface, 400, 0.0, 1);

        let plain_amp = amplitude(&plain_traj[300..]);
        let tuned_amp = amplitude(&tuned_traj[300..]);
        assert!(
            tuned_amp < plain_amp * 0.5,
            "outer loop failed to calm the oscillation: tuned {tuned_amp} vs plain {plain_amp}"
        );
        assert!(tuned.beta() < 500.0, "beta was never reduced");
    }

    #[test]
    fn wakes_up_an_undersized_gain() {
        let surface = RidgeSurface::stationary(300.0, 50.0, 2.0);
        // β microscopic: plain IS crawls from 20 toward 300.
        let params = IsParams {
            initial_bound: 20,
            max_bound: 500,
            beta: 1e-3,
            min_step: 1.0,
            ..IsParams::default()
        };
        let mut tuned = SelfTuningIs::new(
            params,
            OuterParams {
                window: 10,
                ..OuterParams::default()
            },
        );
        let traj = drive(&mut tuned, &surface, 500, 0.0, 2);
        let tail = &traj[400..];
        let mean = tail.iter().map(|&b| f64::from(b)).sum::<f64>() / tail.len() as f64;
        assert!(tuned.beta() > 1e-3, "beta was never raised");
        assert!(
            (mean - 300.0).abs() < 90.0,
            "failed to reach the optimum: settled at {mean}"
        );
    }

    #[test]
    fn beta_stays_clamped() {
        let params = IsParams::default();
        let outer = OuterParams {
            window: 5,
            beta_min: 0.5,
            beta_max: 2.0,
            ..OuterParams::default()
        };
        let mut tuned = SelfTuningIs::new(params, outer);
        let surface = RidgeSurface::stationary(50.0, 1000.0, 3.0);
        drive(&mut tuned, &surface, 300, 0.3, 3);
        assert!((0.5..=2.0).contains(&tuned.beta()), "beta {}", tuned.beta());
    }

    #[test]
    fn reset_restores_initial_gain() {
        let params = IsParams {
            beta: 7.0,
            ..IsParams::default()
        };
        let mut tuned = SelfTuningIs::new(params, OuterParams { window: 2, ..OuterParams::default() });
        let surface = RidgeSurface::stationary(100.0, 50.0, 2.0);
        drive(&mut tuned, &surface, 50, 0.0, 4);
        tuned.reset();
        assert_eq!(tuned.beta(), 7.0);
        assert_eq!(tuned.current_bound(), IsParams::default().initial_bound);
    }

    #[test]
    fn name_is_stable() {
        let t = SelfTuningIs::new(IsParams::default(), OuterParams::default());
        assert_eq!(t.name(), "self-tuning-is");
    }

    fn drive_pa(
        ctrl: &mut SelfTuningPa,
        surface: &RidgeSurface,
        steps: usize,
        noise_amp: f64,
        seed: u64,
    ) -> Vec<u32> {
        let mut state = seed;
        let mut noise = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut bound = ctrl.current_bound();
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = i as f64 * 1000.0;
            let n = f64::from(bound);
            let perf = surface.performance(n, t) * (1.0 + noise_amp * noise());
            bound = ctrl.update(&Measurement::basic(t, 1000.0, perf, n));
            out.push(bound);
        }
        out
    }

    fn pa_params_500() -> PaParams {
        PaParams {
            initial_bound: 10,
            max_bound: 500,
            ..PaParams::default()
        }
    }

    #[test]
    fn pa_alpha_lengthens_on_a_calm_surface() {
        // Stationary, noise-free surface: innovations die out, so the
        // outer loop should stretch the memory toward alpha_max.
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = SelfTuningPa::new(
            PaParams {
                alpha: 0.8,
                ..pa_params_500()
            },
            PaOuterParams::default(),
        );
        drive_pa(&mut ctrl, &surface, 300, 0.0, 1);
        assert!(
            ctrl.alpha() > 0.9,
            "alpha never lengthened on a calm surface: {}",
            ctrl.alpha()
        );
    }

    #[test]
    fn pa_alpha_shortens_when_the_surface_jumps() {
        use alc_analytic::surface::Schedule;
        // Long calm phase stretches α; the jump must pull it back down.
        let surface = RidgeSurface {
            position: Schedule::Jump {
                at: 250_000.0,
                before: 300.0,
                after: 100.0,
            },
            height: Schedule::Constant(60.0),
            steepness: 2.0,
        };
        let mut ctrl = SelfTuningPa::new(
            PaParams {
                alpha: 0.95,
                ..pa_params_500()
            },
            PaOuterParams::default(),
        );
        // Drive to just before the jump and record α, then across it.
        let mut bound = ctrl.current_bound();
        let mut alpha_before = 0.0;
        let mut alpha_min_after = 1.0f64;
        for i in 0..400usize {
            let t = i as f64 * 1000.0;
            let n = f64::from(bound);
            let perf = surface.performance(n, t);
            bound = ctrl.update(&Measurement::basic(t, 1000.0, perf, n));
            if i == 249 {
                alpha_before = ctrl.alpha();
            }
            if i > 250 {
                alpha_min_after = alpha_min_after.min(ctrl.alpha());
            }
        }
        assert!(
            alpha_min_after < alpha_before,
            "alpha never shortened after the jump: before {alpha_before}, min after {alpha_min_after}"
        );
    }

    #[test]
    fn pa_still_tracks_the_optimum() {
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = SelfTuningPa::new(pa_params_500(), PaOuterParams::default());
        let traj = drive_pa(&mut ctrl, &surface, 300, 0.1, 2);
        let tail = &traj[200..];
        let mean = tail.iter().map(|&b| f64::from(b)).sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 150.0).abs() < 30.0,
            "outer loop broke PA's convergence: settled at {mean}"
        );
    }

    #[test]
    fn pa_alpha_stays_clamped() {
        let surface = RidgeSurface::stationary(100.0, 50.0, 2.0);
        let outer = PaOuterParams {
            alpha_min: 0.7,
            alpha_max: 0.9,
            window: 5,
            ..PaOuterParams::default()
        };
        let mut ctrl = SelfTuningPa::new(pa_params_500(), outer);
        drive_pa(&mut ctrl, &surface, 300, 0.5, 3);
        assert!(
            (0.7..=0.9).contains(&ctrl.alpha()),
            "alpha {} escaped clamps",
            ctrl.alpha()
        );
    }

    #[test]
    fn pa_reset_restores_initial_alpha() {
        let surface = RidgeSurface::stationary(100.0, 50.0, 2.0);
        let mut ctrl = SelfTuningPa::new(
            PaParams {
                alpha: 0.9,
                ..pa_params_500()
            },
            PaOuterParams::default(),
        );
        drive_pa(&mut ctrl, &surface, 100, 0.0, 4);
        ctrl.reset();
        assert_eq!(ctrl.alpha(), 0.9);
        assert_eq!(ctrl.current_bound(), 10);
    }

    #[test]
    fn pa_name_is_stable() {
        let t = SelfTuningPa::new(PaParams::default(), PaOuterParams::default());
        assert_eq!(t.name(), "self-tuning-pa");
    }
}
