//! The Parabola Approximation (§4.2).
//!
//! The performance function is approximated as `P(n) = a₀ + a₁n + a₂n²`
//! from recent (P, n) measurement pairs via recursive least squares with
//! exponentially fading memory; the vertex of the fitted parabola becomes
//! the next load bound:
//!
//! ```text
//! n*(tᵢ₊₁) = −a₁ / (2a₂)    if a₂ < 0
//!          = <recovery>     otherwise (§5.2)
//! ```
//!
//! Three §4.2/§5.2 subtleties are implemented faithfully:
//!
//! * **Excitation.** "Because the algorithm is based on a least squares
//!   approach, it needs some variations in the measurements to get useful
//!   estimates." A deliberate low-amplitude dither cycle is superimposed
//!   on the output bound — these are the enforced oscillations visible in
//!   the paper's Figure 14 trajectory.
//! * **Memory shape.** "It is therefore better to choose a small Δt and a
//!   large α instead of a large Δt and small α" (Figure 6). The forgetting
//!   factor is a first-class parameter.
//! * **Upward-opening parabolas.** A flat hump (Fig. 7) or an abrupt shape
//!   change (Fig. 8) can produce `a₂ ≥ 0`, making the estimate "obviously
//!   unreliable and useless". The [`FallbackPolicy`] options provide the
//!   §5.2 countermeasures: hold, gradient probing, covariance reset, or a
//!   clamp to a safe bound.

use super::{clamp_bound, LoadController};
use crate::estimator::quadratic::{FitShape, Quadratic};
use crate::estimator::Rls;
use crate::measure::Measurement;

/// Recovery countermeasure when the fitted parabola opens upward (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FallbackPolicy {
    /// Keep the last bound and wait for the estimate to become concave.
    HoldLast,
    /// Take IS-like steps in the direction of the last performance
    /// improvement until concavity returns — keeps exploring instead of
    /// freezing on a plateau (Fig. 7).
    GradientProbe {
        /// Step magnitude per interval while probing.
        step: f64,
    },
    /// Jump to a configured safe bound and re-learn from there (Fig. 8's
    /// "deep in the thrashing region" case).
    ClampToSafe {
        /// The safe bound.
        bound: u32,
    },
}

/// Tuning parameters of the Parabola Approximation controller.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaParams {
    /// Bound in force before the first measurement.
    pub initial_bound: u32,
    /// Static lower bound on `n*`.
    pub min_bound: u32,
    /// Static upper bound on `n*`; also the normalization scale of the
    /// regressor (`x = n / max_bound` keeps the RLS well-conditioned).
    pub max_bound: u32,
    /// Forgetting factor α of the RLS estimator (Fig. 6; larger = longer
    /// memory). The paper's illustrative value is 0.8; with short
    /// intervals 0.9–0.97 behaves well.
    pub alpha: f64,
    /// Initial covariance scale of the RLS prior.
    pub initial_covariance: f64,
    /// Smallest significant |a₂| (in normalized units) for the fit to
    /// count as concave; below it the vertex is numerically meaningless.
    pub min_curvature: f64,
    /// Observations to collect (while ramping the bound up) before the
    /// first vertex is trusted.
    pub warmup_samples: u64,
    /// Bound increment per interval during warm-up exploration.
    pub warmup_step: f64,
    /// Peak deviation of the excitation dither superimposed on the output.
    pub dither_amplitude: f64,
    /// Largest bound movement per interval toward a new vertex (rate
    /// limiting keeps one outlier fit from flinging the system).
    pub max_step: f64,
    /// Countermeasure when the fit opens upward.
    pub fallback: FallbackPolicy,
    /// Consecutive upward-opening fits that trigger a covariance reset
    /// (0 disables resetting).
    pub reset_after_convex: u32,
}

impl Default for PaParams {
    fn default() -> Self {
        PaParams {
            initial_bound: 10,
            min_bound: 1,
            max_bound: 1000,
            alpha: 0.95,
            initial_covariance: 1e4,
            min_curvature: 1e-3,
            warmup_samples: 8,
            warmup_step: 8.0,
            dither_amplitude: 6.0,
            max_step: 48.0,
            fallback: FallbackPolicy::GradientProbe { step: 8.0 },
            reset_after_convex: 6,
        }
    }
}

/// Diagnostic counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaDiagnostics {
    /// Intervals whose fit opened upward (Fig. 7/8 pathology hits).
    pub convex_fits: u64,
    /// Covariance resets performed.
    pub covariance_resets: u64,
    /// Intervals whose vertex was accepted.
    pub vertex_updates: u64,
}

/// The Parabola Approximation (PA) controller of §4.2.
#[derive(Debug, Clone)]
pub struct ParabolaApproximation {
    params: PaParams,
    rls: Rls<3>,
    /// The undithered bound the controller believes optimal.
    bound: f64,
    dither_phase: u8,
    consecutive_convex: u32,
    prev_bound: f64,
    prev_perf: Option<f64>,
    probe_direction: f64,
    last_innovation: f64,
    diagnostics: PaDiagnostics,
}

impl ParabolaApproximation {
    /// Creates the controller; panics on inconsistent parameters.
    pub fn new(params: PaParams) -> Self {
        assert!(params.min_bound >= 1);
        assert!(params.min_bound <= params.max_bound);
        assert!((params.min_bound..=params.max_bound).contains(&params.initial_bound));
        assert!(params.alpha > 0.0 && params.alpha <= 1.0);
        assert!(params.dither_amplitude >= 0.0);
        assert!(params.max_step > 0.0);
        ParabolaApproximation {
            params,
            rls: Rls::new(params.alpha, params.initial_covariance),
            bound: f64::from(params.initial_bound),
            dither_phase: 0,
            consecutive_convex: 0,
            prev_bound: f64::from(params.initial_bound),
            prev_perf: None,
            probe_direction: 1.0,
            last_innovation: 0.0,
            diagnostics: PaDiagnostics::default(),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &PaParams {
        &self.params
    }

    /// Diagnostic counters (convex fits, resets, accepted vertices).
    pub fn diagnostics(&self) -> PaDiagnostics {
        self.diagnostics
    }

    /// The current fitted parabola in *denormalized* coordinates, i.e.
    /// coefficients of `P(n)` with `n` in transactions. Used by the
    /// `fig04` experiment to draw the fit against the measurements.
    pub fn fitted_parabola(&self) -> Quadratic {
        let s = f64::from(self.params.max_bound);
        let t = self.rls.theta();
        Quadratic {
            a0: t[0],
            a1: t[1] / s,
            a2: t[2] / (s * s),
        }
    }

    /// The undithered bound the controller currently believes optimal.
    pub fn base_bound(&self) -> f64 {
        self.bound
    }

    /// Moves the controller's base bound without touching the estimator —
    /// used by hybrid controllers handing over from another search phase.
    pub fn set_base_bound(&mut self, bound: f64) {
        let p = self.params;
        self.bound = bound.clamp(f64::from(p.min_bound), f64::from(p.max_bound));
    }

    /// The forgetting factor currently in force.
    pub fn alpha(&self) -> f64 {
        self.rls.alpha()
    }

    /// Replaces the forgetting factor α — the hook for the §5 outer loop
    /// ([`super::SelfTuningPa`]). Estimator state is preserved.
    pub fn set_alpha(&mut self, alpha: f64) {
        self.rls.set_alpha(alpha);
    }

    /// The RLS prediction error of the most recent measurement (before
    /// the estimator absorbed it): the innovation an outer loop watches
    /// to tell workload shifts from noise.
    pub fn last_innovation(&self) -> f64 {
        self.last_innovation
    }

    /// Classification of the current fit: concave with a usable vertex,
    /// or unusable (upward-opening / numerically flat).
    pub fn fit_shape(&self) -> FitShape {
        Quadratic::from_theta(self.rls.theta()).classify(self.params.min_curvature)
    }

    /// Absorbs a measurement into the estimator *without* running the
    /// control law or moving the bound. Hybrid controllers call this while
    /// another search phase owns the output, so the parabola is already
    /// trained when they hand over.
    pub fn observe_only(&mut self, m: &Measurement) {
        let scale = f64::from(self.params.max_bound);
        let x = (m.observed_mpl / scale).clamp(0.0, 2.0);
        self.last_innovation = self.rls.update(&[1.0, x, x * x], m.performance);
        self.prev_perf = Some(m.performance);
    }

    fn dither(&mut self) -> f64 {
        // Four-phase triangle cycle 0, +A, 0, −A: three distinct regressor
        // values per cycle keep the 3-parameter fit identifiable even when
        // the vertex stands still.
        let a = self.params.dither_amplitude;
        let d = match self.dither_phase {
            0 => 0.0,
            1 => a,
            2 => 0.0,
            _ => -a,
        };
        self.dither_phase = (self.dither_phase + 1) % 4;
        d
    }

    fn apply_fallback(&mut self, perf: f64) {
        match self.params.fallback {
            FallbackPolicy::HoldLast => {}
            FallbackPolicy::GradientProbe { step } => {
                // Continue in the direction that last improved performance,
                // reverse otherwise (a one-step hill climb).
                if let Some(prev) = self.prev_perf {
                    let moved = self.bound - self.prev_bound;
                    let improved = perf > prev;
                    let dir = if moved.abs() > f64::EPSILON {
                        if improved {
                            moved.signum()
                        } else {
                            -moved.signum()
                        }
                    } else {
                        self.probe_direction
                    };
                    self.probe_direction = dir;
                    self.bound += dir * step;
                } else {
                    self.bound += step;
                }
            }
            FallbackPolicy::ClampToSafe { bound } => {
                self.bound = f64::from(bound);
            }
        }
        if self.params.reset_after_convex > 0
            && self.consecutive_convex >= self.params.reset_after_convex
        {
            self.rls.reset_covariance();
            self.consecutive_convex = 0;
            self.diagnostics.covariance_resets += 1;
        }
    }
}

impl LoadController for ParabolaApproximation {
    fn name(&self) -> &'static str {
        "parabola-approximation"
    }

    fn update(&mut self, m: &Measurement) -> u32 {
        let p = self.params;
        let scale = f64::from(p.max_bound);
        let x = (m.observed_mpl / scale).clamp(0.0, 2.0);
        self.last_innovation = self.rls.update(&[1.0, x, x * x], m.performance);

        let old_bound = self.bound;
        if self.rls.samples() < p.warmup_samples {
            // Exploration ramp: spread the first measurements over a range
            // of loads so the first fit sees genuine variation.
            self.bound += p.warmup_step;
        } else {
            let fit = Quadratic::from_theta(self.rls.theta());
            match fit.classify(p.min_curvature) {
                FitShape::Concave { vertex } => {
                    self.consecutive_convex = 0;
                    self.diagnostics.vertex_updates += 1;
                    let target = vertex * scale;
                    let delta = (target - self.bound).clamp(-p.max_step, p.max_step);
                    self.bound += delta;
                }
                FitShape::Unusable => {
                    self.consecutive_convex += 1;
                    self.diagnostics.convex_fits += 1;
                    self.apply_fallback(m.performance);
                }
            }
        }

        self.prev_bound = old_bound;
        self.prev_perf = Some(m.performance);

        self.bound = self
            .bound
            .clamp(f64::from(p.min_bound), f64::from(p.max_bound));
        let dither = self.dither();
        clamp_bound(self.bound + dither, p.min_bound, p.max_bound)
    }

    fn current_bound(&self) -> u32 {
        clamp_bound(self.bound, self.params.min_bound, self.params.max_bound)
    }

    fn reset(&mut self) {
        self.rls.reset();
        self.bound = f64::from(self.params.initial_bound);
        self.prev_bound = self.bound;
        self.prev_perf = None;
        self.dither_phase = 0;
        self.consecutive_convex = 0;
        self.probe_direction = 1.0;
        self.last_innovation = 0.0;
        self.diagnostics = PaDiagnostics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alc_analytic::surface::{FlatHumpSurface, RidgeSurface, Schedule, Surface};

    fn drive<S: Surface>(
        ctrl: &mut ParabolaApproximation,
        surface: &S,
        steps: usize,
        interval_ms: f64,
    ) -> Vec<(f64, u32)> {
        let mut traj = Vec::with_capacity(steps);
        let mut bound = ctrl.current_bound();
        for i in 0..steps {
            let t = i as f64 * interval_ms;
            let n = f64::from(bound);
            let perf = surface.performance(n, t);
            bound = ctrl.update(&Measurement::basic(t + interval_ms, interval_ms, perf, n));
            traj.push((t, bound));
        }
        traj
    }

    fn tail_mean(traj: &[(f64, u32)], from: usize) -> f64 {
        let tail = &traj[from..];
        tail.iter().map(|&(_, b)| f64::from(b)).sum::<f64>() / tail.len() as f64
    }

    fn params_500() -> PaParams {
        PaParams {
            initial_bound: 10,
            max_bound: 500,
            ..PaParams::default()
        }
    }

    #[test]
    fn converges_to_stationary_optimum() {
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = ParabolaApproximation::new(params_500());
        let traj = drive(&mut ctrl, &surface, 300, 1000.0);
        let settled = tail_mean(&traj, 200);
        assert!(
            (settled - 150.0).abs() < 25.0,
            "settled at {settled}, optimum 150"
        );
        assert!(ctrl.diagnostics().vertex_updates > 100);
    }

    #[test]
    fn dither_keeps_oscillating_at_steady_state() {
        // Figure 14: "The oscillations of the trajectory ... are enforced
        // by the algorithm".
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = ParabolaApproximation::new(params_500());
        let traj = drive(&mut ctrl, &surface, 300, 1000.0);
        let tail: Vec<u32> = traj[250..].iter().map(|&(_, b)| b).collect();
        let min = *tail.iter().min().unwrap();
        let max = *tail.iter().max().unwrap();
        assert!(
            max - min >= 8,
            "expected enforced oscillation ≥ 2×dither, saw range {}",
            max - min
        );
    }

    #[test]
    fn tracks_jump_of_the_optimum() {
        // Figure 14's scenario.
        let surface = RidgeSurface {
            position: Schedule::Jump {
                at: 500_000.0,
                before: 300.0,
                after: 120.0,
            },
            height: Schedule::Constant(60.0),
            steepness: 2.0,
        };
        let mut ctrl = ParabolaApproximation::new(PaParams {
            initial_bound: 50,
            max_bound: 750,
            alpha: 0.9,
            ..PaParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 1000, 1000.0);
        let before = tail_mean(&traj[..500], 350);
        let after = tail_mean(&traj, 800);
        assert!((before - 300.0).abs() < 50.0, "pre-jump mean {before}");
        assert!((after - 120.0).abs() < 40.0, "post-jump mean {after}");
    }

    #[test]
    fn flat_hump_triggers_fallback_not_flight() {
        // Figure 7: a broad flat hump makes fits convex; the controller
        // must not run away to max_bound.
        let surface = FlatHumpSurface {
            center: Schedule::Constant(200.0),
            height: Schedule::Constant(50.0),
            width: 120.0,
        };
        let mut ctrl = ParabolaApproximation::new(params_500());
        let traj = drive(&mut ctrl, &surface, 400, 1000.0);
        let settled = tail_mean(&traj, 200);
        // Anywhere on the plateau is fine; the failure mode would be
        // pinning at min or max bound.
        assert!(
            (80.0..=420.0).contains(&settled),
            "bound fled the plateau: {settled}"
        );
        assert!(
            ctrl.diagnostics().convex_fits > 0,
            "flat hump should produce convex fits at least transiently"
        );
    }

    #[test]
    fn abrupt_shape_change_recovers() {
        // Figure 8: after the change the bound sits deep in the (convex)
        // thrashing region; covariance reset + probing must bring it back.
        let surface = RidgeSurface {
            position: Schedule::Jump {
                at: 300_000.0,
                before: 400.0,
                after: 80.0,
            },
            height: Schedule::Jump {
                at: 300_000.0,
                before: 80.0,
                after: 40.0,
            },
            steepness: 3.0,
        };
        let mut ctrl = ParabolaApproximation::new(PaParams {
            initial_bound: 50,
            max_bound: 600,
            alpha: 0.9,
            ..PaParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 900, 1000.0);
        let after = tail_mean(&traj, 700);
        assert!(
            (after - 80.0).abs() < 40.0,
            "failed to recover to new optimum: {after}"
        );
    }

    #[test]
    fn covariance_reset_fires_after_persistent_convexity() {
        let mut ctrl = ParabolaApproximation::new(PaParams {
            warmup_samples: 4,
            reset_after_convex: 3,
            fallback: FallbackPolicy::HoldLast,
            ..params_500()
        });
        // Feed measurements that straddle a performance *minimum* at
        // n = 100 (V shape): every honest quadratic fit opens upward.
        let cycle = [40.0f64, 100.0, 160.0];
        for i in 0..60usize {
            let n = cycle[i % cycle.len()];
            let perf = (n - 100.0).abs();
            ctrl.update(&Measurement::basic(i as f64, 1.0, perf, n));
        }
        let d = ctrl.diagnostics();
        assert!(d.convex_fits > 10, "convex fits not detected: {d:?}");
        assert!(
            d.covariance_resets >= 1,
            "no covariance reset despite persistent convex fits: {d:?}"
        );
    }

    #[test]
    fn hold_last_fallback_freezes_base_bound() {
        let mut ctrl = ParabolaApproximation::new(PaParams {
            warmup_samples: 2,
            fallback: FallbackPolicy::HoldLast,
            reset_after_convex: 0,
            dither_amplitude: 0.0,
            ..params_500()
        });
        let mut bound = ctrl.current_bound();
        for i in 0..40 {
            let n = f64::from(bound);
            let perf = (n - 100.0).abs(); // convex
            bound = ctrl.update(&Measurement::basic(f64::from(i), 1.0, perf, n));
        }
        let frozen = ctrl.base_bound();
        for i in 40..50 {
            let n = f64::from(bound);
            let perf = (n - 100.0).abs();
            bound = ctrl.update(&Measurement::basic(f64::from(i), 1.0, perf, n));
        }
        assert_eq!(ctrl.base_bound(), frozen);
    }

    #[test]
    fn clamp_to_safe_fallback_goes_to_safe_bound() {
        let mut ctrl = ParabolaApproximation::new(PaParams {
            warmup_samples: 2,
            fallback: FallbackPolicy::ClampToSafe { bound: 42 },
            reset_after_convex: 0,
            dither_amplitude: 0.0,
            ..params_500()
        });
        let cycle = [40.0f64, 100.0, 160.0];
        for i in 0..30usize {
            let n = cycle[i % cycle.len()];
            let perf = (n - 100.0).abs(); // V shape: convex fits
            ctrl.update(&Measurement::basic(i as f64, 1.0, perf, n));
        }
        assert_eq!(ctrl.base_bound(), 42.0);
    }

    #[test]
    fn bounds_are_respected_always() {
        let surface = RidgeSurface::stationary(900.0, 100.0, 2.0); // beyond max
        let mut ctrl = ParabolaApproximation::new(PaParams {
            initial_bound: 5,
            min_bound: 2,
            max_bound: 300,
            ..PaParams::default()
        });
        let traj = drive(&mut ctrl, &surface, 300, 1000.0);
        for &(_, b) in &traj {
            assert!((2..=300).contains(&b), "bound {b} escaped [2,300]");
        }
    }

    #[test]
    fn fitted_parabola_denormalizes_correctly() {
        // Train on an exact parabola of n; the denormalized fit must match.
        let mut ctrl = ParabolaApproximation::new(PaParams {
            max_bound: 1000,
            alpha: 1.0,
            initial_covariance: 1e8,
            warmup_samples: 0,
            dither_amplitude: 0.0,
            ..PaParams::default()
        });
        for i in 0..100 {
            let n = 50.0 + f64::from(i % 20) * 20.0;
            let perf = 10.0 + 0.4 * n - 0.001 * n * n;
            ctrl.update(&Measurement::basic(f64::from(i), 1.0, perf, n));
        }
        let q = ctrl.fitted_parabola();
        assert!((q.a0 - 10.0).abs() < 0.2, "a0 {}", q.a0);
        assert!((q.a1 - 0.4).abs() < 0.01, "a1 {}", q.a1);
        assert!((q.a2 + 0.001).abs() < 1e-4, "a2 {}", q.a2);
        // And the implied vertex is -a1/(2 a2) = 200.
        assert!((q.vertex().unwrap() - 200.0).abs() < 5.0);
    }

    #[test]
    fn reset_restores_everything() {
        let mut ctrl = ParabolaApproximation::new(params_500());
        let surface = RidgeSurface::stationary(100.0, 10.0, 2.0);
        drive(&mut ctrl, &surface, 50, 1000.0);
        ctrl.reset();
        assert_eq!(ctrl.current_bound(), 10);
        assert_eq!(ctrl.diagnostics(), PaDiagnostics::default());
    }

    #[test]
    fn noise_robustness_on_stationary_ridge() {
        let surface = RidgeSurface::stationary(150.0, 100.0, 2.0);
        let mut ctrl = ParabolaApproximation::new(params_500());
        let mut state = 7u64;
        let mut noise = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut bound = ctrl.current_bound();
        let mut tail = Vec::new();
        for i in 0..500 {
            let n = f64::from(bound);
            let perf = surface.performance(n, 0.0) * (1.0 + 0.2 * noise());
            bound = ctrl.update(&Measurement::basic(f64::from(i) * 1000.0, 1000.0, perf, n));
            if i >= 300 {
                tail.push(f64::from(bound));
            }
        }
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 150.0).abs() < 40.0,
            "noisy steady state drifted to {mean}"
        );
    }
}
