//! MPL load controllers.
//!
//! A [`LoadController`] consumes one [`Measurement`] per interval and emits
//! the admission bound `n*` to enforce until the next interval. §3 frames
//! this as a dynamic optimum search: "Starting at time t=0 with an
//! arbitrary load value, the algorithm has to find the 'ridge' of the
//! 'mountain' and to track it along the time axis", knowing only realized
//! (load, performance) pairs from the past.
//!
//! Implementations:
//!
//! * [`IncrementalSteps`] — §4.1, hill climbing in zig-zag fashion.
//! * [`ParabolaApproximation`] — §4.2, RLS parabola fit + vertex seeking.
//! * [`Hybrid`] — IS bootstrap + PA refinement, exploiting §9's
//!   complementarity finding (IS reacts fast, PA tracks accurately).
//! * [`SelfTuningIs`] / [`SelfTuningPa`] — the §5 outer control loops
//!   auto-tuning the inner parameters (β and α respectively).
//! * [`FixedBound`] / [`Unlimited`] — the §1 strawmen ("fixed upper
//!   bound" as shipped by commercial systems; "do nothing").
//! * [`TayRule`] / [`IyerRule`] — §1's "theoretically derived rules of
//!   thumb" (`k²n/D < 1.5`, conflicts/txn ≤ 0.75).
//! * [`RetryBudget`] — token-bucket retry budgeting, mirroring the
//!   runtime's `RetryBudgetLaw` decision-for-decision so retry-storm
//!   gate logs replay through either side of the conformance pin.

mod fixed;
mod hybrid;
mod incremental;
mod outer;
mod parabola;
mod retry_budget;
mod rules;

pub use fixed::{FixedBound, Unlimited};
pub use hybrid::{Hybrid, HybridDiagnostics, HybridParams, HybridPhase};
pub use incremental::{IncrementalSteps, IsParams};
pub use outer::{OuterParams, PaOuterParams, SelfTuningIs, SelfTuningPa};
pub use parabola::{FallbackPolicy, PaParams, ParabolaApproximation};
pub use retry_budget::{RetryBudget, RetryBudgetParams};
pub use rules::{IyerRule, IyerRuleParams, TayRule};

use crate::measure::Measurement;

/// A feedback controller for the concurrency-level bound `n*`.
///
/// `Send` is a supertrait so boxed controllers can cross thread
/// boundaries — the embeddable runtime hands them to its control loop,
/// and every implementation is a plain data struct anyway.
pub trait LoadController: Send {
    /// Controller name for tables and trajectory labels.
    fn name(&self) -> &'static str;

    /// Consumes the latest interval measurement and returns the bound to
    /// enforce for the next interval.
    fn update(&mut self, m: &Measurement) -> u32;

    /// The bound currently in force (before the next `update`).
    fn current_bound(&self) -> u32;

    /// Restores the initial state (used between experiment repetitions).
    fn reset(&mut self);
}

/// Clamps a real-valued bound into the controller's `[min, max]` integer
/// range. Shared by all implementations.
pub(crate) fn clamp_bound(raw: f64, min_bound: u32, max_bound: u32) -> u32 {
    if !raw.is_finite() {
        return if raw > 0.0 { max_bound } else { min_bound };
    }
    let rounded = raw.round();
    if rounded < f64::from(min_bound) {
        min_bound
    } else if rounded > f64::from(max_bound) {
        max_bound
    } else {
        rounded as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_bound_basics() {
        assert_eq!(clamp_bound(5.4, 1, 10), 5);
        assert_eq!(clamp_bound(5.5, 1, 10), 6);
        assert_eq!(clamp_bound(-3.0, 1, 10), 1);
        assert_eq!(clamp_bound(99.0, 1, 10), 10);
    }

    #[test]
    fn clamp_bound_nonfinite() {
        assert_eq!(clamp_bound(f64::NAN, 1, 10), 1);
        assert_eq!(clamp_bound(f64::INFINITY, 1, 10), 10);
        assert_eq!(clamp_bound(f64::NEG_INFINITY, 1, 10), 1);
    }
}
