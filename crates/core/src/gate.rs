//! The admission-control gate (§4.3).
//!
//! "The admission to the transaction processing system is controlled by a
//! 'gate' that accepts an arriving transaction if and only if the actual
//! load n is below the current threshold n*. Otherwise the transaction has
//! to wait in a FCFS-queue. Waiting transactions are admitted as soon as
//! n < n* holds again."
//!
//! [`AdaptiveGate`] is that mechanism as a real, thread-safe concurrency
//! limiter — usable in an actual server, not only in the simulator (which
//! has its own event-driven gate in `alc-tpsim`). Properties:
//!
//! * **FCFS fairness**: admissions happen strictly in arrival order
//!   (ticket-based), matching the paper's queue discipline.
//! * **Live limit updates**: a controller thread can lower or raise `n*`
//!   at any time; raising wakes waiters immediately. Lowering never aborts
//!   running work — the paper's recommended admission-only realization
//!   ("not displacing transactions has a smoothing effect … that supports
//!   controller stability"); the population drains to the new limit by
//!   normal departures.
//! * **RAII permits**: dropping a [`Permit`]/[`OwnedPermit`] releases the
//!   slot, so a panicking worker cannot leak MPL capacity.
//! * **Wait statistics** for the measurement pipeline.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Snapshot of the gate's counters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GateStats {
    /// Current admission limit `n*`.
    pub limit: u32,
    /// Permits currently held (the actual load `n`).
    pub in_use: u32,
    /// Arrivals currently blocked in the FCFS queue.
    pub waiting: u32,
    /// Total admissions since construction.
    pub total_admitted: u64,
    /// Acquisitions abandoned (timeout) since construction.
    pub total_abandoned: u64,
    /// Mean time admitted arrivals spent queued, milliseconds.
    pub mean_wait_ms: f64,
}

#[derive(Debug)]
struct State {
    limit: u32,
    in_use: u32,
    next_ticket: u64,
    serving: u64,
    abandoned: HashSet<u64>,
    waiting: u32,
    total_admitted: u64,
    total_abandoned: u64,
    wait_sum_ms: f64,
    wait_count: u64,
}

impl State {
    /// Skips over tickets whose owners gave up so the queue never stalls
    /// behind a ghost.
    fn advance_past_abandoned(&mut self) {
        while self.abandoned.remove(&self.serving) {
            self.serving += 1;
        }
    }

    fn head_can_enter(&self, ticket: u64) -> bool {
        self.serving == ticket && self.in_use < self.limit
    }

    fn admit(&mut self, waited: Duration) {
        self.serving += 1;
        self.in_use += 1;
        self.total_admitted += 1;
        self.wait_sum_ms += waited.as_secs_f64() * 1000.0;
        self.wait_count += 1;
        self.advance_past_abandoned();
    }
}

/// A thread-safe, FIFO-fair concurrency limiter with a live-updatable
/// limit. See the module docs for the design rationale.
#[derive(Debug)]
pub struct AdaptiveGate {
    state: Mutex<State>,
    cond: Condvar,
}

impl AdaptiveGate {
    /// Creates a gate admitting at most `limit` concurrent holders.
    pub fn new(limit: u32) -> Self {
        AdaptiveGate {
            state: Mutex::new(State {
                limit,
                in_use: 0,
                next_ticket: 0,
                serving: 0,
                abandoned: HashSet::new(),
                waiting: 0,
                total_admitted: 0,
                total_abandoned: 0,
                wait_sum_ms: 0.0,
                wait_count: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Blocks until admitted; returns a permit that releases on drop.
    pub fn acquire(&self) -> Permit<'_> {
        self.acquire_inner(None)
            .expect("acquire without deadline cannot time out");
        Permit { gate: self }
    }

    /// Blocks until admitted or until `timeout` elapses.
    // The gate is the documented real-time component: wall-clock
    // deadlines are its job, and the simulator never calls it.
    #[allow(clippy::disallowed_methods)]
    pub fn acquire_timeout(&self, timeout: Duration) -> Option<Permit<'_>> {
        self.acquire_inner(Some(Instant::now() + timeout))
            .map(|()| Permit { gate: self })
    }

    /// Like [`AdaptiveGate::acquire`] but returns an `Arc`-owning permit
    /// that can move across threads and outlive the caller's borrow.
    pub fn acquire_owned(self: &Arc<Self>) -> OwnedPermit {
        self.acquire_inner(None)
            .expect("acquire without deadline cannot time out");
        OwnedPermit {
            gate: Arc::clone(self),
        }
    }

    /// Admits immediately if the queue is empty and capacity is free;
    /// never blocks and never jumps the FCFS queue.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut s = self.state.lock();
        s.advance_past_abandoned();
        if s.serving == s.next_ticket && s.in_use < s.limit {
            s.next_ticket += 1;
            s.admit(Duration::ZERO);
            Some(Permit { gate: self })
        } else {
            None
        }
    }

    #[allow(clippy::disallowed_methods)] // real-time wait timing, see acquire_timeout
    fn acquire_inner(&self, deadline: Option<Instant>) -> Option<()> {
        let start = Instant::now();
        let mut s = self.state.lock();
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.advance_past_abandoned();
        if s.head_can_enter(ticket) {
            s.admit(Duration::ZERO);
            return Some(());
        }
        s.waiting += 1;
        loop {
            match deadline {
                None => self.cond.wait(&mut s),
                Some(d) => {
                    if self.cond.wait_until(&mut s, d).timed_out() {
                        s.advance_past_abandoned();
                        if s.head_can_enter(ticket) {
                            // Won the race at the deadline: still admitted.
                            s.waiting -= 1;
                            s.admit(start.elapsed());
                            drop(s);
                            self.cond.notify_all();
                            return Some(());
                        }
                        s.waiting -= 1;
                        s.total_abandoned += 1;
                        s.abandoned.insert(ticket);
                        s.advance_past_abandoned();
                        drop(s);
                        self.cond.notify_all();
                        return None;
                    }
                }
            }
            s.advance_past_abandoned();
            if s.head_can_enter(ticket) {
                s.waiting -= 1;
                s.admit(start.elapsed());
                drop(s);
                // The next ticket holder may also fit (e.g. after a limit
                // raise); cascade the wake-up.
                self.cond.notify_all();
                return Some(());
            }
        }
    }

    fn release(&self) {
        let mut s = self.state.lock();
        debug_assert!(s.in_use > 0, "release without a held permit");
        s.in_use = s.in_use.saturating_sub(1);
        drop(s);
        self.cond.notify_all();
    }

    /// Replaces the admission limit `n*`. Raising it wakes queued
    /// arrivals; lowering it only affects future admissions (no
    /// displacement — §4.3).
    pub fn set_limit(&self, limit: u32) {
        let mut s = self.state.lock();
        s.limit = limit;
        drop(s);
        self.cond.notify_all();
    }

    /// The current admission limit.
    pub fn limit(&self) -> u32 {
        self.state.lock().limit
    }

    /// Permits currently held.
    pub fn in_use(&self) -> u32 {
        self.state.lock().in_use
    }

    /// A consistent snapshot of all counters.
    pub fn stats(&self) -> GateStats {
        let s = self.state.lock();
        GateStats {
            limit: s.limit,
            in_use: s.in_use,
            waiting: s.waiting,
            total_admitted: s.total_admitted,
            total_abandoned: s.total_abandoned,
            mean_wait_ms: if s.wait_count == 0 {
                0.0
            } else {
                s.wait_sum_ms / s.wait_count as f64
            },
        }
    }
}

/// A borrowed admission permit; releases its slot on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdaptiveGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// An owning admission permit (`Arc`-backed); releases its slot on drop.
#[derive(Debug)]
pub struct OwnedPermit {
    gate: Arc<AdaptiveGate>,
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
// Tests drive the live gate with real threads; sleeps/instants are the workload.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI32, AtomicU32, Ordering};
    use std::thread;

    #[test]
    fn basic_acquire_release() {
        let gate = AdaptiveGate::new(2);
        let p1 = gate.acquire();
        let p2 = gate.acquire();
        assert_eq!(gate.in_use(), 2);
        assert!(gate.try_acquire().is_none());
        drop(p1);
        assert_eq!(gate.in_use(), 1);
        let p3 = gate.try_acquire();
        assert!(p3.is_some());
        drop(p2);
        drop(p3);
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn permit_drop_on_panic_path_releases() {
        let gate = AdaptiveGate::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _p = gate.acquire();
            panic!("worker died");
        }));
        assert!(result.is_err());
        // The permit must have been returned.
        assert_eq!(gate.in_use(), 0);
        let _p = gate.try_acquire().expect("slot must be free again");
    }

    #[test]
    fn never_exceeds_limit_under_contention() {
        let gate = Arc::new(AdaptiveGate::new(4));
        let concurrent = Arc::new(AtomicI32::new(0));
        let peak = Arc::new(AtomicI32::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let gate = Arc::clone(&gate);
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let _p = gate.acquire_owned();
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 4, "peak {:?}", peak);
        assert_eq!(gate.in_use(), 0);
        assert_eq!(gate.stats().total_admitted, 16 * 50);
    }

    #[test]
    fn fifo_admission_order() {
        let gate = Arc::new(AdaptiveGate::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let blocker = gate.acquire();
        let started = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for i in 0..5u32 {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            let started = Arc::clone(&started);
            handles.push(thread::spawn(move || {
                // Serialize queue entry so ticket order == i order.
                while started.load(Ordering::SeqCst) != i {
                    std::hint::spin_loop();
                }
                let handle = thread::spawn({
                    let gate = Arc::clone(&gate);
                    let order = Arc::clone(&order);
                    move || {
                        let _p = gate.acquire_owned();
                        order.lock().push(i);
                    }
                });
                // Give the inner thread time to enqueue before releasing
                // the next spawner. `waiting` alone is not a safe condition:
                // it peaks at 5 only transiently, and on a single-core box
                // this thread can miss that window entirely once the main
                // thread drops the blocker and admissions begin. Admissions
                // are monotonic, so `total_admitted > 1` (beyond the
                // blocker's own) is a sticky "queue order already locked in"
                // signal.
                loop {
                    let s = gate.stats();
                    if s.waiting > i || s.total_admitted > 1 {
                        break;
                    }
                    std::thread::yield_now();
                }
                started.store(i + 1, Ordering::SeqCst);
                handle.join().unwrap();
            }));
        }
        while gate.stats().waiting < 5 {
            std::thread::yield_now();
        }
        drop(blocker);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn raising_limit_wakes_waiters() {
        let gate = Arc::new(AdaptiveGate::new(0));
        let admitted = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let gate = Arc::clone(&gate);
            let admitted = Arc::clone(&admitted);
            handles.push(thread::spawn(move || {
                let _p = gate.acquire_owned();
                admitted.fetch_add(1, Ordering::SeqCst);
            }));
        }
        while gate.stats().waiting < 3 {
            std::thread::yield_now();
        }
        assert_eq!(admitted.load(Ordering::SeqCst), 0);
        gate.set_limit(3);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(admitted.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn lowering_limit_is_admission_only() {
        // Holders are never displaced; in_use may exceed the new limit
        // until permits drain.
        let gate = AdaptiveGate::new(2);
        let p1 = gate.acquire();
        let p2 = gate.acquire();
        gate.set_limit(1);
        assert_eq!(gate.in_use(), 2, "no displacement on limit drop");
        assert!(gate.try_acquire().is_none());
        drop(p1);
        assert!(gate.try_acquire().is_none(), "still at the new limit");
        drop(p2);
        assert!(gate.try_acquire().is_some());
    }

    #[test]
    fn timeout_gives_up_and_queue_moves_on() {
        let gate = Arc::new(AdaptiveGate::new(1));
        let blocker = gate.acquire();
        // This waiter times out…
        assert!(gate
            .acquire_timeout(Duration::from_millis(30))
            .is_none());
        assert_eq!(gate.stats().total_abandoned, 1);
        // …and must not wedge the queue for the next arrival.
        let gate2 = Arc::clone(&gate);
        let h = thread::spawn(move || {
            let _p = gate2.acquire_owned();
        });
        drop(blocker);
        h.join().unwrap();
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn timeout_zero_on_free_gate_still_admits() {
        let gate = AdaptiveGate::new(1);
        let p = gate.acquire_timeout(Duration::ZERO);
        assert!(p.is_some());
    }

    #[test]
    fn try_acquire_respects_queue() {
        let gate = Arc::new(AdaptiveGate::new(1));
        let blocker = gate.acquire();
        let gate2 = Arc::clone(&gate);
        let h = thread::spawn(move || {
            let _p = gate2.acquire_owned();
        });
        while gate.stats().waiting < 1 {
            std::thread::yield_now();
        }
        drop(blocker);
        // Even the instant the slot frees, try_acquire must not overtake
        // the queued waiter.
        let stolen = gate.try_acquire();
        assert!(
            stolen.is_none() || gate.stats().waiting == 0,
            "try_acquire jumped the FCFS queue"
        );
        drop(stolen);
        h.join().unwrap();
    }

    #[test]
    fn stats_track_waiting_and_wait_time() {
        let gate = Arc::new(AdaptiveGate::new(1));
        let blocker = gate.acquire();
        let gate2 = Arc::clone(&gate);
        let h = thread::spawn(move || {
            let _p = gate2.acquire_owned();
        });
        while gate.stats().waiting < 1 {
            std::thread::yield_now();
        }
        thread::sleep(Duration::from_millis(20));
        drop(blocker);
        h.join().unwrap();
        let stats = gate.stats();
        assert_eq!(stats.waiting, 0);
        assert_eq!(stats.total_admitted, 2);
        assert!(
            stats.mean_wait_ms >= 5.0,
            "queued thread waited ~20ms, stats say {}",
            stats.mean_wait_ms
        );
    }

    #[test]
    fn zero_limit_blocks_everyone() {
        let gate = AdaptiveGate::new(0);
        assert!(gate.try_acquire().is_none());
        assert!(gate.acquire_timeout(Duration::from_millis(10)).is_none());
    }
}
