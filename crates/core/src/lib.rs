//! `alc-core` — adaptive load control for transaction processing systems.
//!
//! This crate is the reproduction's primary contribution, after Heiss &
//! Wagner, *Adaptive Load Control in Transaction Processing Systems*,
//! VLDB 1991: feedback controllers that adjust an upper bound `n*` on the
//! number of concurrently running transactions (the multiprogramming
//! level, MPL) so the system sits at the peak of its load–throughput
//! function instead of thrashing beyond it.
//!
//! # The pieces
//!
//! * [`controller`] — the [`controller::LoadController`] trait and its
//!   implementations:
//!   [`controller::IncrementalSteps`] (§4.1, zig-zag ridge tracking),
//!   [`controller::ParabolaApproximation`] (§4.2, recursive least squares
//!   with exponentially fading memory and vertex seeking), plus the
//!   baselines the paper argues against: a fixed bound, no bound, Tay's
//!   `k²n/D < 1.5` rule and Iyer's `conflicts/txn ≤ 0.75` rule (§1).
//! * [`estimator`] — the numerical machinery: RLS with forgetting
//!   ([`estimator::Rls`]), EWMA smoothing, quadratic-model utilities.
//! * [`meta`] — the layer *above* the MPL controllers: closed-loop
//!   concurrency-control **protocol** selection ([`meta::MetaPolicy`]),
//!   with threshold/restart-rate ladders and O|R|P|E-style shadow
//!   scoring, all wrapped in dwell/cooldown/hysteresis guards.
//! * [`measure`] — the [`measure::Measurement`] fed to controllers once
//!   per interval, and the performance indicators of §6.
//! * [`sampler`] — building measurements from raw departure events,
//!   including the adaptive interval sizing of §5 ("rather hundreds of
//!   departures than some tens").
//! * [`gate`] — a production-grade, thread-safe admission gate
//!   ([`gate::AdaptiveGate`]): FIFO admission under a live-updatable
//!   limit, RAII permits, wait statistics. This is the enforcement
//!   mechanism of §4.3 usable in a real server, not only in simulation.
//! * [`gatelog`] — the replayable record of what the control stack
//!   observes ([`gatelog::GateEvent`], [`gatelog::GateLogSink`]): the
//!   shared vocabulary that lets `alc-runtime` replay simulator logs and
//!   prove decision-sequence conformance.
//! * [`pipeline`] — [`pipeline::ControlLoop`] wires gate + sampler +
//!   controller together for runtime (non-simulated) use.
//!
//! # Quick start
//!
//! ```
//! use alc_core::controller::{IncrementalSteps, IsParams, LoadController};
//! use alc_core::measure::Measurement;
//!
//! let mut ctrl = IncrementalSteps::new(IsParams {
//!     initial_bound: 10,
//!     min_bound: 1,
//!     max_bound: 100,
//!     ..IsParams::default()
//! });
//!
//! // Feed one measurement per interval; the controller returns the new MPL
//! // bound. Here performance improves as load grows, so the bound rises.
//! let mut bound = ctrl.current_bound();
//! for step in 0..10 {
//!     let m = Measurement::basic(step as f64 * 1000.0, 1000.0, bound as f64, bound as f64);
//!     bound = ctrl.update(&m);
//! }
//! assert!(bound > 10);
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod estimator;
pub mod gate;
pub mod gatelog;
pub mod measure;
pub mod meta;
pub mod pipeline;
pub mod sampler;

pub use controller::{
    FixedBound, IncrementalSteps, IsParams, IyerRule, LoadController, PaParams,
    ParabolaApproximation, TayRule, Unlimited,
};
pub use gate::{AdaptiveGate, GateStats, Permit};
pub use gatelog::{GateEvent, GateLogSink, MemorySink};
pub use measure::{Measurement, PerfIndicator};
