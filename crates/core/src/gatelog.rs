//! The gate log: a replayable record of everything the control stack
//! observes.
//!
//! A controller's decision sequence is a pure function of the event
//! stream its [`crate::sampler::IntervalSampler`] absorbs — in-system
//! population changes, commits (with response time and observed
//! conflicts), aborts — plus the harvest instants. [`GateEvent`] captures
//! exactly that vocabulary, so a log recorded from *any* driver (the
//! simulator, the embeddable `alc-runtime` gate, a production server) can
//! be replayed through a freshly constructed sampler + controller and
//! must reproduce the recorded [`GateEvent::Decision`] sequence
//! bit-for-bit. That replay identity is what lets the simulator act as a
//! conformance harness for production control code.
//!
//! Events serialize through the workspace serde shim; the JSONL framing
//! (one externally-tagged event per line) lives in `alc-runtime`, which
//! also provides the replay driver. This module only defines the
//! vocabulary and the [`GateLogSink`] trait the recorders call, keeping
//! `alc-core` free of I/O.

use serde::{Deserialize, Serialize};

/// One observable event at the admission gate.
///
/// Field order and naming are part of the on-disk format: the JSONL
/// writer emits fields in declaration order, and the conformance pin
/// compares serialized decision lines byte-for-byte. Timestamps are
/// event-time milliseconds from the driver's epoch (simulation time for
/// the simulator, time since `Runtime` construction for the runtime) and
/// round-trip exactly through the shim's shortest-representation f64
/// formatting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GateEvent {
    /// The in-system transaction population changed (admission,
    /// departure, displacement, or a bound change admitting waiters).
    Mpl {
        /// Event time, ms.
        at_ms: f64,
        /// Transactions inside the gate after the change.
        in_system: u32,
    },
    /// A transaction committed.
    Commit {
        /// Event time, ms.
        at_ms: f64,
        /// Submission → commit response time, ms.
        response_ms: f64,
        /// Conflicts observed at successful certification (or lock
        /// waits under blocking protocols).
        conflicts: u64,
    },
    /// A transaction aborted (and will restart).
    Abort {
        /// Event time, ms.
        at_ms: f64,
        /// Conflicts that caused the abort.
        conflicts: u64,
    },
    /// The controller harvested the open interval and chose an MPL
    /// bound. Replay re-harvests at `at_ms` and must re-derive `bound`.
    Decision {
        /// Harvest/decision time, ms.
        at_ms: f64,
        /// The MPL bound the controller returned.
        bound: u32,
    },
}

impl GateEvent {
    /// The event's timestamp, ms.
    pub fn at_ms(&self) -> f64 {
        match *self {
            GateEvent::Mpl { at_ms, .. }
            | GateEvent::Commit { at_ms, .. }
            | GateEvent::Abort { at_ms, .. }
            | GateEvent::Decision { at_ms, .. } => at_ms,
        }
    }
}

/// Where recorded [`GateEvent`]s go.
///
/// Implementations must be cheap on the hot path (the simulator's engine
/// and the runtime's `admit`/`complete` call this inline); buffering
/// belongs in the sink, not the caller.
pub trait GateLogSink: Send {
    /// Absorbs one event.
    fn record(&mut self, event: &GateEvent);
}

/// A sink buffering events in memory, for tests and post-run extraction.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<GateEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[GateEvent] {
        &self.events
    }

    /// Consumes the sink, yielding its events.
    pub fn into_events(self) -> Vec<GateEvent> {
        self.events
    }
}

impl GateLogSink for MemorySink {
    fn record(&mut self, event: &GateEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_shim() {
        let events = vec![
            GateEvent::Mpl {
                at_ms: 0.125,
                in_system: 3,
            },
            GateEvent::Commit {
                at_ms: 17.3,
                response_ms: 42.000000000000014,
                conflicts: 2,
            },
            GateEvent::Abort {
                at_ms: 18.0,
                conflicts: 5,
            },
            GateEvent::Decision {
                at_ms: 1000.0,
                bound: 12,
            },
        ];
        for e in &events {
            let v = e.to_value();
            let back = GateEvent::from_value(&v).expect("round trip");
            assert_eq!(*e, back);
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut sink = MemorySink::new();
        let a = GateEvent::Mpl {
            at_ms: 1.0,
            in_system: 1,
        };
        let b = GateEvent::Decision {
            at_ms: 2.0,
            bound: 4,
        };
        sink.record(&a);
        sink.record(&b);
        assert_eq!(sink.events(), &[a.clone(), b.clone()]);
        assert_eq!(sink.into_events(), vec![a, b]);
    }

    #[test]
    fn at_ms_projects_every_variant() {
        assert_eq!(
            GateEvent::Abort {
                at_ms: 7.5,
                conflicts: 0
            }
            .at_ms(),
            7.5
        );
        assert_eq!(
            GateEvent::Commit {
                at_ms: 8.5,
                response_ms: 1.0,
                conflicts: 0
            }
            .at_ms(),
            8.5
        );
    }
}
