//! Concurrency stress tests of the adaptive gate: many threads, live
//! limit changes, timeout storms. These are the conditions a production
//! admission controller actually faces.

// The point of this suite is to exercise the live, wall-clock gate with
// real threads — sleeps and timeouts ARE the workload here.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use alc_core::gate::AdaptiveGate;

#[test]
fn limit_churn_never_overschedules() {
    let gate = Arc::new(AdaptiveGate::new(4));
    let running = Arc::new(AtomicBool::new(true));
    let concurrent = Arc::new(AtomicI64::new(0));
    let violations = Arc::new(AtomicI64::new(0));

    // A controller thread sweeps the limit up and down.
    let limiter = {
        let gate = Arc::clone(&gate);
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            let mut limit = 1u32;
            let mut up = true;
            // SeqCst: this load is the first link in the chain that lets
            // drain-admitted workers trust their own `running` read (store
            // in main → this load → drain set_limit under the gate mutex →
            // worker admission → worker load).
            while running.load(Ordering::SeqCst) {
                gate.set_limit(limit);
                if up {
                    limit += 1;
                    if limit >= 12 {
                        up = false;
                    }
                } else {
                    limit -= 1;
                    if limit <= 1 {
                        up = true;
                    }
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            gate.set_limit(64); // let everyone drain
        })
    };

    let mut workers = Vec::new();
    for _ in 0..16 {
        let gate = Arc::clone(&gate);
        let running = Arc::clone(&running);
        let concurrent = Arc::clone(&concurrent);
        let violations = Arc::clone(&violations);
        workers.push(std::thread::spawn(move || {
            while running.load(Ordering::Relaxed) {
                let permit = gate.acquire_owned();
                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                // The limit is in motion; admission-only semantics allow
                // in-flight work to exceed a *freshly lowered* limit, but
                // never the historical maximum the limiter ever set — while
                // the churn is live. The final drain (`set_limit(64)` after
                // shutdown) releases every blocked worker at once, so a
                // worker admitted by it must not count its burst: re-check
                // `running` after admission. SeqCst pairs with the store in
                // the main thread so a worker admitted by the drain cannot
                // observe a stale `true`.
                if now > 12 && running.load(Ordering::SeqCst) {
                    violations.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::yield_now();
                concurrent.fetch_sub(1, Ordering::SeqCst);
                drop(permit);
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(300));
    running.store(false, Ordering::SeqCst);
    limiter.join().unwrap();
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(
        violations.load(Ordering::SeqCst),
        0,
        "admissions exceeded the maximum limit ever set"
    );
    assert_eq!(gate.in_use(), 0);
}

#[test]
fn timeout_storm_leaves_consistent_state() {
    let gate = Arc::new(AdaptiveGate::new(1));
    let blocker = gate.acquire();
    let mut handles = Vec::new();
    for _ in 0..12 {
        let gate = Arc::clone(&gate);
        handles.push(std::thread::spawn(move || {
            let mut gave_up = 0;
            for _ in 0..20 {
                if gate.acquire_timeout(Duration::from_micros(100)).is_none() {
                    gave_up += 1;
                }
            }
            gave_up
        }));
    }
    let abandoned: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(abandoned > 0, "storm produced no timeouts at all");
    drop(blocker);
    // After the storm, the gate must be fully functional and FIFO-clean.
    let stats = gate.stats();
    assert_eq!(stats.waiting, 0);
    assert_eq!(stats.total_abandoned, abandoned as u64);
    let p1 = gate.acquire();
    assert!(gate.try_acquire().is_none());
    drop(p1);
    assert!(gate.try_acquire().is_some());
}

#[test]
fn throughput_under_contention_is_live() {
    // Liveness: with a small limit and many threads, everyone keeps
    // making progress (no lost wakeups).
    let gate = Arc::new(AdaptiveGate::new(2));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let gate = Arc::clone(&gate);
        handles.push(std::thread::spawn(move || {
            for _ in 0..200 {
                let p = gate.acquire_owned();
                std::hint::black_box(&p);
            }
        }));
    }
    for h in handles {
        h.join().expect("a worker wedged");
    }
    assert_eq!(gate.stats().total_admitted, 8 * 200);
}

#[test]
fn raising_limit_mid_queue_admits_in_order() {
    let gate = Arc::new(AdaptiveGate::new(0));
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let release = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for i in 0..6u32 {
        // Serialize enqueueing so ticket order is deterministic.
        while gate.stats().waiting < i {
            std::thread::yield_now();
        }
        let gate = Arc::clone(&gate);
        let order = Arc::clone(&order);
        let release = Arc::clone(&release);
        handles.push(std::thread::spawn(move || {
            let _p = gate.acquire_owned();
            order.lock().push(i);
            // Hold the permit until the test is done raising, so each
            // raise admits exactly one waiter (a dropped permit would
            // admit the next one out from under the raise sequence).
            while !release.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(50));
            }
        }));
    }
    while gate.stats().waiting < 6 {
        std::thread::yield_now();
    }
    // Open one slot at a time; every raise must admit exactly the FIFO
    // head, observed via its push before the next raise.
    for k in 1..=6u32 {
        gate.set_limit(k);
        while order.lock().len() < k as usize {
            std::thread::yield_now();
        }
    }
    release.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let order = order.lock();
    assert_eq!(*order, vec![0, 1, 2, 3, 4, 5], "FIFO violated across limit raises");
}
