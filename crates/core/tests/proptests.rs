//! Property-based tests of the control core: RLS correctness, controller
//! safety envelopes, and gate invariants under arbitrary operation
//! sequences.

#![allow(clippy::needless_range_loop)] // indexed matrix math in the oracle
#![allow(clippy::unwrap_used)] // test oracles are infallible by construction

use proptest::prelude::*;

use alc_core::controller::{
    Hybrid, HybridParams, IncrementalSteps, IsParams, IyerRule, IyerRuleParams, LoadController,
    OuterParams, PaOuterParams, PaParams, ParabolaApproximation, SelfTuningIs, SelfTuningPa,
};
use alc_core::estimator::Rls;
use alc_core::gate::AdaptiveGate;
use alc_core::measure::Measurement;

/// Weighted batch least squares on `[1, x, x²]` with weights `α^(N−1−i)`.
fn batch_weighted_quadratic(data: &[(f64, f64)], alpha: f64) -> [f64; 3] {
    let n = data.len();
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for (i, &(x, y)) in data.iter().enumerate() {
        let w = alpha.powi((n - 1 - i) as i32);
        let phi = [1.0, x, x * x];
        for r in 0..3 {
            for c in 0..3 {
                ata[r][c] += w * phi[r] * phi[c];
            }
            aty[r] += w * phi[r] * y;
        }
    }
    // Gauss-Jordan with partial pivoting.
    let mut m = [[0.0f64; 4]; 3];
    for i in 0..3 {
        m[i][..3].copy_from_slice(&ata[i]);
        m[i][3] = aty[i];
    }
    for col in 0..3 {
        let piv = (col..3)
            .max_by(|&a, &b| m[a][col].abs().partial_cmp(&m[b][col].abs()).unwrap())
            .unwrap();
        m.swap(col, piv);
        for row in 0..3 {
            if row != col && m[col][col].abs() > 1e-30 {
                let f = m[row][col] / m[col][col];
                for c in col..4 {
                    m[row][c] -= f * m[col][c];
                }
            }
        }
    }
    [m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]]
}

proptest! {
    /// RLS with forgetting converges to the weighted batch least-squares
    /// solution (with a diffuse prior, the two differ only through the
    /// vanishing prior term).
    #[test]
    fn rls_matches_weighted_batch_ls(
        coefs in (-5.0f64..5.0, -5.0f64..5.0, -1.0f64..1.0),
        alpha in 0.9f64..1.0,
        noise_seed in any::<u64>(),
    ) {
        let (a0, a1, a2) = coefs;
        let mut state = noise_seed;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let data: Vec<(f64, f64)> = (0..120)
            .map(|i| {
                let x = (i % 24) as f64 / 6.0;
                (x, a0 + a1 * x + a2 * x * x + 0.01 * noise())
            })
            .collect();
        let mut rls = Rls::<3>::new(alpha, 1e10);
        for &(x, y) in &data {
            rls.update(&[1.0, x, x * x], y);
        }
        let batch = batch_weighted_quadratic(&data, alpha);
        for i in 0..3 {
            prop_assert!(
                (rls.theta()[i] - batch[i]).abs() < 1e-2,
                "coef {i}: rls {} vs batch {}",
                rls.theta()[i],
                batch[i]
            );
        }
    }

    /// Both feedback controllers keep the bound inside the configured
    /// static range for ANY measurement sequence (the §5.1 safety
    /// requirement).
    #[test]
    fn controllers_respect_static_bounds(
        perfs in prop::collection::vec(0.0f64..1e6, 1..200),
        mpls in prop::collection::vec(0.0f64..2000.0, 1..200),
        min_bound in 1u32..50,
        span in 1u32..500,
    ) {
        let max_bound = min_bound + span;
        let initial = min_bound + span / 2;
        let mut is = IncrementalSteps::new(IsParams {
            initial_bound: initial,
            min_bound,
            max_bound,
            ..IsParams::default()
        });
        let mut pa = ParabolaApproximation::new(PaParams {
            initial_bound: initial,
            min_bound,
            max_bound,
            ..PaParams::default()
        });
        let mut iyer = IyerRule::new(IyerRuleParams {
            initial_bound: initial,
            min_bound,
            max_bound,
            ..IyerRuleParams::default()
        });
        let is_params = IsParams {
            initial_bound: initial,
            min_bound,
            max_bound,
            ..IsParams::default()
        };
        let pa_params = PaParams {
            initial_bound: initial,
            min_bound,
            max_bound,
            ..PaParams::default()
        };
        let mut hybrid = Hybrid::new(HybridParams {
            is: is_params,
            pa: pa_params,
            ..HybridParams::default()
        });
        let mut tuned_is = SelfTuningIs::new(is_params, OuterParams::default());
        let mut tuned_pa = SelfTuningPa::new(pa_params, PaOuterParams::default());
        for (i, (&p, &n)) in perfs.iter().zip(mpls.iter().cycle()).enumerate() {
            let m = Measurement {
                conflicts_per_txn: p / 1e5,
                ..Measurement::basic(i as f64, 1.0, p, n)
            };
            for (ctrl, b) in [
                ("is", is.update(&m)),
                ("pa", pa.update(&m)),
                ("iyer", iyer.update(&m)),
                ("hybrid", hybrid.update(&m)),
                ("self-tuning-is", tuned_is.update(&m)),
                ("self-tuning-pa", tuned_pa.update(&m)),
            ] {
                prop_assert!(
                    (min_bound..=max_bound).contains(&b),
                    "{ctrl} bound {b} escaped [{min_bound}, {max_bound}]"
                );
            }
        }
    }

    /// Gate state-machine invariants under arbitrary single-threaded
    /// operation sequences: in-use never exceeds the limit in force at
    /// admission time, permits all return, and counters balance.
    #[test]
    fn gate_state_machine_invariants(ops in prop::collection::vec(0u8..4, 1..300)) {
        let gate = AdaptiveGate::new(4);
        let mut permits = Vec::new();
        let mut limit = 4u32;
        for op in ops {
            match op {
                0 => {
                    // try_acquire: may fail; success respects the limit.
                    if let Some(p) = gate.try_acquire() {
                        prop_assert!(gate.in_use() <= limit.max(1));
                        permits.push(p);
                    } else {
                        prop_assert!(gate.in_use() >= limit || !permits.is_empty() || limit == 0);
                    }
                }
                1 => {
                    permits.pop(); // release by drop
                }
                2 => {
                    limit = (limit + 3) % 9; // 0..=8
                    gate.set_limit(limit);
                }
                _ => {
                    // timed acquire with zero patience: must not deadlock.
                    if let Some(p) = gate.acquire_timeout(std::time::Duration::ZERO) {
                        permits.push(p);
                    }
                }
            }
            prop_assert_eq!(gate.in_use() as usize, permits.len(), "permit accounting broken");
        }
        let admitted = gate.stats().total_admitted;
        drop(permits);
        prop_assert_eq!(gate.in_use(), 0, "permits leaked");
        prop_assert!(admitted >= 1 || gate.stats().total_admitted == 0);
    }

    /// IS converges onto the optimum of an arbitrary clean unimodal curve
    /// whose peak lies inside the bound range.
    #[test]
    fn is_finds_interior_optimum(peak in 40.0f64..160.0, height in 10.0f64..500.0) {
        // β is a gain an operator tunes to the magnitude of P; normalize it
        // so a full-height performance swing maps to a ~50-step move.
        let mut is = IncrementalSteps::new(IsParams {
            initial_bound: 100,
            min_bound: 1,
            max_bound: 200,
            beta: 50.0 / height,
            ..IsParams::default()
        });
        let mut bound = is.current_bound();
        let mut tail = Vec::new();
        for i in 0..400 {
            let n = f64::from(bound);
            let x = n / peak;
            let perf = height * (x * (1.0 - x).exp()).powi(2);
            bound = is.update(&Measurement::basic(f64::from(i), 1.0, perf, n));
            if i >= 300 {
                tail.push(f64::from(bound));
            }
        }
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        prop_assert!(
            (mean - peak).abs() < 0.35 * peak + 10.0,
            "IS settled at {mean}, optimum {peak}"
        );
    }
}

// ---------------------------------------------------------------------
// Meta-policy properties (closed-loop CC selection)
// ---------------------------------------------------------------------

use alc_core::meta::{
    ConflictThreshold, GuardParams, MetaObservation, MetaPolicy, RestartRate, ShadowScore,
};

fn meta_obs(at_ms: f64, conflicts: f64, aborts: f64, throughput: f64) -> MetaObservation {
    MetaObservation {
        at_ms,
        interval_ms: 500.0,
        conflicts_per_txn: conflicts,
        abort_ratio: aborts.clamp(0.0, 1.0),
        throughput_per_s: throughput,
        gate_queue: 0,
        observed_mpl: 10.0,
    }
}

/// Replays an observation sequence through a policy, returning the
/// decision trace (decision time, target) and asserting legality of
/// every target index.
fn replay(policy: &mut dyn MetaPolicy, obs: &[(f64, f64, f64)]) -> Vec<(f64, usize)> {
    let n = policy.candidate_count();
    let mut active = 0usize;
    let mut trace = Vec::new();
    for (i, &(conflicts, aborts, throughput)) in obs.iter().enumerate() {
        let t = 500.0 * (i + 1) as f64;
        if let Some(next) = policy.decide(active, &meta_obs(t, conflicts, aborts, throughput)) {
            assert!(next < n, "policy picked candidate {next} of {n}");
            assert_ne!(next, active, "policy re-picked the active candidate");
            trace.push((t, next));
            active = next;
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every meta policy is a pure function of its observation sequence:
    /// two fresh instances replaying the same sequence emit the same
    /// decision trace, and a reset instance replays it identically —
    /// the property that makes adaptive runs exactly as reproducible as
    /// scheduled ones.
    #[test]
    fn meta_policies_are_deterministic_and_reset_clean(
        obs in proptest::collection::vec(
            (0.0f64..6.0, 0.0f64..1.0, 0.0f64..200.0), 10..120),
        threshold in 0.2f64..4.0,
        weight in 0.1f64..1.0,
        dwell_s in 0.0f64..20.0,
        cooldown_s in 0.0f64..5.0,
        hysteresis in 0.0f64..0.8,
    ) {
        let guard = GuardParams {
            min_dwell_ms: dwell_s * 1000.0,
            cooldown_ms: cooldown_s * 1000.0,
            hysteresis,
        };
        let policies: Vec<Box<dyn Fn() -> Box<dyn MetaPolicy>>> = vec![
            Box::new(move || Box::new(ConflictThreshold::new(3, threshold, weight, guard))),
            Box::new(move || Box::new(RestartRate::new(3, threshold.min(0.95), weight, guard))),
            Box::new(move || Box::new(ShadowScore::new(3, weight, guard))),
        ];
        for mk in &policies {
            let mut a = mk();
            let mut b = mk();
            let ta = replay(a.as_mut(), &obs);
            let tb = replay(b.as_mut(), &obs);
            prop_assert_eq!(&ta, &tb, "{} diverged across instances", a.name());
            // Reset restores the initial state exactly.
            a.reset();
            let tr = replay(a.as_mut(), &obs);
            prop_assert_eq!(&ta, &tr, "{} diverged after reset", a.name());
            // The dwell guard holds on every trace: consecutive decisions
            // (and the first, measured from run start) are at least
            // min_dwell apart.
            if let Some(&(first, _)) = ta.first() {
                prop_assert!(first >= guard.min_dwell_ms);
            }
            for w in ta.windows(2) {
                prop_assert!(
                    w[1].0 - w[0].0 >= guard.min_dwell_ms,
                    "{} violated min_dwell: {} then {}", a.name(), w[0].0, w[1].0
                );
            }
        }
    }
}
