//! Frozen seed implementations, kept as performance baselines.
//!
//! [`SeedCalendar`] is the pre-rewrite future event list exactly as the
//! seed shipped it: a `BinaryHeap` of scheduled entries plus a side
//! `HashSet` of cancelled sequence numbers consulted on every pop. The
//! `perfgate` binary races the slab-backed [`alc_des::Calendar`] against
//! it on an identical event stream and asserts the required speedup —
//! hardware-independent, unlike a recorded absolute number.
//!
//! Do not "improve" this module; its whole value is staying the seed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use alc_des::SimTime;

/// Token of the seed calendar (a bare sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedToken(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The seed future event list: `BinaryHeap` + lazy cancel-set.
pub struct SeedCalendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    now: SimTime,
}

impl<E> Default for SeedCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SeedCalendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        SeedCalendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> SeedToken {
        assert!(at >= self.now, "event scheduled in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        SeedToken(seq)
    }

    /// Schedules `payload` to fire `delay` ms from now.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> SeedToken {
        self.schedule(self.now + delay, payload)
    }

    /// Lazily cancels a token (the seed leak: a stale token stays in the
    /// set forever).
    pub fn cancel(&mut self, token: SeedToken) {
        self.cancelled.insert(token.0);
    }

    /// Pops the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.at;
            return Some((ev.at, ev.payload));
        }
        None
    }
}
