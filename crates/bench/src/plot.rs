//! Terminal rendering of trajectory charts — the paper's Figures 3 and
//! 13/14 are exactly "bound and optimum over time" plots, so `repro`
//! draws them next to the summary tables.

use alc_des::series::TimeSeries;
use alc_des::SimTime;

/// Glyphs assigned to series in order; the *first* series is drawn on
/// top (last), so give it the most prominent glyph.
const GLYPHS: [char; 4] = ['*', '·', '+', 'x'];

/// Renders the series as a `width`×`height` character chart with y-axis
/// labels, an x-axis time line (seconds) and a legend. Series are sampled
/// per column (step interpolation); non-finite values are skipped.
pub fn chart(series: &[(&str, &TimeSeries)], width: usize, height: usize) -> String {
    render(series, width, height, &|t| format!("{:.0}s", t / 1000.0))
}

/// Like [`chart`] but for curves whose x-axis is not time (e.g. the
/// load–throughput function): x labels print the raw value with `x_name`.
pub fn curve(
    series: &[(&str, &TimeSeries)],
    width: usize,
    height: usize,
    x_name: &str,
) -> String {
    render(series, width, height, &|x| format!("{x:.0} {x_name}"))
}

fn render(
    series: &[(&str, &TimeSeries)],
    width: usize,
    height: usize,
    fmt_x: &dyn Fn(f64) -> String,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small to be legible");
    assert!(!series.is_empty() && series.len() <= GLYPHS.len());

    // Global ranges over all series.
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for (_, s) in series {
        for &(t, v) in s.points() {
            if v.is_finite() {
                t_min = t_min.min(t);
                t_max = t_max.max(t);
                y_min = y_min.min(v);
                y_max = y_max.max(v);
            }
        }
    }
    if !t_min.is_finite() || !y_min.is_finite() {
        return String::from("(no finite data to plot)\n");
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0; // flat line: give it a band to sit in
    }
    let t_span = (t_max - t_min).max(f64::EPSILON);

    let mut grid = vec![vec![' '; width]; height];
    // Draw in reverse so series[0] lands on top.
    #[allow(clippy::needless_range_loop)] // col drives both t and the grid
    for (si, (_, s)) in series.iter().enumerate().rev() {
        let glyph = GLYPHS[si];
        for col in 0..width {
            let t = t_min + (col as f64 + 0.5) / width as f64 * t_span;
            let Some(v) = s.value_at(SimTime::new(t)) else {
                continue;
            };
            if !v.is_finite() {
                continue;
            }
            let frac = ((v - y_min) / (y_max - y_min)).clamp(0.0, 1.0);
            let row = height - 1 - (frac * (height - 1) as f64).round() as usize;
            grid[row][col] = glyph;
        }
    }

    let label_w = 8;
    let mut out = String::with_capacity((width + label_w + 2) * (height + 3));
    for (row, cells) in grid.iter().enumerate() {
        let frac = 1.0 - row as f64 / (height - 1) as f64;
        let label = if row == 0 || row == height - 1 || row == (height - 1) / 2 {
            format!("{:>label_w$.0}", y_min + frac * (y_max - y_min))
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(cells.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_w));
    out.push_str(" +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let left = fmt_x(t_min);
    let right = fmt_x(t_max);
    let pad = width.saturating_sub(left.len() + right.len());
    out.push_str(&" ".repeat(label_w + 2));
    out.push_str(&left);
    out.push_str(&" ".repeat(pad));
    out.push_str(&right);
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i], name))
        .collect();
    out.push_str(&" ".repeat(label_w + 2));
    out.push_str(&legend.join("   "));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(name: &str, n: usize, slope: f64) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for i in 0..n {
            s.push(SimTime::new(i as f64 * 1000.0), slope * i as f64);
        }
        s
    }

    #[test]
    fn renders_expected_dimensions() {
        let a = ramp("up", 100, 1.0);
        let out = chart(&[("up", &a)], 60, 10);
        let lines: Vec<&str> = out.lines().collect();
        // height rows + axis + time labels + legend.
        assert_eq!(lines.len(), 13);
        assert!(lines.iter().take(10).all(|l| l.len() == 8 + 2 + 60));
        assert!(out.contains("* up"));
    }

    #[test]
    fn monotone_series_fills_the_diagonal() {
        let a = ramp("up", 200, 2.0);
        let out = chart(&[("up", &a)], 40, 8);
        let lines: Vec<&str> = out.lines().collect();
        // Top row has marks near the right, bottom row near the left.
        let top = lines[0];
        let bottom = lines[7];
        assert!(top.rfind('*').unwrap() > bottom.rfind('*').unwrap());
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = ramp("a", 50, 1.0);
        let b = ramp("b", 50, -1.0);
        let out = chart(&[("a", &a), ("b", &b)], 40, 8);
        assert!(out.contains('*'));
        assert!(out.contains('·'));
        assert!(out.contains("* a"));
        assert!(out.contains("· b"));
    }

    #[test]
    fn y_labels_cover_the_range() {
        let a = ramp("a", 11, 10.0); // 0..100
        let out = chart(&[("a", &a)], 30, 5);
        assert!(out.contains("100"), "max label missing:\n{out}");
        assert!(out.lines().nth(4).unwrap().trim_start().starts_with('0'));
    }

    #[test]
    fn flat_series_does_not_panic() {
        let mut s = TimeSeries::new("flat");
        for i in 0..20 {
            s.push(SimTime::new(f64::from(i) * 100.0), 42.0);
        }
        let out = chart(&[("flat", &s)], 30, 5);
        assert!(out.contains('*'));
    }

    #[test]
    fn empty_series_yields_placeholder() {
        let s = TimeSeries::new("empty");
        let out = chart(&[("empty", &s)], 30, 5);
        assert!(out.contains("no finite data"));
    }

    #[test]
    fn curve_labels_use_raw_x_values() {
        let mut s = TimeSeries::new("throughput");
        for bound in [10.0, 100.0, 800.0] {
            s.push(SimTime::new(bound), bound / 10.0);
        }
        let out = curve(&[("T", &s)], 40, 6, "MPL");
        assert!(out.contains("10 MPL"), "min x label missing:\n{out}");
        assert!(out.contains("800 MPL"), "max x label missing:\n{out}");
        assert!(!out.contains("0s"), "time formatting leaked into curve");
    }
}
