//! `sweep` — ad-hoc stationary bound sweeps for calibration and
//! exploration.
//!
//! ```text
//! sweep [--k K] [--write-frac W] [--query-frac Q] [--terminals N]
//!       [--db D] [--cc cert|2pl|to] [--horizon-s S] [--bounds a,b,c,...]
//! ```

use alc_analytic::surface::Schedule;
use alc_bench::figures::paper_system;
use alc_bench::table::{num, render};
use alc_tpsim::config::{CcKind, ControlConfig};
use alc_tpsim::experiment::sweep_bounds;
use alc_tpsim::workload::WorkloadConfig;

fn main() {
    let mut k = 8.0;
    let mut write_frac = 0.25;
    let mut query_frac = 0.2;
    let mut terminals = 800u32;
    let mut db = 2000u64;
    let mut cc = CcKind::Certification;
    let mut horizon_s = 140.0;
    let mut bounds: Vec<u32> = vec![10, 25, 50, 75, 100, 125, 150, 200, 300, 400, 600, 800];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match a.as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: sweep [--k K] [--write-frac W] [--query-frac Q] \
                     [--terminals N]\n             [--db D] [--cc cert|2pl|to] \
                     [--horizon-s S] [--bounds a,b,c,...]"
                );
                return;
            }
            "--k" => k = val().parse().expect("k"),
            "--write-frac" => write_frac = val().parse().expect("write-frac"),
            "--query-frac" => query_frac = val().parse().expect("query-frac"),
            "--terminals" => terminals = val().parse().expect("terminals"),
            "--db" => db = val().parse().expect("db"),
            "--horizon-s" => horizon_s = val().parse().expect("horizon-s"),
            "--cc" => {
                cc = match val().as_str() {
                    "cert" => CcKind::Certification,
                    "2pl" => CcKind::TwoPhaseLocking,
                    "to" => CcKind::TimestampOrdering,
                    other => panic!("unknown cc {other}"),
                }
            }
            "--bounds" => {
                bounds = val()
                    .split(',')
                    .map(|s| s.parse().expect("bound"))
                    .collect();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut sys = paper_system(terminals, 0x5EEE);
    sys.db_size = db;
    let workload = WorkloadConfig {
        k: Schedule::Constant(k),
        query_frac: Schedule::Constant(query_frac),
        write_frac: Schedule::Constant(write_frac),
        ..WorkloadConfig::default()
    };
    let ctl = ControlConfig::default();
    let pts = sweep_bounds(&sys, &workload, cc, &bounds, &ctl, horizon_s * 1000.0);

    let model = workload.occ_model_at(0.0, &sys);
    let curve = model.curve(bounds.iter().copied().max().unwrap_or(800).max(2));
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.x.to_string(),
                num(p.stats.throughput_per_sec),
                num(curve.throughput(f64::from(p.x)) * 1000.0),
                num(p.stats.abort_ratio),
                num(p.stats.mean_response_ms),
                num(p.stats.cpu_utilization),
                num(p.stats.conflicts_per_commit),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "bound",
                "T_sim/s",
                "T_mva/s",
                "abort_ratio",
                "resp_ms",
                "cpu",
                "confl/commit"
            ],
            &rows
        )
    );
    println!(
        "analytic optimum: {}  (k={k}, q={query_frac}, w={write_frac}, D={db})",
        curve.optimal_mpl()
    );
}
