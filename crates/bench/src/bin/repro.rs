//! `repro` — regenerates every figure of Heiss & Wagner (VLDB 1991).
//!
//! ```text
//! repro [--quick] [--out DIR] all
//! repro [--quick] [--out DIR] fig01 fig12 abl-rules …
//! repro list
//! ```
//!
//! Tables print to stdout; per-figure CSVs (and trajectory CSVs for the
//! dynamic experiments) land in `--out` (default `results/`).

use std::path::PathBuf;

use alc_bench::figures;
use alc_bench::Scale;

/// What gets written to `<out>/run_manifest.json`: enough to rerun the
/// batch. Scale + experiment ids fully determine every run (each figure
/// derives its system/seed from the scale); `control` is the shared
/// measurement/control configuration at that scale, recorded for
/// inspection (the serde derives on the config types make it storable).
#[derive(serde::Serialize, serde::Deserialize)]
struct RunManifest {
    scale: String,
    experiments: Vec<String>,
    control: alc_tpsim::config::ControlConfig,
}

use figures::catalog;

fn usage() {
    println!("usage: repro [--quick] [--out DIR] <all | list | fig01 fig12 ...>");
    println!();
    println!("  --quick      CI-scale configuration (seconds instead of minutes)");
    println!("  --out DIR    CSV output directory (default: results/)");
    println!("  list         print the experiment catalog");
    println!("  all          run every experiment");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                usage();
                return;
            }
            "--quick" => scale = Scale::Quick,
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "list" => {
                for (id, title, _) in catalog() {
                    println!("{id:<18} {title}");
                }
                return;
            }
            "all" => selected.extend(catalog().iter().map(|(id, _, _)| id.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        usage();
        eprintln!("\nerror: no experiment selected");
        std::process::exit(2);
    }

    // Resolve every selection before any output lands on disk.
    let catalog = catalog();
    let runs: Vec<_> = selected
        .iter()
        .map(|want| {
            catalog
                .iter()
                .find(|(id, _, _)| id == want)
                .unwrap_or_else(|| {
                    eprintln!("unknown experiment `{want}` — try `repro list`");
                    std::process::exit(2);
                })
        })
        .collect();

    let manifest = RunManifest {
        scale: format!("{scale:?}"),
        experiments: selected.clone(),
        control: alc_bench::figures::control(scale),
    };
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    std::fs::write(
        out_dir.join("run_manifest.json"),
        serde_json::to_string_pretty(&manifest).expect("serialize manifest"),
    )
    .expect("write run_manifest.json");

    for (id, _, run) in runs {
        #[allow(clippy::disallowed_methods)] // CLI progress timing, not simulation time
        let start = std::time::Instant::now();
        let report = run(scale, Some(out_dir.as_path()));
        let csv = report.write_csv(&out_dir).expect("write csv");
        println!("{}", report.render());
        println!(
            "  [{} in {:.1}s, table → {}]\n",
            id,
            start.elapsed().as_secs_f64(),
            csv.display()
        );
    }
}
