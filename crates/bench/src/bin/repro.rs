//! `repro` — regenerates every figure of Heiss & Wagner (VLDB 1991).
//!
//! ```text
//! repro [--quick] [--out DIR] all
//! repro [--quick] [--out DIR] fig01 fig12 abl-rules …
//! repro list
//! ```
//!
//! Tables print to stdout; per-figure CSVs (and trajectory CSVs for the
//! dynamic experiments) land in `--out` (default `results/`).

use std::path::PathBuf;

use alc_bench::figures;
use alc_bench::report::Report;
use alc_bench::Scale;

/// What gets written to `<out>/run_manifest.json`: enough to rerun the
/// batch. Scale + experiment ids fully determine every run (each figure
/// derives its system/seed from the scale); `control` is the shared
/// measurement/control configuration at that scale, recorded for
/// inspection (the serde derives on the config types make it storable).
#[derive(serde::Serialize, serde::Deserialize)]
struct RunManifest {
    scale: String,
    experiments: Vec<String>,
    control: alc_tpsim::config::ControlConfig,
}

type Runner = fn(Scale, Option<&std::path::Path>) -> Report;

fn catalog() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        ("fig01", "load–throughput function with thrashing", |s, _| {
            figures::fig01(s)
        }),
        ("fig02", "performance surface P(n,t) under sinusoidal k", |s, _| {
            figures::fig02(s)
        }),
        ("fig03", "IS zig-zag trajectory (stationary)", figures::fig03),
        ("fig04", "PA parabola fit vs true curve", |s, _| figures::fig04(s)),
        ("fig06", "estimator memory shapes", |s, _| figures::fig06(s)),
        ("fig07", "flat-hump pathology + fallbacks", figures::fig07),
        ("fig08", "abrupt shape change + covariance reset", figures::fig08),
        ("sec6", "overload indicator comparison", |s, _| figures::sec6(s)),
        ("fig12", "throughput with vs without control", |s, _| {
            figures::fig12(s)
        }),
        ("fig13", "IS trajectory under optimum jump", figures::fig13),
        ("fig14", "PA trajectory under optimum jump", figures::fig14),
        ("sinus", "sinusoidal workload tracking", figures::sinus),
        ("abl-dither", "PA dither amplitude ablation", |s, _| {
            figures::abl_dither(s)
        }),
        ("abl-alpha", "Δt vs α trade-off ablation", |s, _| {
            figures::abl_alpha(s)
        }),
        ("abl-displacement", "admission-only vs displacement", |s, _| {
            figures::abl_displacement(s)
        }),
        ("abl-restart", "restart resampling ablation", |s, _| {
            figures::abl_restart(s)
        }),
        ("abl-rules", "feedback vs rules of thumb", |s, _| {
            figures::abl_rules(s)
        }),
        ("abl-is-failure", "IS growing-height failure (§5.1)", |s, _| {
            figures::abl_is_failure(s)
        }),
        ("abl-hotspot", "Zipf hot-spot extension", |s, _| {
            figures::abl_hotspot(s)
        }),
        ("abl-cc", "thrashing across CC protocols", |s, _| {
            figures::abl_cc(s)
        }),
        ("abl-victim", "displacement victim policies (§4.3)", |s, _| {
            figures::abl_victim(s)
        }),
        ("abl-hybrid", "IS/PA/outer-loops/hybrid showdown", |s, _| {
            figures::abl_hybrid(s)
        }),
        ("abl-interval", "§5 interval sizing + CI coverage", |s, _| {
            figures::abl_interval(s)
        }),
        ("abl-open", "open arrivals: goodput/loss vs offered load", |s, _| {
            figures::abl_open(s)
        }),
    ]
}

fn usage() {
    println!("usage: repro [--quick] [--out DIR] <all | list | fig01 fig12 ...>");
    println!();
    println!("  --quick      CI-scale configuration (seconds instead of minutes)");
    println!("  --out DIR    CSV output directory (default: results/)");
    println!("  list         print the experiment catalog");
    println!("  all          run every experiment");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                usage();
                return;
            }
            "--quick" => scale = Scale::Quick,
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "list" => {
                for (id, title, _) in catalog() {
                    println!("{id:<18} {title}");
                }
                return;
            }
            "all" => selected.extend(catalog().iter().map(|(id, _, _)| id.to_string())),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        usage();
        eprintln!("\nerror: no experiment selected");
        std::process::exit(2);
    }

    // Resolve every selection before any output lands on disk.
    let catalog = catalog();
    let runs: Vec<_> = selected
        .iter()
        .map(|want| {
            catalog
                .iter()
                .find(|(id, _, _)| id == want)
                .unwrap_or_else(|| {
                    eprintln!("unknown experiment `{want}` — try `repro list`");
                    std::process::exit(2);
                })
        })
        .collect();

    let manifest = RunManifest {
        scale: format!("{scale:?}"),
        experiments: selected.clone(),
        control: alc_bench::figures::control(scale),
    };
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    std::fs::write(
        out_dir.join("run_manifest.json"),
        serde_json::to_string_pretty(&manifest).expect("serialize manifest"),
    )
    .expect("write run_manifest.json");

    for (id, _, run) in runs {
        let start = std::time::Instant::now();
        let report = run(scale, Some(out_dir.as_path()));
        let csv = report.write_csv(&out_dir).expect("write csv");
        println!("{}", report.render());
        println!(
            "  [{} in {:.1}s, table → {}]\n",
            id,
            start.elapsed().as_secs_f64(),
            csv.display()
        );
    }
}
