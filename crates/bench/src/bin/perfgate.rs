//! `perfgate` — the repo's performance regression gate.
//!
//! ```text
//! perfgate [--check] [--out PATH]
//! ```
//!
//! Three measurements, written to `BENCH_02.json` (override with `--out`):
//!
//! 1. **Calendar race** — the slab-backed [`alc_des::Calendar`] against
//!    the frozen seed implementation ([`alc_bench::baseline::SeedCalendar`])
//!    on an identical simulator-shaped event stream (standing population,
//!    schedule-per-pop, a slice of cancellations). The gate **asserts**
//!    `events/sec(slab) ≥ 1.5 × events/sec(seed)` and exits non-zero
//!    otherwise. Racing the seed code on the same machine makes the gate
//!    hardware-independent, unlike a recorded absolute baseline.
//! 2. **Simulator throughput** — simulated events/sec and committed
//!    txns/sec of full engine runs per CC protocol (informational trend
//!    numbers for the perf trajectory).
//! 3. **Peak heap** — a counting global allocator reports peak live bytes
//!    over the whole run (RSS proxy).
//!
//! `--check` runs a CI-sized variant (seconds, not minutes); the ratio
//! assertion applies in both modes.

// A perf gate times wall-clock by definition.
#![allow(clippy::disallowed_methods)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use alc_bench::baseline::SeedCalendar;
use alc_bench::figures::quick_system;
use alc_des::rng::RngStream;
use alc_des::Calendar;
use alc_tpsim::config::{CcKind, ControlConfig};
use alc_tpsim::engine::Simulator;
use alc_tpsim::workload::WorkloadConfig;

// ---------------------------------------------------------------------
// Peak-heap tracking (RSS proxy)
// ---------------------------------------------------------------------

struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            note_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

// ---------------------------------------------------------------------
// Calendar race
// ---------------------------------------------------------------------

/// Simulator-shaped payload (the engine's event enum is two words).
#[derive(Clone, Copy)]
struct Payload {
    _txn: u32,
    _generation: u64,
}

/// The common event stream both calendars replay: a standing population
/// of `MPL` events; every pop schedules a successor with a pseudo-random
/// delay; every third pop also cancels a previously issued token (some
/// live — displacement — and, for the seed design, the cancel-set cost),
/// scheduling a replacement to keep the population standing.
const MPL: usize = 256;
const CANCEL_EVERY: usize = 3;

macro_rules! drive {
    ($cal:expr, $ops:expr, $seed:expr) => {{
        let mut rng = RngStream::from_seed($seed);
        let cal = $cal;
        let mut tokens = Vec::with_capacity(MPL);
        for i in 0..MPL {
            tokens.push(cal.schedule_in(rng.uniform(1.0, 100.0), Payload {
                _txn: i as u32,
                _generation: 0,
            }));
        }
        let mut pops = 0u64;
        for i in 0..$ops {
            let (_, _p) = cal.pop().expect("standing population");
            pops += 1;
            let tok = cal.schedule_in(rng.uniform(1.0, 100.0), Payload {
                _txn: (i % MPL) as u32,
                _generation: i as u64,
            });
            let slot = i % MPL;
            if i % CANCEL_EVERY == 0 {
                // Cancel the token previously parked in this slot (often
                // already fired → stale path) and replace it if it was
                // still pending so the population cannot drain.
                cal.cancel(tokens[slot]);
                tokens[slot] = cal.schedule_in(rng.uniform(1.0, 100.0), Payload {
                    _txn: slot as u32,
                    _generation: i as u64,
                });
                let _ = tok;
            } else {
                tokens[slot] = tok;
            }
        }
        // Drain what is left so both implementations pay their reaping.
        while cal.pop().is_some() {
            pops += 1;
        }
        pops
    }};
}

/// Best-of-`reps` wall time for `ops` operations; returns events/sec.
/// The timing order alternates per rep so neither implementation
/// systematically benefits from warmed caches/allocator state — the gate
/// must pass on real headroom, not measurement-order bias.
fn race_calendars(ops: usize, reps: usize) -> (f64, f64) {
    let time_seed = |ops: usize, seed: u64| {
        let t0 = Instant::now();
        let mut cal: SeedCalendar<Payload> = SeedCalendar::new();
        let pops = drive!(&mut cal, ops, seed);
        (pops, t0.elapsed().as_secs_f64())
    };
    let time_slab = |ops: usize, seed: u64| {
        let t0 = Instant::now();
        let mut cal: Calendar<Payload> = Calendar::new();
        let pops = drive!(&mut cal, ops, seed);
        (pops, t0.elapsed().as_secs_f64())
    };
    // Untimed warm-up pass for both implementations.
    time_seed(ops / 10, 0xC0FFEE);
    time_slab(ops / 10, 0xC0FFEE);

    let mut best_seed = f64::INFINITY;
    let mut best_slab = f64::INFINITY;
    let mut pops_seed = 0;
    let mut pops_slab = 0;
    for r in 0..reps {
        let stream = 0xBEEF + r as u64;
        if r % 2 == 0 {
            let (p, t) = time_seed(ops, stream);
            pops_seed = p;
            best_seed = best_seed.min(t);
            let (p, t) = time_slab(ops, stream);
            pops_slab = p;
            best_slab = best_slab.min(t);
        } else {
            let (p, t) = time_slab(ops, stream);
            pops_slab = p;
            best_slab = best_slab.min(t);
            let (p, t) = time_seed(ops, stream);
            pops_seed = p;
            best_seed = best_seed.min(t);
        }
        assert_eq!(
            pops_seed, pops_slab,
            "the two calendars disagreed on the event stream"
        );
    }
    (
        pops_seed as f64 / best_seed,
        pops_slab as f64 / best_slab,
    )
}

// ---------------------------------------------------------------------
// Simulator throughput
// ---------------------------------------------------------------------

#[derive(serde::Serialize)]
struct SimBench {
    cc: String,
    sim_horizon_ms: f64,
    events: u64,
    commits: u64,
    events_per_sec: f64,
    txns_per_sec: f64,
}

fn bench_simulator(cc: CcKind, horizon_ms: f64) -> SimBench {
    let mut sim = Simulator::new(
        quick_system(40, 7),
        WorkloadConfig::default(),
        cc,
        ControlConfig {
            initial_bound: u32::MAX,
            warmup_ms: 0.0,
            ..ControlConfig::default()
        },
        None,
    );
    sim.set_record_optimum(false);
    let t0 = Instant::now();
    let stats = sim.run_until(horizon_ms);
    let wall = t0.elapsed().as_secs_f64();
    SimBench {
        cc: format!("{cc:?}"),
        sim_horizon_ms: horizon_ms,
        events: sim.events_processed(),
        commits: stats.commits,
        events_per_sec: sim.events_processed() as f64 / wall,
        txns_per_sec: stats.commits as f64 / wall,
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

#[derive(serde::Serialize)]
struct CalendarRace {
    ops: usize,
    reps: usize,
    seed_events_per_sec: f64,
    slab_events_per_sec: f64,
    speedup: f64,
    required_speedup: f64,
    pass: bool,
}

#[derive(serde::Serialize)]
struct Bench02 {
    bench: String,
    mode: String,
    calendar: CalendarRace,
    simulator: Vec<SimBench>,
    peak_heap_bytes: usize,
}

const REQUIRED_SPEEDUP: f64 = 1.5;

fn main() {
    let mut check = false;
    let mut out = PathBuf::from("BENCH_02.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: perfgate [--check] [--out PATH]");
                println!();
                println!("  --check     CI-sized run (seconds); the speedup gate still applies");
                println!("  --out PATH  where to write the JSON report (default BENCH_02.json)");
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let (ops, reps, horizon) = if check {
        (400_000, 3, 5_000.0)
    } else {
        (4_000_000, 3, 30_000.0)
    };

    eprintln!("perfgate: racing calendars ({ops} ops x {reps} reps)…");
    let (seed_eps, slab_eps) = race_calendars(ops, reps);
    let speedup = slab_eps / seed_eps;
    let pass = speedup >= REQUIRED_SPEEDUP;

    eprintln!("perfgate: simulator throughput…");
    let simulator = [
        CcKind::Certification,
        CcKind::TwoPhaseLocking,
        CcKind::TimestampOrdering,
    ]
    .into_iter()
    .map(|cc| bench_simulator(cc, horizon))
    .collect();

    let report = Bench02 {
        bench: "BENCH_02 zero-allocation hot path".into(),
        mode: if check { "check" } else { "full" }.into(),
        calendar: CalendarRace {
            ops,
            reps,
            seed_events_per_sec: seed_eps,
            slab_events_per_sec: slab_eps,
            speedup,
            required_speedup: REQUIRED_SPEEDUP,
            pass,
        },
        simulator,
        peak_heap_bytes: PEAK.load(Ordering::Relaxed),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, &json).expect("write report");
    println!("{json}");
    eprintln!(
        "perfgate: calendar {:.2}x over seed (gate {:.1}x) → {}",
        speedup,
        REQUIRED_SPEEDUP,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
