//! One runner per paper artifact. See DESIGN.md §3 for the experiment
//! index mapping each `figXX` id to the paper's figure and EXPERIMENTS.md
//! for recorded paper-vs-measured outcomes.

mod ablation;
mod dynamic;
mod stationary;

pub use ablation::{abl_hotspot, abl_interval, abl_is_failure, abl_open, abl_restart};
pub use dynamic::{fig03, fig07, fig08, fig13, fig14, sinus};
pub use stationary::{fig01, fig02, fig04, fig06, fig12, sec6};

use alc_core::controller::{IsParams, PaParams};
use alc_tpsim::config::{ControlConfig, SystemConfig};

use crate::report::Report;
use crate::Scale;

/// A figure runner: takes the scale and an optional directory for
/// trajectory CSVs, returns the printable/storable report.
pub type Runner = fn(Scale, Option<&std::path::Path>) -> Report;

/// The experiment catalog: `(id, title, runner)` for every figure and
/// ablation the `repro` binary can regenerate. Shared between the CLI and
/// the golden determinism tests so the two can never drift apart.
pub fn catalog() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        ("fig01", "load–throughput function with thrashing", |s, _| {
            fig01(s)
        }),
        ("fig02", "performance surface P(n,t) under sinusoidal k", |s, _| {
            fig02(s)
        }),
        ("fig03", "IS zig-zag trajectory (stationary)", fig03),
        ("fig04", "PA parabola fit vs true curve", |s, _| fig04(s)),
        ("fig06", "estimator memory shapes", |s, _| fig06(s)),
        ("fig07", "flat-hump pathology + fallbacks", fig07),
        ("fig08", "abrupt shape change + covariance reset", fig08),
        ("sec6", "overload indicator comparison", |s, _| sec6(s)),
        ("fig12", "throughput with vs without control", |s, _| fig12(s)),
        ("fig13", "IS trajectory under optimum jump", fig13),
        ("fig14", "PA trajectory under optimum jump", fig14),
        ("sinus", "sinusoidal workload tracking", sinus),
        // The ported ablations (abl-dither/alpha/displacement/rules/cc/
        // victim/hybrid) run via `scenario run scenarios/abl-*.json`;
        // their goldens are pinned by the scenario golden-port tests.
        ("abl-restart", "restart resampling ablation", |s, _| {
            abl_restart(s)
        }),
        ("abl-is-failure", "IS growing-height failure (§5.1)", |s, _| {
            abl_is_failure(s)
        }),
        ("abl-hotspot", "Zipf hot-spot extension", |s, _| abl_hotspot(s)),
        ("abl-interval", "§5 interval sizing + CI coverage", |s, _| {
            abl_interval(s)
        }),
        ("abl-open", "open arrivals: goodput/loss vs offered load", |s, _| {
            abl_open(s)
        }),
    ]
}

/// The paper-scale physical configuration (calibration documented in
/// DESIGN.md: Yu-et-al. trace parameters are not public, so values are
/// chosen to land the optimum MPL in the low hundreds with a load axis to
/// 800, matching the figures' axes).
pub fn paper_system(terminals: u32, seed: u64) -> SystemConfig {
    SystemConfig {
        terminals,
        seed,
        ..SystemConfig::default()
    }
}

/// A CI-scale configuration: same shape, ~10× smaller and faster.
pub fn quick_system(terminals: u32, seed: u64) -> SystemConfig {
    SystemConfig {
        terminals,
        cpus: 4,
        db_size: 300,
        think: alc_des::dist::Dist::exponential(300.0),
        disk_access: alc_des::dist::Dist::constant(3.0),
        disk_init_commit: alc_des::dist::Dist::constant(40.0),
        seed,
        ..SystemConfig::default()
    }
}

/// System for the given scale.
pub fn system(scale: Scale, terminals_full: u32, seed: u64) -> SystemConfig {
    match scale {
        Scale::Full => paper_system(terminals_full, seed),
        Scale::Quick => quick_system(terminals_full.min(40), seed),
    }
}

/// Measurement/control configuration for the given scale.
pub fn control(scale: Scale) -> ControlConfig {
    ControlConfig {
        sample_interval_ms: scale.pick_ms(2000.0, 500.0),
        warmup_ms: scale.pick_ms(20_000.0, 2_000.0),
        ..ControlConfig::default()
    }
}

/// The paper-scale bound range.
pub fn max_bound(scale: Scale) -> u32 {
    scale.pick(800, 60)
}

/// Baseline IS tuning used across experiments.
pub fn is_params(scale: Scale) -> IsParams {
    IsParams {
        initial_bound: scale.pick(50, 5),
        min_bound: 1,
        max_bound: max_bound(scale),
        beta: 1.0,
        gamma: 4.0,
        delta: 16.0,
        min_step: 2.0,
        max_step: 48.0,
        smoothing: 1.0,
    }
}

/// Baseline PA tuning used across experiments.
pub fn pa_params(scale: Scale) -> PaParams {
    PaParams {
        initial_bound: scale.pick(50, 5),
        min_bound: 1,
        max_bound: max_bound(scale),
        alpha: 0.95,
        dither_amplitude: scale.pick_ms(8.0, 2.0),
        max_step: 48.0,
        warmup_samples: 8,
        warmup_step: scale.pick_ms(8.0, 2.0),
        ..PaParams::default()
    }
}

/// Simulation horizon for stationary sweeps.
pub fn sweep_horizon(scale: Scale) -> f64 {
    scale.pick_ms(140_000.0, 8_000.0)
}
