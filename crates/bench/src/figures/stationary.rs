//! Stationary experiments: Figures 1, 2, 4, 6, 12 and the §6 indicator
//! comparison.

use alc_core::controller::{IncrementalSteps, LoadController, ParabolaApproximation};
use alc_core::estimator::rls::{memory_area, memory_weight};
use alc_core::measure::Measurement;
use alc_tpsim::config::CcKind;
use alc_tpsim::experiment::{sweep_bounds, sweep_terminals};
use alc_tpsim::workload::WorkloadConfig;
use rayon::prelude::*;

use crate::plot;
use crate::report::Report;
use crate::table::num;
use crate::Scale;

use super::{control, is_params, max_bound, pa_params, sweep_horizon, system};

/// The standard bound grid of the stationary sweeps.
fn bound_grid(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Full => vec![
            10, 25, 50, 75, 100, 125, 150, 200, 250, 300, 400, 500, 600, 700, 800,
        ],
        Scale::Quick => vec![2, 5, 10, 20, 40],
    }
}

/// Figure 1: the load–throughput function with its three phases
/// (underload, saturation, overload/thrashing), produced by sweeping a
/// fixed MPL bound on the saturated closed system.
pub fn fig01(scale: Scale) -> Report {
    let sys = system(scale, 800, 0xF1601);
    let ctl = control(scale);
    let grid = bound_grid(scale);
    let pts = sweep_bounds(
        &sys,
        &WorkloadConfig::default(),
        CcKind::Certification,
        &grid,
        &ctl,
        sweep_horizon(scale),
    );

    let mut r = Report::new(
        "fig01",
        "Load–throughput function with thrashing (underload / saturation / overload)",
        &[
            "mpl_bound",
            "throughput_per_s",
            "response_ms",
            "abort_ratio",
            "mean_mpl",
            "cpu_util",
        ],
    );
    for p in &pts {
        r.push_row(vec![
            p.x.to_string(),
            num(p.stats.throughput_per_sec),
            num(p.stats.mean_response_ms),
            num(p.stats.abort_ratio),
            num(p.stats.mean_mpl),
            num(p.stats.cpu_utilization),
        ]);
    }
    let mut curve_series = alc_des::series::TimeSeries::new("throughput");
    for p in &pts {
        curve_series.push(alc_des::SimTime::new(f64::from(p.x)), p.stats.throughput_per_sec);
    }
    r.chart(plot::curve(&[("throughput tx/s", &curve_series)], 96, 14, "MPL"));
    let peak = pts
        .iter()
        .max_by(|a, b| {
            a.stats
                .throughput_per_sec
                .total_cmp(&b.stats.throughput_per_sec)
        })
        .expect("non-empty sweep");
    let last = pts.last().expect("non-empty sweep");
    r.note(format!(
        "peak throughput {} tx/s at MPL bound {} (the paper's n_opt)",
        num(peak.stats.throughput_per_sec),
        peak.x
    ));
    r.note(format!(
        "thrashing: at bound {} throughput falls to {} tx/s ({}% of peak) — the paper's phase III drop",
        last.x,
        num(last.stats.throughput_per_sec),
        num(100.0 * last.stats.throughput_per_sec / peak.stats.throughput_per_sec)
    ));
    r
}

/// Figure 2: the time-varying performance "mountain" P(n, t): one
/// stationary sweep per time slice of a sinusoidal k(t) workload.
pub fn fig02(scale: Scale) -> Report {
    let period = scale.pick_ms(400_000.0, 8_000.0);
    let workload = WorkloadConfig::k_sinusoid(10.0, 4.0, period);
    let sys = system(scale, 800, 0xF1602);
    let ctl = control(scale);
    let grid = bound_grid(scale);
    let slices = match scale {
        Scale::Full => vec![0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875],
        Scale::Quick => vec![0.0, 0.5],
    };

    let mut headers = vec!["mpl_bound".to_string()];
    for s in &slices {
        headers.push(format!("T_at_t={}s", num(s * period / 1000.0)));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut r = Report::new(
        "fig02",
        "Dynamic behaviour: the performance surface P(n, t) under sinusoidal k(t)",
        &header_refs,
    );

    // One frozen-workload sweep per slice; slices are independent runs,
    // so fan them out (each inner sweep parallelizes its bounds too).
    let columns: Vec<_> = slices
        .par_iter()
        .map(|s| {
            let frozen = WorkloadConfig {
                k: alc_analytic::surface::Schedule::Constant(workload.at(s * period).k as f64),
                ..WorkloadConfig::default()
            };
            sweep_bounds(
                &sys,
                &frozen,
                CcKind::Certification,
                &grid,
                &ctl,
                sweep_horizon(scale) * 0.5,
            )
        })
        .collect();
    for (i, &b) in grid.iter().enumerate() {
        let mut row = vec![b.to_string()];
        for col in &columns {
            row.push(num(col[i].stats.throughput_per_sec));
        }
        r.push_row(row);
    }
    // Where does the ridge sit per slice?
    let ridge: Vec<String> = columns
        .iter()
        .zip(&slices)
        .map(|(col, s)| {
            let peak = col
                .iter()
                .max_by(|a, b| {
                    a.stats
                        .throughput_per_sec
                        .total_cmp(&b.stats.throughput_per_sec)
                })
                .expect("non-empty column");
            format!("t={}s→n_opt≈{}", num(s * period / 1000.0), peak.x)
        })
        .collect();
    r.note(format!("ridge trajectory: {}", ridge.join(", ")));
    r.note("the optimum position moves with k(t): the 'mountain ridge' the controller must track (paper Fig. 2)");
    r
}

/// Figure 4: the Parabola Approximation's fit against the true overload
/// function, demonstrated on the analytic OCC curve with measurement
/// noise.
pub fn fig04(scale: Scale) -> Report {
    let sys = system(scale, 800, 0xF1604);
    let workload = WorkloadConfig::default();
    let curve = workload.occ_model_at(0.0, &sys).curve(max_bound(scale));
    let true_opt = curve.optimal_mpl();

    let mut pa = ParabolaApproximation::new(pa_params(scale));
    let mut noise_state = 0x9E3779B97F4A7C15u64;
    let mut noise = move || {
        noise_state = noise_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((noise_state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    };
    let steps = scale.pick(300, 60);
    let mut bound = pa.current_bound();
    for i in 0..steps {
        let n = f64::from(bound);
        let perf = curve.throughput(n) * 1000.0 * (1.0 + 0.05 * noise());
        bound = pa.update(&Measurement::basic(f64::from(i) * 2000.0, 2000.0, perf, n));
    }

    let fit = pa.fitted_parabola();
    let mut r = Report::new(
        "fig04",
        "Principle of the Parabola Approximation: fitted P(n)=a0+a1·n+a2·n² vs the true curve",
        &["n", "true_T_per_s", "fitted_T_per_s"],
    );
    let grid = bound_grid(scale);
    for &n in &grid {
        r.push_row(vec![
            n.to_string(),
            num(curve.throughput(f64::from(n)) * 1000.0),
            num(fit.eval(f64::from(n))),
        ]);
    }
    r.note(format!(
        "fitted coefficients: a0={}, a1={}, a2={} (a2 < 0: opens downward)",
        num(fit.a0),
        num(fit.a1),
        num(fit.a2),
    ));
    let vertex = fit.vertex().unwrap_or(f64::NAN);
    r.note(format!(
        "vertex -a1/(2a2) = {} vs true optimum {} (controller settled at {})",
        num(vertex),
        true_opt,
        num(pa.base_bound())
    ));
    r.note(format!(
        "fit is local around the operating point: trustworthy near n*={}, extrapolation degrades far away (why §4.2 re-fits every interval)",
        num(pa.base_bound())
    ));
    r
}

/// Figure 6: alternative shapes of the estimator's memory — one long
/// interval used once (α = 0) versus five short intervals exponentially
/// weighted (α = 0.8). Equal information, different responsiveness.
pub fn fig06(_scale: Scale) -> Report {
    let mut r = Report::new(
        "fig06",
        "Estimator memory shapes: long Δt with α=0 vs short Δt with α=0.8",
        &["age_in_short_intervals", "weight_alpha_0.8", "weight_rect_window_5"],
    );
    for age in 0..16u32 {
        let w_fading = memory_weight(0.8, age);
        let w_rect = if age < 5 { 1.0 } else { 0.0 };
        r.push_row(vec![age.to_string(), num(w_fading), num(w_rect)]);
    }
    r.note(format!(
        "area under α=0.8 profile = {} ≈ rectangle window of 5 intervals: same amount of information",
        num(memory_area(0.8, 1000))
    ));
    r.note("the paper's conclusion (§5.2): prefer small Δt with large α — newest data dominates, yet history still stabilizes the fit");
    r
}

/// Figure 12: stationary throughput with and without load control across
/// offered loads 100..800 (the paper's headline stationary result).
pub fn fig12(scale: Scale) -> Report {
    let terminals: Vec<u32> = match scale {
        Scale::Full => (1..=8).map(|i| i * 100).collect(),
        Scale::Quick => vec![10, 25, 40],
    };
    let sys = system(scale, 800, 0xF1612);
    let workload = WorkloadConfig::default();
    let ctl = control(scale);
    let horizon = sweep_horizon(scale);

    let uncontrolled = sweep_terminals(
        &sys,
        &workload,
        CcKind::Certification,
        &terminals,
        &alc_tpsim::config::ControlConfig {
            initial_bound: u32::MAX,
            ..ctl
        },
        None,
        horizon,
    );
    let mut mk_pa = || -> Box<dyn LoadController> {
        Box::new(ParabolaApproximation::new(pa_params(scale)))
    };
    let pa = sweep_terminals(
        &sys,
        &workload,
        CcKind::Certification,
        &terminals,
        &ctl,
        Some(&mut mk_pa),
        horizon,
    );
    let mut mk_is = || -> Box<dyn LoadController> {
        Box::new(IncrementalSteps::new(is_params(scale)))
    };
    let is = sweep_terminals(
        &sys,
        &workload,
        CcKind::Certification,
        &terminals,
        &ctl,
        Some(&mut mk_is),
        horizon,
    );

    let mut r = Report::new(
        "fig12",
        "System throughput with and without control in the stationary case",
        &[
            "offered_load_N",
            "T_without_control",
            "T_with_PA",
            "T_with_IS",
            "mpl_without",
            "bound_PA",
        ],
    );
    for i in 0..terminals.len() {
        r.push_row(vec![
            terminals[i].to_string(),
            num(uncontrolled[i].stats.throughput_per_sec),
            num(pa[i].stats.throughput_per_sec),
            num(is[i].stats.throughput_per_sec),
            num(uncontrolled[i].stats.mean_mpl),
            num(pa[i].stats.mean_bound),
        ]);
    }
    let mut unc_curve = alc_des::series::TimeSeries::new("uncontrolled");
    let mut pa_curve = alc_des::series::TimeSeries::new("PA");
    for i in 0..terminals.len() {
        let x = alc_des::SimTime::new(f64::from(terminals[i]));
        unc_curve.push(x, uncontrolled[i].stats.throughput_per_sec);
        pa_curve.push(x, pa[i].stats.throughput_per_sec);
    }
    r.chart(plot::curve(
        &[("with control (PA)", &pa_curve), ("without control", &unc_curve)],
        96,
        14,
        "terminals",
    ));
    let unc_max = uncontrolled
        .iter()
        .map(|p| p.stats.throughput_per_sec)
        .fold(f64::MIN, f64::max);
    let unc_last = uncontrolled.last().expect("non-empty").stats.throughput_per_sec;
    let pa_last = pa.last().expect("non-empty").stats.throughput_per_sec;
    let is_last = is.last().expect("non-empty").stats.throughput_per_sec;
    r.note(format!(
        "without control: peaks at {} tx/s, then thrashes to {} tx/s at the highest load ({}% of peak)",
        num(unc_max),
        num(unc_last),
        num(100.0 * unc_last / unc_max)
    ));
    r.note(format!(
        "with control: PA holds {} tx/s and IS {} tx/s at the highest load ({}% / {}% of the uncontrolled peak) — 'both algorithms had the desired property to keep the load at the point of optimum throughput'",
        num(pa_last),
        num(is_last),
        num(100.0 * pa_last / unc_max),
        num(100.0 * is_last / unc_max)
    ));
    r.note(format!(
        "PA vs IS difference at the highest load: {}% — 'the difference between PA and IS was insignificant in this case'",
        num(100.0 * (pa_last - is_last).abs() / pa_last.max(is_last))
    ));
    r
}

/// §6: which performance indicator has the most distinct extremum? The
/// paper concluded for throughput; this experiment reproduces the
/// comparison over the stationary bound sweep.
pub fn sec6(scale: Scale) -> Report {
    let sys = system(scale, 800, 0xF1606);
    let ctl = control(scale);
    let grid = bound_grid(scale);
    let pts = sweep_bounds(
        &sys,
        &WorkloadConfig::default(),
        CcKind::Certification,
        &grid,
        &ctl,
        sweep_horizon(scale),
    );

    // Indicator curves over the sweep (all "larger is better").
    let curves: Vec<(&str, Vec<f64>)> = vec![
        (
            "throughput",
            pts.iter().map(|p| p.stats.throughput_per_sec).collect(),
        ),
        (
            "inv_response",
            pts.iter()
                .map(|p| {
                    if p.stats.mean_response_ms > 0.0 {
                        1000.0 / p.stats.mean_response_ms
                    } else {
                        0.0
                    }
                })
                .collect(),
        ),
        (
            "eff_throughput",
            pts.iter()
                .map(|p| p.stats.throughput_per_sec * (1.0 - p.stats.abort_ratio))
                .collect(),
        ),
        (
            "neg_conflicts",
            pts.iter().map(|p| -p.stats.conflicts_per_commit).collect(),
        ),
    ];

    let mut r = Report::new(
        "sec6",
        "Overload-indicator comparison (§6): distinctness of each indicator's extremum",
        &["indicator", "argmax_bound", "left_prominence_%", "right_prominence_%"],
    );
    for (name, ys) in &curves {
        let (imax, &ymax) = ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        // Prominence on each side: relative drop from the peak to the
        // curve ends. An indicator with a distinct interior maximum drops
        // on BOTH sides; a monotone one has ~0 prominence on one side.
        let span = ys.iter().fold(f64::MIN, |a, &b| a.max(b))
            - ys.iter().fold(f64::MAX, |a, &b| a.min(b));
        let left = if span > 0.0 {
            100.0 * (ymax - ys[0]) / span
        } else {
            0.0
        };
        let right = if span > 0.0 {
            100.0 * (ymax - ys[ys.len() - 1]) / span
        } else {
            0.0
        };
        r.push_row(vec![
            name.to_string(),
            grid[imax].to_string(),
            num(left),
            num(right),
        ]);
    }
    r.note("throughput shows high prominence on BOTH flanks (a distinct interior maximum); inverse response time is monotone (left prominence ≈ 0) and negated conflict rate peaks at minimal load — matching the paper's §6 choice: 'the throughput T turned out to be the most significant indicator'");
    r
}
