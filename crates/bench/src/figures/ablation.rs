//! Ablation experiments for the design choices DESIGN.md calls out.

use alc_analytic::surface::{RidgeSurface, Schedule, Surface};
use alc_core::controller::{
    FixedBound, Hybrid, HybridParams, IncrementalSteps, IsParams, IyerRule, IyerRuleParams,
    LoadController, OuterParams, PaOuterParams, ParabolaApproximation, SelfTuningIs,
    SelfTuningPa, TayRule, Unlimited,
};
use alc_core::measure::Measurement;
use alc_tpsim::config::{ArrivalProcess, CcKind, ControlConfig, SystemConfig, VictimPolicy};
use alc_tpsim::experiment::{run_trajectory, sweep_bounds};
use alc_tpsim::workload::WorkloadConfig;
use rayon::prelude::*;

use crate::report::Report;
use crate::table::num;
use crate::Scale;

use super::{control, is_params, max_bound, pa_params, sweep_horizon, system};

fn jump_setup(scale: Scale) -> (SystemConfig, WorkloadConfig, ControlConfig, f64) {
    let horizon = scale.pick_ms(1_200_000.0, 16_000.0);
    let workload = match scale {
        Scale::Full => WorkloadConfig::k_jump(8.0, 16.0, horizon / 2.0),
        Scale::Quick => WorkloadConfig::k_jump(4.0, 8.0, horizon / 2.0),
    };
    let sys = system(scale, 500, 0xAB1);
    let ctl = ControlConfig {
        warmup_ms: 0.0,
        ..control(scale)
    };
    (sys, workload, ctl, horizon)
}

fn post_jump_tracking(traj: &alc_tpsim::engine::Trajectories) -> f64 {
    let pts = traj.bound.points();
    let start = pts.len() * 3 / 4;
    let opt = traj.optimum.last_value().unwrap_or(f64::NAN);
    let tail = &pts[start..];
    tail.iter().map(|&(_, b)| (b - opt).abs()).sum::<f64>() / tail.len().max(1) as f64
}

/// Dither amplitude ablation: §4.2's enforced oscillation is what keeps
/// the least-squares fit identifiable.
pub fn abl_dither(scale: Scale) -> Report {
    let (sys, workload, ctl, horizon) = jump_setup(scale);
    let mut r = Report::new(
        "abl-dither",
        "PA excitation dither: amplitude vs post-jump tracking",
        &[
            "dither_amplitude",
            "post_jump_tracking_err",
            "throughput_per_s",
            "convex_fit_events",
        ],
    );
    // Amplitudes are independent trajectory runs; fan them out. The
    // controller is built inside each worker so nothing crosses threads.
    let rows: Vec<_> = [0.0, 4.0, 8.0, 16.0]
        .par_iter()
        .map(|&amp| {
            let params = alc_core::controller::PaParams {
                dither_amplitude: amp,
                ..pa_params(scale)
            };
            let pa = ParabolaApproximation::new(params);
            let (stats, traj) = run_trajectory(
                &sys,
                &workload,
                CcKind::Certification,
                &ctl,
                Box::new(pa),
                horizon,
                true,
            );
            (amp, post_jump_tracking(&traj), stats.throughput_per_sec)
        })
        .collect();
    for (amp, tracking, throughput) in rows {
        r.push_row(vec![
            num(amp),
            num(tracking),
            num(throughput),
            "-".to_string(),
        ]);
    }
    r.note("the simulator's own stochastic MPL variation provides baseline excitation, so even zero dither survives; moderate dither (≈4) still improves post-jump tracking, while oversized dither wrecks both tracking and throughput — the §4.2 oscillations of Fig. 14 are useful only at small amplitude");
    r.note("on *noise-free* plants the difference is starker: without dither the regressor collapses onto one operating point and the fit degenerates (see the controller unit tests on synthetic surfaces)");
    r
}

/// Δt vs α trade-off (Figure 6 operationalized): equal-information
/// configurations with different memory shapes.
pub fn abl_alpha(scale: Scale) -> Report {
    let (sys, workload, ctl_base, horizon) = jump_setup(scale);
    let mut r = Report::new(
        "abl-alpha",
        "Measurement interval vs forgetting factor at (roughly) equal information",
        &[
            "interval_ms",
            "alpha",
            "info_area_intervals",
            "response_s",
            "post_jump_tracking_err",
            "throughput_per_s",
        ],
    );
    // Pairs: long interval & small alpha vs short interval & large alpha.
    let base = ctl_base.sample_interval_ms;
    let configs = [
        (base * 5.0, 0.2, "long-interval"),
        (base, 0.8, "short-interval"),
        (base, 0.95, "short-interval-longer-memory"),
    ];
    for (interval, alpha, _tag) in configs {
        let ctl = ControlConfig {
            sample_interval_ms: interval,
            ..ctl_base
        };
        let pa = ParabolaApproximation::new(alc_core::controller::PaParams {
            alpha,
            ..pa_params(scale)
        });
        let (stats, traj) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &ctl,
            Box::new(pa),
            horizon,
            true,
        );
        // Wall-clock response: time from the jump until the bound first
        // enters the 25% band of the new optimum.
        let opt_after = traj.optimum.last_value().unwrap_or(f64::NAN);
        let pts = traj.bound.points();
        let response_s = pts
            .iter()
            .filter(|&&(t, _)| t >= horizon / 2.0)
            .find(|&&(_, b)| (b - opt_after).abs() <= 0.25 * opt_after)
            .map(|&(t, _)| (t - horizon / 2.0) / 1000.0);
        r.push_row(vec![
            num(interval),
            num(alpha),
            num(1.0 / (1.0 - alpha.min(0.999))),
            response_s.map_or("never".into(), num),
            num(post_jump_tracking(&traj)),
            num(stats.throughput_per_sec),
        ]);
    }
    r.note("equal-information configurations all survive the jump; the short-Δt/large-α pairs take 5× more control decisions per unit time, which is what buys wall-clock responsiveness (§5.2/Fig. 6) — while the long interval's better-averaged measurements smooth the steady state");
    r
}

/// Admission-only control vs displacement (§4.3).
pub fn abl_displacement(scale: Scale) -> Report {
    let (sys, workload, ctl, horizon) = jump_setup(scale);
    let mut r = Report::new(
        "abl-displacement",
        "Admission control alone vs displacement on bound drops (§4.3)",
        &[
            "displacement",
            "throughput_per_s",
            "abort_ratio",
            "displaced",
            "post_jump_tracking_err",
        ],
    );
    for displacement in [false, true] {
        let ctl = ControlConfig {
            displacement,
            ..ctl
        };
        let pa = ParabolaApproximation::new(pa_params(scale));
        let (stats, traj) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &ctl,
            Box::new(pa),
            horizon,
            true,
        );
        r.push_row(vec![
            displacement.to_string(),
            num(stats.throughput_per_sec),
            num(stats.abort_ratio),
            stats.displaced.to_string(),
            num(post_jump_tracking(&traj)),
        ]);
    }
    r.note("the paper's finding holds: 'admission control alone was responsive enough to prevent thrashing even with dramatically changing workloads', and displacement's aborts waste work ('aborting transactions always means wastage of system resources')");
    r
}

/// Restart-policy ablation: resampled vs identical access sets.
pub fn abl_restart(scale: Scale) -> Report {
    let mut sys = system(scale, 400, 0xAB3);
    // Crank contention up so restarts matter.
    sys.db_size /= 4;
    let workload = WorkloadConfig {
        write_frac: Schedule::Constant(0.6),
        query_frac: Schedule::Constant(0.0),
        ..WorkloadConfig::default()
    };
    let ctl = control(scale);
    let horizon = sweep_horizon(scale);
    let bound = max_bound(scale) / 4;

    let mut r = Report::new(
        "abl-restart",
        "Restart policy: fresh access set vs identical retry under high contention",
        &["resample_on_restart", "throughput_per_s", "abort_ratio", "conflicts_per_commit"],
    );
    for resample in [true, false] {
        let sys = SystemConfig {
            resample_on_restart: resample,
            ..sys
        };
        let stats = alc_tpsim::experiment::stationary_run(
            &sys,
            &workload,
            CcKind::Certification,
            bound,
            &ctl,
            horizon,
        );
        r.push_row(vec![
            resample.to_string(),
            num(stats.throughput_per_sec),
            num(stats.abort_ratio),
            num(stats.conflicts_per_commit),
        ]);
    }
    r.note("with uniform access and no hot spots the difference is modest (conflicts are not item-bound); the knob matters for skewed workloads and is exposed for them");
    r
}

/// Rules of thumb vs feedback control on the jump scenario (§1's claim
/// that static rules 'have to be considered with caution').
pub fn abl_rules(scale: Scale) -> Report {
    let (sys, workload, ctl, horizon) = jump_setup(scale);
    let nmax = max_bound(scale);
    let k_before = workload.at(0.0).k;
    let k_after = workload.at(horizon).k;

    // The strongest version of Tay's rule re-reads the true k; the stale
    // version keeps the installation-time k (what a static DBA knob does).
    let opt_before = workload.analytic_optimum(0.0, &sys, nmax);

    let mut r = Report::new(
        "abl-rules",
        "Feedback controllers vs rules of thumb on the k-jump workload",
        &["policy", "throughput_per_s", "abort_ratio", "mean_bound"],
    );
    let mut run = |name: &str, ctrl: Box<dyn LoadController>| {
        let (stats, _traj) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &ctl,
            ctrl,
            horizon,
            false,
        );
        r.push_row(vec![
            name.to_string(),
            num(stats.throughput_per_sec),
            num(stats.abort_ratio),
            num(stats.mean_bound),
        ]);
    };
    run("PA", Box::new(ParabolaApproximation::new(pa_params(scale))));
    run("IS", Box::new(IncrementalSteps::new(is_params(scale))));
    run(
        "iyer-0.75",
        Box::new(IyerRule::new(IyerRuleParams {
            initial_bound: scale.pick(50, 5),
            max_bound: nmax,
            ..IyerRuleParams::default()
        })),
    );
    run(
        "tay-stale",
        Box::new(TayRule::new(k_before, sys.db_size, 1, nmax)),
    );
    run(
        "tay-informed",
        Box::new(TayRule::new(k_after, sys.db_size, 1, nmax)),
    );
    run("fixed-at-old-opt", Box::new(FixedBound::new(opt_before)));
    run("unlimited", Box::new(Unlimited));
    r.note("the feedback controllers adapt across the jump; the stale rule and the fixed bound stay tuned for the old workload (the paper's §1 argument for model-independent feedback control)");
    r.note("note the *informed* Tay rule does worst of all: k²n/D < 1.5 was derived for blocking 2PL and badly underestimates the optimum of a certification system — 'the question is whether these bounds actually apply to all possible load situations' (§1)");
    r
}

/// The §5.1 IS failure mode: a growing optimum height in place lures IS
/// away; static bounds rescue it.
pub fn abl_is_failure(scale: Scale) -> Report {
    let steps = scale.pick(500, 100) as usize;
    let surface = RidgeSurface {
        position: Schedule::Constant(100.0),
        height: Schedule::Ramp {
            from: 10.0,
            to: 2000.0,
            t_start: 0.0,
            t_end: steps as f64 * 2000.0,
        },
        steepness: 0.15, // nearly flat flanks: every step "improves"
    };
    let mut r = Report::new(
        "abl-is-failure",
        "IS failure under growing optimum height (§5.1) and the static-bound rescue",
        &["max_bound", "final_bound", "tail_mean_bound", "optimum", "worst_excursion"],
    );
    for max_b in [2_000u32, 400] {
        let mut is = IncrementalSteps::new(IsParams {
            initial_bound: 100,
            max_bound: max_b,
            beta: 20.0,
            ..is_params(Scale::Full)
        });
        let mut bound = is.current_bound();
        let mut series = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = i as f64 * 2000.0;
            let n = f64::from(bound);
            let perf = surface.performance(n, t);
            bound = is.update(&Measurement::basic(t, 2000.0, perf, n));
            series.push(f64::from(bound));
        }
        let tail = &series[series.len() * 3 / 4..];
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let worst = series.iter().fold(0.0f64, |a, &b| a.max((b - 100.0).abs()));
        r.push_row(vec![
            max_b.to_string(),
            num(series[series.len() - 1]),
            num(tail_mean),
            "100".to_string(),
            num(worst),
        ]);
    }
    r.note("with a loose bound IS 'thinks to be on the way to the top, but actually goes astray' (§5.1) — the rising height makes every step look like an improvement; the tight static bound caps the excursion, exactly the countermeasure the paper mandates");
    r
}

/// Hot-spot extension: the paper's model excludes hot spots ("the data
/// items are selected randomly, i.e. no hot spots"). With Zipf-skewed
/// access the effective database shrinks, the optimum moves down and in —
/// and the feedback controllers keep tracking it without re-tuning.
pub fn abl_hotspot(scale: Scale) -> Report {
    let sys = system(scale, 600, 0xAB8);
    let ctl = control(scale);
    let horizon = sweep_horizon(scale);
    let nmax = max_bound(scale);

    let mut r = Report::new(
        "abl-hotspot",
        "Zipf access skew: optimum shift and controller tracking (hot-spot extension)",
        &[
            "skew_theta",
            "effective_db",
            "analytic_opt",
            "T_at_analytic_opt",
            "T_with_PA",
            "PA_mean_bound",
        ],
    );
    for theta in [0.0, 0.5, 0.8, 1.1] {
        let workload = WorkloadConfig {
            access_skew: Schedule::Constant(theta),
            ..WorkloadConfig::default()
        };
        let eff = alc_analytic::occ::effective_db_size(sys.db_size, theta);
        let opt = workload.analytic_optimum(0.0, &sys, nmax);
        let fixed_at_opt = alc_tpsim::experiment::stationary_run(
            &sys,
            &workload,
            CcKind::Certification,
            opt,
            &ctl,
            horizon,
        );
        let pa = ParabolaApproximation::new(pa_params(scale));
        let (pa_stats, _) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &ctl,
            Box::new(pa),
            horizon,
            false,
        );
        r.push_row(vec![
            num(theta),
            num(eff),
            opt.to_string(),
            num(fixed_at_opt.throughput_per_sec),
            num(pa_stats.throughput_per_sec),
            num(pa_stats.mean_bound),
        ]);
    }
    r.note("skew shrinks the effective database (1/Σp²) by up to ~100×, collapsing the achievable peak; under self-limiting certification the optimum's *position* stays near the resource knee while its *height* falls");
    r.note("PA lands within ~2% of the per-skew optimal throughput without any knowledge of the skew — the model-independence argument extended past the paper's uniform-access assumption");
    r
}

/// Thrashing across CC protocols: the control problem is protocol-
/// independent (the paper's claim of generality vs Tay/Iyer's
/// blocking-only rules).
pub fn abl_cc(scale: Scale) -> Report {
    let sys = system(scale, 800, 0xAB7);
    let ctl = control(scale);
    let grid: Vec<u32> = match scale {
        Scale::Full => vec![25, 50, 100, 150, 200, 300, 400, 600, 800],
        Scale::Quick => vec![2, 5, 10, 20, 40],
    };
    let workload = WorkloadConfig {
        write_frac: Schedule::Constant(0.4),
        ..WorkloadConfig::default()
    };

    const NAMES: [&str; 6] = [
        "certification",
        "2pl",
        "timestamp-ordering",
        "wound-wait",
        "wait-die",
        "mvto",
    ];
    let mut headers = vec!["mpl_bound".to_string()];
    headers.extend(NAMES.iter().map(|n| format!("T_{n}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut r = Report::new(
        "abl-cc",
        "Load–throughput shape per CC protocol (all six)",
        &headers_ref,
    );
    // Six independent protocol sweeps: run them concurrently (each one
    // also parallelizes over its bound grid).
    let curves: Vec<_> = CcKind::ALL
        .par_iter()
        .map(|&cc| {
            sweep_bounds(
                &sys,
                &workload,
                cc,
                &grid,
                &ctl,
                sweep_horizon(scale) * 0.6,
            )
        })
        .collect();
    for (i, &b) in grid.iter().enumerate() {
        let mut row = vec![b.to_string()];
        row.extend(curves.iter().map(|c| num(c[i].stats.throughput_per_sec)));
        r.push_row(row);
    }
    for (name, curve) in NAMES.iter().zip(&curves) {
        let peak = curve
            .iter()
            .max_by(|a, b| a.stats.throughput_per_sec.total_cmp(&b.stats.throughput_per_sec))
            .expect("non-empty");
        let last = curve.last().expect("non-empty");
        r.note(format!(
            "{name}: peak {} tx/s at bound {}, falls to {}% of peak at bound {}",
            num(peak.stats.throughput_per_sec),
            peak.x,
            num(100.0 * last.stats.throughput_per_sec / peak.stats.throughput_per_sec),
            last.x
        ));
    }
    r.note("every protocol exhibits a unimodal curve with an overload drop — the load-control problem (and the feedback solution) is CC-independent, unlike the Tay/Iyer rules which presuppose a protocol class (§1)");
    r.note("the prevention pair (wound-wait/wait-die) trades the detector's sharp convoy collapse for an earlier, gentler abort-driven decay; MVTO spares the read-only fraction and decays between certification and 2PL");
    r
}

/// §4.3 displacement victim policies: "victim selection may be based on
/// the same criteria as for deadlock breaking" — quantified. A square-
/// wave workload slams the optimum down repeatedly, so the controller
/// keeps dropping the bound and displacement fires in storms.
pub fn abl_victim(scale: Scale) -> Report {
    let horizon = scale.pick_ms(1_200_000.0, 16_000.0);
    let (k_lo, k_hi) = match scale {
        Scale::Full => (6.0, 18.0),
        Scale::Quick => (4.0, 10.0),
    };
    // Four full low→high→low cycles: every rising edge forces a bound drop.
    let period = horizon / 4.0;
    let mut steps = Vec::new();
    let mut t = 0.0;
    while t < horizon {
        steps.push((t, k_lo));
        steps.push((t + period / 2.0, k_hi));
        t += period;
    }
    let workload = WorkloadConfig {
        k: Schedule::Piecewise(steps),
        ..WorkloadConfig::default()
    };
    let sys = system(scale, 500, 0xAB1);
    let ctl_base = ControlConfig {
        warmup_ms: 0.0,
        ..control(scale)
    };

    let mut r = Report::new(
        "abl-victim",
        "Displacement victim policies on a square-wave workload (§4.3)",
        &[
            "victim_policy",
            "throughput_per_s",
            "abort_ratio",
            "displaced",
            "mean_response_ms",
        ],
    );
    // One independent trajectory run per victim policy — fan out.
    let results: Vec<_> = VictimPolicy::ALL
        .par_iter()
        .map(|&policy| {
            let ctl = ControlConfig {
                displacement: true,
                victim_policy: policy,
                ..ctl_base
            };
            let pa = ParabolaApproximation::new(pa_params(scale));
            let (stats, _traj) = run_trajectory(
                &sys,
                &workload,
                CcKind::Certification,
                &ctl,
                Box::new(pa),
                horizon,
                false,
            );
            (policy, stats)
        })
        .collect();
    for (policy, stats) in results {
        r.push_row(vec![
            format!("{policy:?}"),
            num(stats.throughput_per_sec),
            num(stats.abort_ratio),
            stats.displaced.to_string(),
            num(stats.mean_response_ms),
        ]);
    }
    r.note("Youngest and LeastProgress displace runs with little sunk work; Oldest and MostProgress burn nearly-finished runs — the same reasoning that makes deadlock breakers pick the youngest victim");
    r.note("the spread stays second-order (a displaced run re-queues rather than vanishing, and resampled restarts decorrelate repeats), consistent with the paper's decision to make displacement a last resort rather than the primary mechanism");
    r
}

/// Controller showdown on the jump scenario: the §4 pair, the §5 outer
/// loops and the IS→PA hybrid.
pub fn abl_hybrid(scale: Scale) -> Report {
    let (sys, workload, ctl, horizon) = jump_setup(scale);
    let mut r = Report::new(
        "abl-hybrid",
        "IS vs PA vs self-tuning outer loops vs the IS→PA hybrid on the k-jump",
        &[
            "controller",
            "throughput_per_s",
            "post_jump_tracking_err",
            "mean_bound",
        ],
    );
    let contenders: Vec<(&str, Box<dyn LoadController>)> = vec![
        ("IS", Box::new(IncrementalSteps::new(is_params(scale)))),
        ("PA", Box::new(ParabolaApproximation::new(pa_params(scale)))),
        (
            "self-tuning-IS",
            Box::new(SelfTuningIs::new(is_params(scale), OuterParams::default())),
        ),
        (
            "self-tuning-PA",
            Box::new(SelfTuningPa::new(pa_params(scale), PaOuterParams::default())),
        ),
        (
            "hybrid-IS-PA",
            Box::new(Hybrid::new(HybridParams {
                is: is_params(scale),
                pa: pa_params(scale),
                ..HybridParams::default()
            })),
        ),
    ];
    for (name, ctrl) in contenders {
        let (stats, traj) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &ctl,
            ctrl,
            horizon,
            true,
        );
        r.push_row(vec![
            name.to_string(),
            num(stats.throughput_per_sec),
            num(post_jump_tracking(&traj)),
            num(stats.mean_bound),
        ]);
    }
    r.note("the paper's §9 ranking (PA settles tighter than IS after the jump) extends to the additions: the hybrid keeps PA-grade settling while inheriting IS's bootstrap, and the outer loops reach comparable tracking without hand-tuned β/α");
    r
}

/// Open-arrival extension: the paper's model is closed (terminals with
/// think time bound the load by construction); real admission control
/// faces an *open* stream whose offered rate answers to nobody. Sweep the
/// offered load across the capacity and compare uncontrolled admission
/// against the PA-adapted gate.
pub fn abl_open(scale: Scale) -> Report {
    let horizon = sweep_horizon(scale);
    let slots = scale.pick(800, 80);
    let sys_base = system(scale, slots, 0xABA);
    let workload = WorkloadConfig {
        write_frac: Schedule::Constant(0.5),
        query_frac: Schedule::Constant(0.1),
        ..WorkloadConfig::default()
    };
    let ctl = control(scale);
    // Offered rates bracketing the (closed-model) peak throughput.
    let rates_per_s: Vec<f64> = match scale {
        Scale::Full => vec![50.0, 100.0, 150.0, 200.0, 300.0, 400.0],
        Scale::Quick => vec![20.0, 40.0, 80.0, 160.0],
    };

    let mut r = Report::new(
        "abl-open",
        "Open arrivals (extension): goodput and loss vs offered load, with and without control",
        &[
            "offered_per_s",
            "T_uncontrolled",
            "T_with_PA",
            "resp_uncontrolled_ms",
            "resp_PA_ms",
            "lost_uncontrolled",
            "lost_PA",
        ],
    );
    // Each offered rate is a pair of independent runs — fan the rates out.
    let results: Vec<_> = rates_per_s
        .par_iter()
        .map(|&rate| {
            let sys = SystemConfig {
                arrival: ArrivalProcess::Open {
                    interarrival: alc_des::dist::Dist::exponential(1000.0 / rate),
                },
                ..sys_base
            };
            let uncontrolled = alc_tpsim::experiment::stationary_run(
                &sys,
                &workload,
                CcKind::Certification,
                u32::MAX,
                &ctl,
                horizon,
            );
            let pa = ParabolaApproximation::new(pa_params(scale));
            let (with_pa, _) = run_trajectory(
                &sys,
                &workload,
                CcKind::Certification,
                &ctl,
                Box::new(pa),
                horizon,
                false,
            );
            (rate, uncontrolled, with_pa)
        })
        .collect();
    for (rate, uncontrolled, with_pa) in results {
        r.push_row(vec![
            num(rate),
            num(uncontrolled.throughput_per_sec),
            num(with_pa.throughput_per_sec),
            num(uncontrolled.mean_response_ms),
            num(with_pa.mean_response_ms),
            uncontrolled.lost.to_string(),
            with_pa.lost.to_string(),
        ]);
    }
    r.note("below capacity the gate is invisible (same goodput, same response); past it the uncontrolled system converts concurrency into aborted work and collapses, while the controlled one holds goodput near the closed-model peak and sheds the excess as queueing + loss — the open-system case for admission control that the closed model can only hint at");
    r
}

/// §5 measurement-interval sizing validated by Monte Carlo: size the
/// interval from the measured departure process, then check the CI
/// actually covers the true throughput at the promised rate.
pub fn abl_interval(scale: Scale) -> Report {
    use alc_core::sampler::{CiInterval, IntervalPolicy};
    use alc_des::dist::{Dist, Erlang, HyperExp, Sample as _};
    use alc_des::interval::required_departures;
    use alc_des::rng::RngStream;
    use alc_des::stats::ConfidenceLevel;

    let events = scale.pick(400_000, 40_000) as usize;
    let accuracy = 0.1;
    // (name, interdeparture distribution with mean 5 ms, analytic c²)
    let processes: [(&str, Dist, f64); 3] = [
        (
            "erlang-4 (smooth)",
            Dist::Erlang(Erlang {
                stages: 4,
                mean: 5.0,
            }),
            0.25,
        ),
        ("poisson", Dist::exponential(5.0), 1.0),
        (
            "hyperexp (bursty)",
            Dist::HyperExp(HyperExp {
                p: 0.9,
                mean_a: 2.0,
                mean_b: 32.0,
            }),
            7.48,
        ),
    ];

    let mut r = Report::new(
        "abl-interval",
        "§5 interval sizing: required departures per process vs achieved CI coverage",
        &[
            "departure_process",
            "scv_true",
            "scv_measured",
            "required_departures",
            "final_interval_ms",
            "coverage_pct",
        ],
    );
    for (name, dist, scv_true) in processes {
        let mut rng = RngStream::from_seed(0xAB9 ^ scv_true.to_bits());
        let mut ci = CiInterval::new(accuracy, ConfidenceLevel::P95, 50.0, 1e7, 1000.0);
        let true_rate = 0.2; // mean 5 ms
        let mut t = 0.0f64;
        let mut interval_end = IntervalPolicy::current_ms(&ci);
        let mut interval_start = 0.0f64;
        let mut count = 0u64;
        let mut estimates: Vec<f64> = Vec::new();
        for _ in 0..events {
            t += dist.sample(&mut rng);
            while t >= interval_end {
                let len = interval_end - interval_start;
                let m = Measurement {
                    departures: count,
                    ..Measurement::basic(interval_end, len, 0.0, 0.0)
                };
                estimates.push(count as f64 / len);
                let next = IntervalPolicy::observe(&mut ci, &m);
                interval_start = interval_end;
                interval_end += next;
                count = 0;
            }
            count += 1;
        }
        // Coverage over the second half (after the interval size settled).
        let tail = &estimates[estimates.len() / 2..];
        let covered = tail
            .iter()
            .filter(|&&x| (x - true_rate).abs() <= accuracy * true_rate)
            .count();
        let coverage = 100.0 * covered as f64 / tail.len().max(1) as f64;
        r.push_row(vec![
            name.to_string(),
            num(scv_true),
            num(ci.estimator().scv()),
            num(required_departures(scv_true, accuracy, ConfidenceLevel::P95)),
            num(IntervalPolicy::current_ms(&ci)),
            num(coverage),
        ]);
    }
    r.note("the required interval spans a ~30× range across processes with the *same* mean rate — the second moments, not the rate, set the §5 interval length ('this interval length clearly depends on the parameters of the departure process, especially its second moments')");
    r.note("achieved coverage lands within a few points of the promised 95% for the smooth and Poisson processes; the bursty process under-covers (the renewal CLT is only asymptotic and the sizing itself is estimated online) — the formula is the right first-order guide, not an exact guarantee");
    r
}
