//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! Most of the ablation suite now lives as declarative scenario specs
//! under `scenarios/` (`abl-dither`, `abl-alpha`, `abl-displacement`,
//! `abl-rules`, `abl-cc`, `abl-victim`, `abl-hybrid`), pinned
//! byte-identical to the pre-port goldens by
//! `crates/scenario/tests/golden_port.rs`. This module keeps only the
//! experiments the DSL has no business expressing: the synthetic-surface
//! IS failure study, the Monte-Carlo interval-sizing check, and the
//! ablations over knobs without a spec-level axis.

use alc_analytic::surface::{RidgeSurface, Schedule, Surface};
use alc_core::controller::{IncrementalSteps, IsParams, LoadController as _, ParabolaApproximation};
use alc_core::measure::Measurement;
use alc_tpsim::config::{ArrivalProcess, CcKind, SystemConfig};
use alc_tpsim::experiment::run_trajectory;
use alc_tpsim::workload::WorkloadConfig;
use rayon::prelude::*;

use crate::report::Report;
use crate::table::num;
use crate::Scale;

use super::{control, is_params, max_bound, pa_params, sweep_horizon, system};

/// Restart-policy ablation: resampled vs identical access sets.
pub fn abl_restart(scale: Scale) -> Report {
    let mut sys = system(scale, 400, 0xAB3);
    // Crank contention up so restarts matter.
    sys.db_size /= 4;
    let workload = WorkloadConfig {
        write_frac: Schedule::Constant(0.6),
        query_frac: Schedule::Constant(0.0),
        ..WorkloadConfig::default()
    };
    let ctl = control(scale);
    let horizon = sweep_horizon(scale);
    let bound = max_bound(scale) / 4;

    let mut r = Report::new(
        "abl-restart",
        "Restart policy: fresh access set vs identical retry under high contention",
        &["resample_on_restart", "throughput_per_s", "abort_ratio", "conflicts_per_commit"],
    );
    for resample in [true, false] {
        let sys = SystemConfig {
            resample_on_restart: resample,
            ..sys
        };
        let stats = alc_tpsim::experiment::stationary_run(
            &sys,
            &workload,
            CcKind::Certification,
            bound,
            &ctl,
            horizon,
        );
        r.push_row(vec![
            resample.to_string(),
            num(stats.throughput_per_sec),
            num(stats.abort_ratio),
            num(stats.conflicts_per_commit),
        ]);
    }
    r.note("with uniform access and no hot spots the difference is modest (conflicts are not item-bound); the knob matters for skewed workloads and is exposed for them");
    r
}

/// The §5.1 IS failure mode: a growing optimum height in place lures IS
/// away; static bounds rescue it.
pub fn abl_is_failure(scale: Scale) -> Report {
    let steps = scale.pick(500, 100) as usize;
    let surface = RidgeSurface {
        position: Schedule::Constant(100.0),
        height: Schedule::Ramp {
            from: 10.0,
            to: 2000.0,
            t_start: 0.0,
            t_end: steps as f64 * 2000.0,
        },
        steepness: 0.15, // nearly flat flanks: every step "improves"
    };
    let mut r = Report::new(
        "abl-is-failure",
        "IS failure under growing optimum height (§5.1) and the static-bound rescue",
        &["max_bound", "final_bound", "tail_mean_bound", "optimum", "worst_excursion"],
    );
    for max_b in [2_000u32, 400] {
        let mut is = IncrementalSteps::new(IsParams {
            initial_bound: 100,
            max_bound: max_b,
            beta: 20.0,
            ..is_params(Scale::Full)
        });
        let mut bound = is.current_bound();
        let mut series = Vec::with_capacity(steps);
        for i in 0..steps {
            let t = i as f64 * 2000.0;
            let n = f64::from(bound);
            let perf = surface.performance(n, t);
            bound = is.update(&Measurement::basic(t, 2000.0, perf, n));
            series.push(f64::from(bound));
        }
        let tail = &series[series.len() * 3 / 4..];
        let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let worst = series.iter().fold(0.0f64, |a, &b| a.max((b - 100.0).abs()));
        r.push_row(vec![
            max_b.to_string(),
            num(series[series.len() - 1]),
            num(tail_mean),
            "100".to_string(),
            num(worst),
        ]);
    }
    r.note("with a loose bound IS 'thinks to be on the way to the top, but actually goes astray' (§5.1) — the rising height makes every step look like an improvement; the tight static bound caps the excursion, exactly the countermeasure the paper mandates");
    r
}

/// Hot-spot extension: the paper's model excludes hot spots ("the data
/// items are selected randomly, i.e. no hot spots"). With Zipf-skewed
/// access the effective database shrinks, the optimum moves down and in —
/// and the feedback controllers keep tracking it without re-tuning.
pub fn abl_hotspot(scale: Scale) -> Report {
    let sys = system(scale, 600, 0xAB8);
    let ctl = control(scale);
    let horizon = sweep_horizon(scale);
    let nmax = max_bound(scale);

    let mut r = Report::new(
        "abl-hotspot",
        "Zipf access skew: optimum shift and controller tracking (hot-spot extension)",
        &[
            "skew_theta",
            "effective_db",
            "analytic_opt",
            "T_at_analytic_opt",
            "T_with_PA",
            "PA_mean_bound",
        ],
    );
    for theta in [0.0, 0.5, 0.8, 1.1] {
        let workload = WorkloadConfig {
            access_skew: Schedule::Constant(theta),
            ..WorkloadConfig::default()
        };
        let eff = alc_analytic::occ::effective_db_size(sys.db_size, theta);
        let opt = workload.analytic_optimum(0.0, &sys, nmax);
        let fixed_at_opt = alc_tpsim::experiment::stationary_run(
            &sys,
            &workload,
            CcKind::Certification,
            opt,
            &ctl,
            horizon,
        );
        let pa = ParabolaApproximation::new(pa_params(scale));
        let (pa_stats, _) = run_trajectory(
            &sys,
            &workload,
            CcKind::Certification,
            &ctl,
            Box::new(pa),
            horizon,
            false,
        );
        r.push_row(vec![
            num(theta),
            num(eff),
            opt.to_string(),
            num(fixed_at_opt.throughput_per_sec),
            num(pa_stats.throughput_per_sec),
            num(pa_stats.mean_bound),
        ]);
    }
    r.note("skew shrinks the effective database (1/Σp²) by up to ~100×, collapsing the achievable peak; under self-limiting certification the optimum's *position* stays near the resource knee while its *height* falls");
    r.note("PA lands within ~2% of the per-skew optimal throughput without any knowledge of the skew — the model-independence argument extended past the paper's uniform-access assumption");
    r
}

/// Open-arrival extension: the paper's model is closed (terminals with
/// think time bound the load by construction); real admission control
/// faces an *open* stream whose offered rate answers to nobody. Sweep the
/// offered load across the capacity and compare uncontrolled admission
/// against the PA-adapted gate.
pub fn abl_open(scale: Scale) -> Report {
    let horizon = sweep_horizon(scale);
    let slots = scale.pick(800, 80);
    let sys_base = system(scale, slots, 0xABA);
    let workload = WorkloadConfig {
        write_frac: Schedule::Constant(0.5),
        query_frac: Schedule::Constant(0.1),
        ..WorkloadConfig::default()
    };
    let ctl = control(scale);
    // Offered rates bracketing the (closed-model) peak throughput.
    let rates_per_s: Vec<f64> = match scale {
        Scale::Full => vec![50.0, 100.0, 150.0, 200.0, 300.0, 400.0],
        Scale::Quick => vec![20.0, 40.0, 80.0, 160.0],
    };

    let mut r = Report::new(
        "abl-open",
        "Open arrivals (extension): goodput and loss vs offered load, with and without control",
        &[
            "offered_per_s",
            "T_uncontrolled",
            "T_with_PA",
            "resp_uncontrolled_ms",
            "resp_PA_ms",
            "lost_uncontrolled",
            "lost_PA",
        ],
    );
    // Each offered rate is a pair of independent runs — fan the rates out.
    let results: Vec<_> = rates_per_s
        .par_iter()
        .map(|&rate| {
            let sys = SystemConfig {
                arrival: ArrivalProcess::Open {
                    interarrival: alc_des::dist::Dist::exponential(1000.0 / rate),
                },
                ..sys_base
            };
            let uncontrolled = alc_tpsim::experiment::stationary_run(
                &sys,
                &workload,
                CcKind::Certification,
                u32::MAX,
                &ctl,
                horizon,
            );
            let pa = ParabolaApproximation::new(pa_params(scale));
            let (with_pa, _) = run_trajectory(
                &sys,
                &workload,
                CcKind::Certification,
                &ctl,
                Box::new(pa),
                horizon,
                false,
            );
            (rate, uncontrolled, with_pa)
        })
        .collect();
    for (rate, uncontrolled, with_pa) in results {
        r.push_row(vec![
            num(rate),
            num(uncontrolled.throughput_per_sec),
            num(with_pa.throughput_per_sec),
            num(uncontrolled.mean_response_ms),
            num(with_pa.mean_response_ms),
            uncontrolled.lost.to_string(),
            with_pa.lost.to_string(),
        ]);
    }
    r.note("below capacity the gate is invisible (same goodput, same response); past it the uncontrolled system converts concurrency into aborted work and collapses, while the controlled one holds goodput near the closed-model peak and sheds the excess as queueing + loss — the open-system case for admission control that the closed model can only hint at");
    r
}

/// §5 measurement-interval sizing validated by Monte Carlo: size the
/// interval from the measured departure process, then check the CI
/// actually covers the true throughput at the promised rate.
pub fn abl_interval(scale: Scale) -> Report {
    use alc_core::sampler::{CiInterval, IntervalPolicy};
    use alc_des::dist::{Dist, Erlang, HyperExp, Sample as _};
    use alc_des::interval::required_departures;
    use alc_des::rng::RngStream;
    use alc_des::stats::ConfidenceLevel;

    let events = scale.pick(400_000, 40_000) as usize;
    let accuracy = 0.1;
    // (name, interdeparture distribution with mean 5 ms, analytic c²)
    let processes: [(&str, Dist, f64); 3] = [
        (
            "erlang-4 (smooth)",
            Dist::Erlang(Erlang {
                stages: 4,
                mean: 5.0,
            }),
            0.25,
        ),
        ("poisson", Dist::exponential(5.0), 1.0),
        (
            "hyperexp (bursty)",
            Dist::HyperExp(HyperExp {
                p: 0.9,
                mean_a: 2.0,
                mean_b: 32.0,
            }),
            7.48,
        ),
    ];

    let mut r = Report::new(
        "abl-interval",
        "§5 interval sizing: required departures per process vs achieved CI coverage",
        &[
            "departure_process",
            "scv_true",
            "scv_measured",
            "required_departures",
            "final_interval_ms",
            "coverage_pct",
        ],
    );
    for (name, dist, scv_true) in processes {
        // alc-lint: allow(seed-literal, reason="fixed figure-fixture seed, xored per process for distinct streams")
        let mut rng = RngStream::from_seed(0xAB9 ^ scv_true.to_bits());
        let mut ci = CiInterval::new(accuracy, ConfidenceLevel::P95, 50.0, 1e7, 1000.0);
        let true_rate = 0.2; // mean 5 ms
        let mut t = 0.0f64;
        let mut interval_end = IntervalPolicy::current_ms(&ci);
        let mut interval_start = 0.0f64;
        let mut count = 0u64;
        let mut estimates: Vec<f64> = Vec::new();
        for _ in 0..events {
            t += dist.sample(&mut rng);
            while t >= interval_end {
                let len = interval_end - interval_start;
                let m = Measurement {
                    departures: count,
                    ..Measurement::basic(interval_end, len, 0.0, 0.0)
                };
                estimates.push(count as f64 / len);
                let next = IntervalPolicy::observe(&mut ci, &m);
                interval_start = interval_end;
                interval_end += next;
                count = 0;
            }
            count += 1;
        }
        // Coverage over the second half (after the interval size settled).
        let tail = &estimates[estimates.len() / 2..];
        let covered = tail
            .iter()
            .filter(|&&x| (x - true_rate).abs() <= accuracy * true_rate)
            .count();
        let coverage = 100.0 * covered as f64 / tail.len().max(1) as f64;
        r.push_row(vec![
            name.to_string(),
            num(scv_true),
            num(ci.estimator().scv()),
            num(required_departures(scv_true, accuracy, ConfidenceLevel::P95)),
            num(IntervalPolicy::current_ms(&ci)),
            num(coverage),
        ]);
    }
    r.note("the required interval spans a ~30× range across processes with the *same* mean rate — the second moments, not the rate, set the §5 interval length ('this interval length clearly depends on the parameters of the departure process, especially its second moments')");
    r.note("achieved coverage lands within a few points of the promised 95% for the smooth and Poisson processes; the bursty process under-covers (the renewal CLT is only asymptotic and the sizing itself is estimated online) — the formula is the right first-order guide, not an exact guarantee");
    r
}
