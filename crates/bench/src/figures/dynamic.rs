//! Dynamic experiments: trajectories under stationary (Fig. 3), jump
//! (Figs. 13/14), sinusoidal (§9) and pathological (Figs. 7/8) workloads.

use std::path::Path;

use alc_analytic::surface::{FlatHumpSurface, RidgeSurface, Schedule, Surface};
use alc_core::controller::{
    FallbackPolicy, IncrementalSteps, LoadController, ParabolaApproximation,
};
use alc_core::measure::Measurement;
use alc_des::series::{write_aligned_csv, TimeSeries};
use alc_tpsim::config::CcKind;
use alc_tpsim::engine::Trajectories;
use alc_tpsim::experiment::run_trajectory;
use alc_tpsim::workload::WorkloadConfig;
use rayon::prelude::*;

use crate::plot;
use crate::report::Report;
use crate::table::num;
use crate::Scale;

use super::{control, is_params, pa_params, system};

/// Shared jump scenario of Figures 13/14: `k` jumps mid-run, which moves
/// the optimum's position abruptly.
fn jump_workload(scale: Scale, horizon_ms: f64) -> WorkloadConfig {
    match scale {
        Scale::Full => WorkloadConfig::k_jump(8.0, 16.0, horizon_ms / 2.0),
        Scale::Quick => WorkloadConfig::k_jump(4.0, 8.0, horizon_ms / 2.0),
    }
}

fn trajectory_horizon(scale: Scale) -> f64 {
    scale.pick_ms(2_000_000.0, 20_000.0) // 1000 intervals at Δt=2s (paper's axis)
}

fn write_trajectories(
    id: &str,
    traj: &Trajectories,
    out_dir: Option<&Path>,
) -> std::io::Result<()> {
    let Some(dir) = out_dir else { return Ok(()) };
    std::fs::create_dir_all(dir)?;
    let f = std::fs::File::create(dir.join(format!("{id}_trajectory.csv")))?;
    write_aligned_csv(
        std::io::BufWriter::new(f),
        &[
            &traj.bound,
            &traj.observed_mpl,
            &traj.throughput,
            &traj.optimum,
            &traj.k,
        ],
    )
}

/// Tracking summary against the analytic optimum line over a tail window.
fn tail_tracking(traj: &Trajectories, from_frac: f64) -> (f64, f64, f64) {
    let pts = traj.bound.points();
    let start = ((pts.len() as f64) * from_frac) as usize;
    let mut err = 0.0;
    let mut bound_mean = 0.0;
    let mut opt_mean = 0.0;
    let mut n = 0.0;
    for (i, &(t, b)) in pts.iter().enumerate().skip(start) {
        let opt = traj
            .optimum
            .value_at(alc_des::SimTime::new(t))
            .unwrap_or(f64::NAN);
        if opt.is_finite() {
            err += (b - opt).abs();
            bound_mean += b;
            opt_mean += opt;
            n += 1.0;
        }
        let _ = i;
    }
    if n == 0.0 {
        (f64::NAN, f64::NAN, f64::NAN)
    } else {
        (err / n, bound_mean / n, opt_mean / n)
    }
}

/// Figure 3: the Incremental Steps zig-zag around a stationary optimum.
pub fn fig03(scale: Scale, out_dir: Option<&Path>) -> Report {
    let horizon = scale.pick_ms(800_000.0, 20_000.0);
    let sys = system(scale, 500, 0xF1603);
    let ctl = alc_tpsim::config::ControlConfig {
        warmup_ms: 0.0,
        ..control(scale)
    };
    let (stats, traj) = run_trajectory(
        &sys,
        &WorkloadConfig::default(),
        CcKind::Certification,
        &ctl,
        Box::new(IncrementalSteps::new(is_params(scale))),
        horizon,
        true,
    );
    write_trajectories("fig03", &traj, out_dir).expect("trajectory CSV");

    // Zig-zag: count direction changes over the second half.
    let pts = traj.bound.points();
    let half = &pts[pts.len() / 2..];
    let mut flips = 0;
    let mut last_dir = 0i8;
    for w in half.windows(2) {
        let d = (w[1].1 - w[0].1).signum() as i8;
        if d != 0 && last_dir != 0 && d != last_dir {
            flips += 1;
        }
        if d != 0 {
            last_dir = d;
        }
    }
    let (err, bound_mean, opt_mean) = tail_tracking(&traj, 0.5);

    let mut r = Report::new(
        "fig03",
        "Trajectory of the Method of Incremental Steps (zig-zag ridge tracking)",
        &["metric", "value"],
    );
    r.push_row(vec!["samples".into(), pts.len().to_string()]);
    r.push_row(vec!["direction_changes_2nd_half".into(), flips.to_string()]);
    r.push_row(vec!["tail_mean_bound".into(), num(bound_mean)]);
    r.push_row(vec!["analytic_optimum".into(), num(opt_mean)]);
    r.push_row(vec!["tail_mean_abs_error".into(), num(err)]);
    r.push_row(vec![
        "throughput_per_s".into(),
        num(stats.throughput_per_sec),
    ]);
    r.chart(plot::chart(
        &[("bound n*(t)", &traj.bound), ("optimum", &traj.optimum)],
        96,
        16,
    ));
    r.note("the bound oscillates around the optimum in zig-zag fashion — each worsening measurement flips the direction (paper Fig. 3)");
    r
}

/// Drives a controller against a synthetic surface (no simulator noise),
/// returning (bound series, optimum series).
fn drive_surface(
    ctrl: &mut dyn LoadController,
    surface: &dyn Surface,
    steps: usize,
    interval_ms: f64,
) -> (TimeSeries, TimeSeries) {
    let mut bound_series = TimeSeries::new("bound");
    let mut opt_series = TimeSeries::new("optimum");
    let mut bound = ctrl.current_bound();
    for i in 0..steps {
        let t = i as f64 * interval_ms;
        let n = f64::from(bound);
        let perf = surface.performance(n, t);
        bound = ctrl.update(&Measurement::basic(t + interval_ms, interval_ms, perf, n));
        bound_series.push(alc_des::SimTime::new(t), f64::from(bound));
        opt_series.push(alc_des::SimTime::new(t), surface.optimum(t));
    }
    (bound_series, opt_series)
}

/// Figure 7: the flat-hump pathology — fits open upward; the fallback
/// policy decides whether the controller survives. Compares the §5.2
/// countermeasures.
pub fn fig07(scale: Scale, out_dir: Option<&Path>) -> Report {
    let surface = FlatHumpSurface {
        center: Schedule::Constant(200.0),
        height: Schedule::Constant(120.0),
        width: 120.0,
    };
    let steps = scale.pick(400, 80) as usize;
    let policies: Vec<(&str, FallbackPolicy)> = vec![
        ("hold-last", FallbackPolicy::HoldLast),
        ("gradient-probe", FallbackPolicy::GradientProbe { step: 8.0 }),
        ("clamp-to-safe", FallbackPolicy::ClampToSafe { bound: 150 }),
    ];

    let mut r = Report::new(
        "fig07",
        "Flat-hump pathology (upward-opening parabola) and §5.2 fallback policies",
        &[
            "fallback",
            "convex_fit_%",
            "cov_resets",
            "tail_mean_bound",
            "tail_perf_%_of_peak",
        ],
    );
    // The three fallback-policy drives are independent and noise-free —
    // run them concurrently, then do file I/O and row assembly in order.
    let results: Vec<_> = policies
        .par_iter()
        .map(|&(name, policy)| {
            let mut pa = ParabolaApproximation::new(alc_core::controller::PaParams {
                initial_bound: 40,
                max_bound: 500,
                fallback: policy,
                ..pa_params(Scale::Full)
            });
            let (bounds, _) = drive_surface(&mut pa, &surface, steps, 2000.0);
            (name, bounds, pa.diagnostics())
        })
        .collect();
    for (name, bounds, d) in results {
        if name == "gradient-probe" {
            if let Some(dir) = out_dir {
                std::fs::create_dir_all(dir).expect("results dir");
                let f = std::fs::File::create(dir.join("fig07_trajectory.csv"))
                    .expect("fig07 csv");
                bounds.write_csv(std::io::BufWriter::new(f)).expect("csv");
            }
        }
        let total = d.convex_fits + d.vertex_updates;
        let tail = bounds.tail_mean(0.25);
        let perf_pct = 100.0 * surface.performance(tail, 0.0) / 120.0;
        r.push_row(vec![
            name.to_string(),
            num(100.0 * d.convex_fits as f64 / total.max(1) as f64),
            d.covariance_resets.to_string(),
            num(tail),
            num(perf_pct),
        ]);
    }
    r.note("a broad flat hump yields upward-opening fits essentially permanently (paper Fig. 7); a naive vertex-chaser would fling the bound toward ±∞");
    r.note("gradient-probe and clamp-to-safe finish on the plateau top (≈100% of peak); hold-last merely freezes wherever the pathology began (≈64% here) — why GradientProbe is the default fallback");
    r
}

/// Figure 8: abrupt shape change — the bound suddenly sits deep in the
/// (convex) thrashing region; covariance reset + probing must recover.
pub fn fig08(scale: Scale, out_dir: Option<&Path>) -> Report {
    let steps = scale.pick(600, 120) as usize;
    let interval = 2000.0;
    let change_at = steps as f64 / 2.0 * interval;
    let surface = RidgeSurface {
        position: Schedule::Jump {
            at: change_at,
            before: 400.0,
            after: 80.0,
        },
        height: Schedule::Jump {
            at: change_at,
            before: 130.0,
            after: 60.0,
        },
        steepness: 3.0,
    };

    let mut r = Report::new(
        "fig08",
        "Abrupt shape change (old bound deep in the convex thrashing region)",
        &[
            "reset_after_convex",
            "recovery_intervals",
            "post_tail_bound",
            "new_optimum",
            "cov_resets",
        ],
    );
    for reset_after in [0u32, 3, 6] {
        let mut pa = ParabolaApproximation::new(alc_core::controller::PaParams {
            initial_bound: 50,
            max_bound: 600,
            reset_after_convex: reset_after,
            alpha: 0.9,
            ..pa_params(Scale::Full)
        });
        let (bounds, opts) = drive_surface(&mut pa, &surface, steps, interval);
        if reset_after == 6 {
            if let Some(dir) = out_dir {
                std::fs::create_dir_all(dir).expect("results dir");
                let f = std::fs::File::create(dir.join("fig08_trajectory.csv"))
                    .expect("fig08 csv");
                write_aligned_csv(
                    std::io::BufWriter::new(f),
                    &[&bounds, &opts],
                )
                .expect("csv");
            }
            r.chart(plot::chart(
                &[("bound n*(t)", &bounds), ("optimum", &opts)],
                96,
                12,
            ));
        }
        // Recovery: first post-change interval from which the bound stays
        // within 25% of the new optimum for 10 consecutive samples.
        let pts = bounds.points();
        let change_idx = steps / 2;
        let mut recovery = None;
        let mut streak = 0;
        for (i, &(_, b)) in pts.iter().enumerate().skip(change_idx) {
            if (b - 80.0).abs() <= 20.0 {
                streak += 1;
                if streak >= 10 {
                    recovery = Some(i - 9 - change_idx);
                    break;
                }
            } else {
                streak = 0;
            }
        }
        let d = pa.diagnostics();
        r.push_row(vec![
            if reset_after == 0 {
                "off".to_string()
            } else {
                reset_after.to_string()
            },
            recovery.map_or("never".to_string(), |x| x.to_string()),
            num(bounds.tail_mean(0.2)),
            "80".to_string(),
            d.covariance_resets.to_string(),
        ]);
    }
    r.note("with covariance reset the estimator discards the obsolete shape and re-locks onto the new optimum (paper Fig. 8 / §5.2); without it, stale history keeps the fit convex far longer");
    r
}

/// Shared runner for the Figure 13/14 jump scenarios.
fn jump_run(
    scale: Scale,
    ctrl: Box<dyn LoadController>,
    seed_tag: u64,
) -> (alc_tpsim::engine::RunStats, Trajectories, f64) {
    let horizon = trajectory_horizon(scale);
    let workload = jump_workload(scale, horizon);
    let sys = system(scale, 500, seed_tag);
    let ctl = alc_tpsim::config::ControlConfig {
        warmup_ms: 0.0,
        ..control(scale)
    };
    let (stats, traj) = run_trajectory(
        &sys,
        &workload,
        CcKind::Certification,
        &ctl,
        ctrl,
        horizon,
        true,
    );
    (stats, traj, horizon)
}

fn jump_report(
    id: &str,
    title: &str,
    stats: &alc_tpsim::engine::RunStats,
    traj: &Trajectories,
    horizon: f64,
) -> Report {
    let pts = traj.bound.points();
    let jump_idx = pts
        .iter()
        .position(|&(t, _)| t >= horizon / 2.0)
        .unwrap_or(pts.len() / 2);

    // Pre/post tail means vs the analytic optimum.
    let pre_bound: Vec<f64> = pts[jump_idx.saturating_sub(jump_idx / 4)..jump_idx]
        .iter()
        .map(|&(_, b)| b)
        .collect();
    let post_start = jump_idx + (pts.len() - jump_idx) * 3 / 4;
    let post_bound: Vec<f64> = pts[post_start..].iter().map(|&(_, b)| b).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let opt_pre = traj
        .optimum
        .value_at(alc_des::SimTime::new(pts[jump_idx.saturating_sub(1)].0))
        .unwrap_or(f64::NAN);
    let opt_post = traj
        .optimum
        .last_value()
        .unwrap_or(f64::NAN);

    // Response time: intervals until the bound first comes within 25% of
    // the new optimum after the jump.
    let response = pts[jump_idx..]
        .iter()
        .position(|&(_, b)| (b - opt_post).abs() <= 0.25 * opt_post);

    // Post-jump tracking error (mean |n* - n_opt| over the last quarter).
    let mut post_err = 0.0;
    for &(_, b) in &pts[post_start..] {
        post_err += (b - opt_post).abs();
    }
    post_err /= post_bound.len().max(1) as f64;

    let mut r = Report::new(id, title, &["metric", "value"]);
    r.push_row(vec!["samples".into(), pts.len().to_string()]);
    r.push_row(vec!["optimum_before".into(), num(opt_pre)]);
    r.push_row(vec!["optimum_after".into(), num(opt_post)]);
    r.push_row(vec!["pre_jump_mean_bound".into(), num(mean(&pre_bound))]);
    r.push_row(vec!["post_jump_mean_bound".into(), num(mean(&post_bound))]);
    r.push_row(vec![
        "response_intervals_to_25%".into(),
        response.map_or("never".into(), |x| x.to_string()),
    ]);
    r.push_row(vec!["post_tracking_error".into(), num(post_err)]);
    r.push_row(vec![
        "throughput_per_s".into(),
        num(stats.throughput_per_sec),
    ]);
    r.push_row(vec!["abort_ratio".into(), num(stats.abort_ratio)]);
    r.chart(plot::chart(
        &[("bound n*(t)", &traj.bound), ("optimum", &traj.optimum)],
        96,
        16,
    ));
    r
}

/// Figure 13: IS trajectory when the optimum's position jumps abruptly.
pub fn fig13(scale: Scale, out_dir: Option<&Path>) -> Report {
    let (stats, traj, horizon) = jump_run(
        scale,
        Box::new(IncrementalSteps::new(is_params(scale))),
        0xF1613,
    );
    write_trajectories("fig13", &traj, out_dir).expect("trajectory CSV");
    let mut r = jump_report(
        "fig13",
        "Incremental Steps under an abrupt jump of the optimum (k: 8→16)",
        &stats,
        &traj,
        horizon,
    );
    r.note("IS reacts quickly to the jump but hunts around the new optimum (paper: 'reacts very quickly ... but has serious problems to adjust correctly to the new load situation')");
    r
}

/// Figure 14: PA trajectory on the same jump.
pub fn fig14(scale: Scale, out_dir: Option<&Path>) -> Report {
    let (stats, traj, horizon) = jump_run(
        scale,
        Box::new(ParabolaApproximation::new(pa_params(scale))),
        0xF1613, // same seed as fig13: identical workload realization
    );
    write_trajectories("fig14", &traj, out_dir).expect("trajectory CSV");
    let mut r = jump_report(
        "fig14",
        "Parabola Approximation under the same abrupt jump (k: 8→16)",
        &stats,
        &traj,
        horizon,
    );
    r.note("PA needs more time to respond but tracks the new optimum more accurately and reliably; the residual oscillation is the §4.2 excitation dither (paper Fig. 14)");
    r
}

/// §9's gradual case: both controllers follow a sinusoidally moving
/// optimum.
pub fn sinus(scale: Scale, out_dir: Option<&Path>) -> Report {
    let horizon = scale.pick_ms(1_800_000.0, 24_000.0);
    let period = horizon / 3.0;
    let workload = WorkloadConfig::k_sinusoid(10.0, 4.0, period);
    let sys = system(scale, 500, 0xF16AA);
    let ctl = alc_tpsim::config::ControlConfig {
        warmup_ms: 0.0,
        ..control(scale)
    };

    let mut r = Report::new(
        "sinus",
        "Sinusoidal workload: both controllers follow gradual changes (§9)",
        &[
            "controller",
            "tracking_error",
            "tracking_error_%_of_opt",
            "throughput_per_s",
            "abort_ratio",
        ],
    );
    // IS and PA are independent runs on the same scenario. Controllers
    // are built inside the workers via paired constructors (a boxed
    // controller need not be Send, and pairing name with builder leaves
    // no fallthrough to mislabel a future addition).
    type Build = Box<dyn Fn() -> Box<dyn LoadController> + Sync>;
    let controllers: Vec<(&str, Build)> = vec![
        (
            "IS",
            Box::new(move || Box::new(IncrementalSteps::new(is_params(scale)))),
        ),
        (
            "PA",
            Box::new(move || Box::new(ParabolaApproximation::new(pa_params(scale)))),
        ),
    ];
    let results: Vec<_> = controllers
        .par_iter()
        .map(|(name, build)| {
            let ctrl = build();
            let (stats, traj) = run_trajectory(
                &sys,
                &workload,
                CcKind::Certification,
                &ctl,
                ctrl,
                horizon,
                true,
            );
            (name, stats, traj)
        })
        .collect();
    for (name, stats, traj) in results {
        if let Some(dir) = out_dir {
            write_trajectories(&format!("sinus_{name}"), &traj, Some(dir))
                .expect("trajectory CSV");
        }
        let (err, _, opt_mean) = tail_tracking(&traj, 0.33);
        r.push_row(vec![
            name.to_string(),
            num(err),
            num(100.0 * err / opt_mean),
            num(stats.throughput_per_sec),
            num(stats.abort_ratio),
        ]);
        r.chart(format!(
            "{name}:\n{}",
            plot::chart(
                &[("bound n*(t)", &traj.bound), ("optimum", &traj.optimum)],
                96,
                12,
            )
        ));
    }
    r.note("'While both algorithms were able to follow gradual changes…' — tracking errors stay a modest fraction of the optimum for IS and PA alike");
    r
}
