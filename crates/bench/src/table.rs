//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// Renders rows as an aligned text table with a header line, appended to
/// `out` — all formatting lands in the caller's buffer directly, never in
/// per-row intermediate strings.
pub fn render_into(out: &mut String, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.reserve((rows.len() + 2) * (total + 1));
    let fmt_cell = |out: &mut String, i: usize, cell: &str, widths: &[usize]| {
        if i > 0 {
            out.push_str("  ");
        }
        let w = widths.get(i).copied().unwrap_or(cell.len());
        // Right-align numbers, left-align text.
        if cell.parse::<f64>().is_ok() {
            let _ = write!(out, "{cell:>w$}");
        } else {
            let _ = write!(out, "{cell:<w$}");
        }
    };
    for (i, h) in headers.iter().enumerate() {
        fmt_cell(out, i, h, &widths);
    }
    out.push('\n');
    for _ in 0..total {
        out.push('-');
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            fmt_cell(out, i, cell, &widths);
        }
        out.push('\n');
    }
}

/// Renders rows as an aligned text table with a header line.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    render_into(&mut out, headers, rows);
    out
}

/// Formats a float with a sensible number of digits for tables.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "-".to_string();
    }
    let a = v.abs();
    if a >= 1000.0 || (a - a.round()).abs() < 1e-9 && a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.1 {
        format!("{v:.2}")
    } else if a == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1.5".into()],
                vec!["b".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    fn num_formatting() {
        // {:.0} rounds half-to-even.
        assert_eq!(num(1234.5), "1234");
        assert_eq!(num(1235.5), "1236");
        assert_eq!(num(12.34), "12.3");
        assert_eq!(num(1.234), "1.23");
        assert_eq!(num(0.01234), "0.0123");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "-");
    }
}
