//! `alc-bench` — the experiment harness that regenerates every figure of
//! Heiss & Wagner (VLDB 1991), plus shared helpers for the Criterion
//! microbenchmarks.
//!
//! Each `figXX`/ablation experiment lives in [`figures`] as a pure
//! function returning a [`report::Report`]; the `repro` binary prints it
//! and writes `results/<id>.csv`. The [`Scale`] knob switches between the
//! paper-scale configuration (release-mode runs, seconds each) and a
//! down-scaled smoke configuration used by benches and CI tests.

pub mod baseline;
pub mod figures;
pub mod plot;
pub mod report;
pub mod table;

/// Experiment size: paper-scale or CI-scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The configuration whose outputs EXPERIMENTS.md records.
    Full,
    /// A small configuration for smoke tests and Criterion benches.
    Quick,
}

impl Scale {
    /// Scales a count down in quick mode.
    pub fn pick(self, full: u32, quick: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }

    /// Scales a duration (ms) down in quick mode.
    pub fn pick_ms(self, full: f64, quick: f64) -> f64 {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}
