//! Experiment reports: a table, free-form notes, and optional CSV output.
//!
//! Rendering goes through a single reused `String` per report (one
//! allocation, one `write_all`) instead of per-cell `format!` calls into
//! the writer — the sweep binaries emit thousands of rows, and the
//! output stage should never pay a syscall or realloc per row.

use std::fmt::Write as _;
use std::path::Path;

use crate::table;

/// The result of one experiment run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (`fig12`, `abl-dither`, …).
    pub id: String,
    /// One-line description (what the paper artifact shows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Preformatted charts rendered verbatim between table and notes
    /// (ASCII trajectory plots for the figure experiments).
    pub charts: Vec<String>,
    /// Headline findings appended under the table — these are the
    /// paper-vs-measured statements EXPERIMENTS.md quotes.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            charts: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a preformatted chart (rendered verbatim after the table).
    pub fn chart(&mut self, s: impl Into<String>) {
        self.charts.push(s.into());
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the report as text into `out` (appending), reusing the
    /// caller's buffer across reports.
    pub fn render_into(&self, out: &mut String) {
        let headers: Vec<&str> = self.headers.iter().map(|s| s.as_str()).collect();
        let _ = write!(out, "== {} — {}\n\n", self.id, self.title);
        table::render_into(out, &headers, &self.rows);
        for c in &self.charts {
            out.push('\n');
            out.push_str(c);
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                let _ = writeln!(out, "  * {n}");
            }
        }
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders the table as CSV into `out` (appending).
    pub fn render_csv_into(&self, out: &mut String) {
        out.reserve(self.rows.len() * 32 + 64);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let mut first = true;
            for cell in row {
                if !first {
                    out.push(',');
                }
                out.push_str(cell);
                first = false;
            }
            out.push('\n');
        }
    }

    /// Writes the table as `<dir>/<id>.csv` — rendered into one buffer
    /// and written with a single call.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut buf = String::new();
        self.render_csv_into(&mut buf);
        std::fs::write(&path, buf.as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_render_and_csv() {
        let mut r = Report::new("figX", "demo", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.note("note line");
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("note line"));

        let dir = std::env::temp_dir().join("alc_bench_test_csv");
        let path = r.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }
}
