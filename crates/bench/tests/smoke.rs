//! Smoke tests keeping the bench binaries wired into the workspace: the
//! `repro` and `sweep` CLIs must stay buildable and their cheap code
//! paths (help, catalog, a math-only figure) must exit 0.

use std::path::PathBuf;
use std::process::Command;

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"))
}

#[test]
fn repro_help_exits_zero() {
    let out = run(env!("CARGO_BIN_EXE_repro"), &["--help"]);
    assert!(out.status.success(), "repro --help failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repro"), "unexpected help text: {text}");
}

#[test]
fn repro_list_prints_catalog() {
    let out = run(env!("CARGO_BIN_EXE_repro"), &["list"]);
    assert!(out.status.success(), "repro list failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for id in ["fig01", "fig12", "fig13", "fig14", "abl-hotspot"] {
        assert!(text.contains(id), "catalog is missing `{id}`: {text}");
    }
}

#[test]
fn repro_rejects_unknown_experiment() {
    let out = run(env!("CARGO_BIN_EXE_repro"), &["no-such-figure"]);
    assert!(!out.status.success(), "unknown experiment must fail");
}

#[test]
fn repro_quick_fig06_writes_csv() {
    // fig06 is pure math (no simulation), so even `--quick` stays fast;
    // this exercises the full argument parsing → runner → CSV pipeline.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("repro-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(
        env!("CARGO_BIN_EXE_repro"),
        &["--quick", "--out", dir.to_str().unwrap(), "fig06"],
    );
    assert!(out.status.success(), "repro fig06 failed: {out:?}");
    let csv = dir.join("fig06.csv");
    assert!(csv.is_file(), "expected {} to exist", csv.display());
    let body = std::fs::read_to_string(&csv).expect("readable csv");
    assert!(body.lines().count() > 1, "csv has no data rows: {body}");

    // The run manifest must land next to the CSVs and parse back.
    let manifest = std::fs::read_to_string(dir.join("run_manifest.json"))
        .expect("run_manifest.json written");
    let parsed: serde_json::Value = serde_json::from_str(&manifest).expect("valid JSON");
    assert_eq!(
        parsed.get("scale").cloned(),
        Some(serde_json::Value::Str("Quick".into()))
    );
    // The recorded control config must match the scale actually run.
    let control: alc_tpsim::config::ControlConfig = serde_json::from_str(
        &serde_json::to_string(parsed.get("control").expect("control recorded")).unwrap(),
    )
    .expect("control parses");
    assert_eq!(control, alc_bench::figures::control(alc_bench::Scale::Quick));
}

#[test]
fn perfgate_help_exits_zero() {
    let out = run(env!("CARGO_BIN_EXE_perfgate"), &["--help"]);
    assert!(out.status.success(), "perfgate --help failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: perfgate"), "unexpected help text: {text}");
}

#[test]
fn perfgate_rejects_unknown_flag() {
    let out = run(env!("CARGO_BIN_EXE_perfgate"), &["--frobnicate"]);
    assert!(!out.status.success(), "unknown flag must fail");
}

#[test]
fn sweep_help_exits_zero() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["--help"]);
    assert!(out.status.success(), "sweep --help failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: sweep"), "unexpected help text: {text}");
}

#[test]
fn sweep_rejects_unknown_flag() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["--frobnicate"]);
    assert!(!out.status.success(), "unknown flag must fail");
}

/// Experiment configs must survive a JSON round trip, so runs can be
/// stored next to their CSVs and replayed.
#[test]
fn system_config_round_trips_through_json() {
    let sys = alc_bench::figures::quick_system(40, 0x5EED);
    let json = serde_json::to_string_pretty(&sys).expect("serialize");
    let back: alc_tpsim::config::SystemConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, sys);

    let ctl = alc_tpsim::config::ControlConfig::default();
    let back: alc_tpsim::config::ControlConfig =
        serde_json::from_str(&serde_json::to_string(&ctl).expect("serialize")).expect("parse");
    assert_eq!(back, ctl);
}
