//! Determinism pin for the simulation hot path.
//!
//! The golden files under `tests/golden/` were generated from the seed
//! implementation (`BinaryHeap` + cancel-set calendar, `HashMap` lock
//! table). Any rewrite of the calendar, lock table or engine internals
//! must keep every figure of the quick catalog and a direct simulator run
//! per CC protocol **byte-identical** — performance work must never
//! change a simulation result.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p alc-bench --test golden`
//! only for changes that intentionally alter simulation behavior, and say
//! so in the commit message.

use std::fs;
use std::path::PathBuf;

use alc_bench::{figures, Scale};
use alc_tpsim::config::{CcKind, ControlConfig};
use alc_tpsim::engine::Simulator;
use alc_tpsim::workload::WorkloadConfig;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

fn compare_or_bless(name: &str, actual: &[u8]) {
    let golden_path = golden_dir().join(name);
    if blessing() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&golden_path, actual).expect("write golden");
        return;
    }
    let golden = fs::read(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
    assert!(
        golden == actual,
        "{name} diverged from the golden output — the hot-path change \
         altered simulation results (rerun with UPDATE_GOLDEN=1 only if \
         this was intentional)"
    );
}

/// Every CSV the quick catalog produces must match the seed bytes.
#[test]
fn quick_catalog_outputs_are_byte_identical() {
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden-actual");
    let _ = fs::remove_dir_all(&out);
    fs::create_dir_all(&out).expect("create output dir");
    for (_, _, run) in figures::catalog() {
        let report = run(Scale::Quick, Some(out.as_path()));
        report.write_csv(&out).expect("write csv");
    }
    let mut names: Vec<String> = fs::read_dir(&out)
        .expect("read actual dir")
        .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".csv"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "catalog produced no CSVs");
    for name in &names {
        let actual = fs::read(out.join(name)).expect("read actual csv");
        compare_or_bless(name, &actual);
    }
    // No golden CSV may be silently dropped by a catalog change either —
    // except the ablations ported to scenario specs, whose goldens are
    // now pinned by `crates/scenario/tests/golden_port.rs` instead.
    const PORTED_TO_SCENARIOS: [&str; 7] = [
        "abl-dither.csv",
        "abl-alpha.csv",
        "abl-displacement.csv",
        "abl-rules.csv",
        "abl-cc.csv",
        "abl-victim.csv",
        "abl-hybrid.csv",
    ];
    for entry in fs::read_dir(golden_dir()).expect("read golden dir") {
        let name = entry.expect("dir entry").file_name().into_string().unwrap();
        if name.ends_with(".csv") && !PORTED_TO_SCENARIOS.contains(&name.as_str()) {
            assert!(
                names.contains(&name),
                "golden {name} no longer produced by the catalog"
            );
        }
    }
}

/// Direct engine runs (stats + controller trajectories) per CC protocol
/// must match the seed bytes: this pins the event order, the RNG draw
/// sequence and the lock-table grant order all at once.
#[test]
fn direct_sim_runs_are_byte_identical() {
    let mut blob = String::new();
    for cc in CcKind::ALL {
        let mut sim = Simulator::new(
            figures::quick_system(40, 0xA11CE),
            WorkloadConfig::default(),
            cc,
            ControlConfig {
                sample_interval_ms: 500.0,
                initial_bound: 12,
                warmup_ms: 2_000.0,
                displacement: true,
                ..ControlConfig::default()
            },
            Some(Box::new(alc_core::controller::IncrementalSteps::new(
                alc_core::controller::IsParams {
                    initial_bound: 12,
                    max_bound: 40,
                    ..alc_core::controller::IsParams::default()
                },
            ))),
        );
        sim.set_record_optimum(false);
        let stats = sim.run(25_000.0);
        let traj = sim.trajectories();
        blob.push_str(&format!(
            "{{\"cc\":{:?},\"stats\":{},\"bound\":{},\"throughput\":{},\"mpl\":{}}}\n",
            cc,
            serde_json::to_string(&stats).expect("stats serialize"),
            serde_json::to_string(&traj.bound).expect("bound serialize"),
            serde_json::to_string(&traj.throughput).expect("throughput serialize"),
            serde_json::to_string(&traj.observed_mpl).expect("mpl serialize"),
        ));
    }
    compare_or_bless("direct_sim.jsonl", blob.as_bytes());
}
