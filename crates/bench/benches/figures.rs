//! One bench per paper artifact: regenerates each figure at Quick scale
//! so the full pipeline (simulate → measure → control → report) is
//! exercised and timed by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};

use alc_bench::{figures, Scale};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_regeneration_quick");
    g.sample_size(10);

    g.bench_function("fig01_thrashing_curve", |b| {
        b.iter(|| figures::fig01(Scale::Quick))
    });
    g.bench_function("fig02_surface", |b| b.iter(|| figures::fig02(Scale::Quick)));
    g.bench_function("fig03_is_trajectory", |b| {
        b.iter(|| figures::fig03(Scale::Quick, None))
    });
    g.bench_function("fig04_pa_fit", |b| b.iter(|| figures::fig04(Scale::Quick)));
    g.bench_function("fig06_memory_shapes", |b| {
        b.iter(|| figures::fig06(Scale::Quick))
    });
    g.bench_function("fig07_flat_hump", |b| {
        b.iter(|| figures::fig07(Scale::Quick, None))
    });
    g.bench_function("fig08_abrupt_change", |b| {
        b.iter(|| figures::fig08(Scale::Quick, None))
    });
    g.bench_function("sec6_indicators", |b| b.iter(|| figures::sec6(Scale::Quick)));
    g.bench_function("fig12_with_without_control", |b| {
        b.iter(|| figures::fig12(Scale::Quick))
    });
    g.bench_function("fig13_is_jump", |b| {
        b.iter(|| figures::fig13(Scale::Quick, None))
    });
    g.bench_function("fig14_pa_jump", |b| {
        b.iter(|| figures::fig14(Scale::Quick, None))
    });
    g.bench_function("sinus_tracking", |b| {
        b.iter(|| figures::sinus(Scale::Quick, None))
    });
    g.bench_function("abl_restart_policies", |b| {
        b.iter(|| figures::abl_restart(Scale::Quick))
    });
    g.bench_function("abl_hotspot_skew", |b| {
        b.iter(|| figures::abl_hotspot(Scale::Quick))
    });
    g.bench_function("abl_open_arrivals", |b| {
        b.iter(|| figures::abl_open(Scale::Quick))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
