//! End-to-end simulator throughput (simulated transactions per wall
//! second) — bounds how long the paper-scale experiments take.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use alc_bench::figures::quick_system;
use alc_tpsim::config::{CcKind, ControlConfig};
use alc_tpsim::engine::Simulator;
use alc_tpsim::workload::WorkloadConfig;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);

    for cc in [
        CcKind::Certification,
        CcKind::TwoPhaseLocking,
        CcKind::TimestampOrdering,
    ] {
        g.bench_function(format!("run_10s_sim_{cc:?}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new(
                        quick_system(40, 7),
                        WorkloadConfig::default(),
                        cc,
                        ControlConfig {
                            initial_bound: u32::MAX,
                            warmup_ms: 0.0,
                            ..ControlConfig::default()
                        },
                        None,
                    );
                    sim.set_record_optimum(false);
                    sim
                },
                |mut sim| sim.run_until(10_000.0),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
