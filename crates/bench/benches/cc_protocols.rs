//! Concurrency-control primitive costs: one full access→validate→commit
//! cycle per protocol, plus the 2PL block/deadlock path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use alc_tpsim::cc::{
    AccessOutcome, Certification, ConcurrencyControl, Mvto, Prevention, PreventionPolicy,
    TimestampOrdering, TwoPhaseLocking,
};

fn bench_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("cc_cycle_k8");

    g.bench_function("certification", |b| {
        let mut cc = Certification::new(4);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            cc.begin(0, ts);
            for i in 0..8u64 {
                cc.access(0, (ts * 13 + i) % 1000, i % 4 == 0);
            }
            let v = cc.validate(0);
            if v.ok {
                cc.commit(0);
            } else {
                cc.abort(0);
            }
            black_box(v.ok)
        });
    });

    g.bench_function("two_phase_locking", |b| {
        let mut cc = TwoPhaseLocking::new(4);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            cc.begin(0, ts);
            for i in 0..8u64 {
                cc.access(0, (ts * 13 + i) % 1000, i % 4 == 0);
            }
            cc.validate(0);
            cc.commit(0);
        });
    });

    g.bench_function("timestamp_ordering", |b| {
        let mut cc = TimestampOrdering::new(4);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            cc.begin(0, ts);
            for i in 0..8u64 {
                if cc.access(0, (ts * 13 + i) % 1000, i % 4 == 0) == AccessOutcome::Abort {
                    cc.abort(0);
                    return;
                }
            }
            cc.validate(0);
            cc.commit(0);
        });
    });

    for (name, policy) in [
        ("wound_wait", PreventionPolicy::WoundWait),
        ("wait_die", PreventionPolicy::WaitDie),
    ] {
        g.bench_function(name, |b| {
            let mut cc = Prevention::new(policy, 4);
            let mut ts = 0u64;
            b.iter(|| {
                ts += 1;
                cc.begin(0, ts);
                for i in 0..8u64 {
                    cc.access(0, (ts * 13 + i) % 1000, i % 4 == 0);
                }
                cc.validate(0);
                cc.commit(0);
            });
        });
    }

    g.bench_function("mvto", |b| {
        let mut cc = Mvto::new(4);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            cc.begin(0, ts);
            for i in 0..8u64 {
                if cc.access(0, (ts * 13 + i) % 1000, i % 4 == 0) == AccessOutcome::Abort {
                    cc.abort(0);
                    return;
                }
            }
            if cc.validate(0).ok {
                cc.commit(0);
            } else {
                cc.abort(0);
            }
        });
    });

    g.finish();
}

fn bench_prevention_victim_scan(c: &mut Criterion) {
    c.bench_function("wound_wait_victim_scan_16_holders", |b| {
        // 16 shared holders, one older exclusive requester queued: the
        // wound rule scans all blocking targets per call.
        let mut cc = Prevention::new(PreventionPolicy::WoundWait, 18);
        for i in 0..16usize {
            cc.begin(i, 100 + i as u64);
            assert_eq!(cc.access(i, 7, false), AccessOutcome::Granted);
        }
        cc.begin(16, 1); // oldest
        assert_eq!(cc.access(16, 7, true), AccessOutcome::Blocked);
        b.iter(|| black_box(cc.deadlock_victim(16)));
    });
}

fn bench_mvto_version_chains(c: &mut Criterion) {
    c.bench_function("mvto_read_deep_chain", |b| {
        // Reads binary-search-free scan over the version chain: measure a
        // full-depth chain lookup.
        let mut cc = Mvto::with_max_versions(2, 64);
        for ts in 1..=64u64 {
            cc.begin(0, ts);
            cc.access(0, 7, true);
            assert!(cc.validate(0).ok);
            cc.commit(0);
        }
        let mut ts = 1000u64;
        b.iter(|| {
            ts += 1;
            cc.begin(1, ts);
            black_box(cc.access(1, 7, false));
            cc.abort(1);
        });
    });
}

fn bench_deadlock_detection(c: &mut Criterion) {
    c.bench_function("2pl_deadlock_check_chain_16", |b| {
        // A 16-deep waits-for chain, no cycle: worst-case DFS without hit.
        let mut cc = TwoPhaseLocking::new(17);
        for i in 0..17usize {
            cc.begin(i, i as u64 + 1);
        }
        for i in 0..17usize {
            assert_eq!(cc.access(i, i as u64, true), AccessOutcome::Granted);
        }
        for i in 1..17usize {
            assert_eq!(cc.access(i, (i - 1) as u64, true), AccessOutcome::Blocked);
        }
        b.iter(|| black_box(cc.deadlock_victim(16)));
    });
}

criterion_group!(
    benches,
    bench_cycles,
    bench_deadlock_detection,
    bench_prevention_victim_scan,
    bench_mvto_version_chains
);
criterion_main!(benches);
