//! Distribution sampling cost — exponential draws (think, CPU, open
//! arrivals) dominate the simulator's per-event RNG budget, so the
//! inverse-CDF (`ln()` per draw) and ziggurat (`ln()`-free) samplers are
//! raced here.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use alc_des::dist::{Dist, Sample as _};
use alc_des::rng::RngStream;

fn bench_dist(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist");

    g.bench_function("exponential_inverse_cdf", |b| {
        let d = Dist::exponential(4.0);
        let mut rng = RngStream::from_seed(1);
        b.iter(|| black_box(d.sample(&mut rng)));
    });

    g.bench_function("exponential_ziggurat", |b| {
        let d = Dist::exponential_fast(4.0);
        let mut rng = RngStream::from_seed(1);
        b.iter(|| black_box(d.sample(&mut rng)));
    });

    g.bench_function("erlang4", |b| {
        let d = Dist::Erlang(alc_des::dist::Erlang {
            stages: 4,
            mean: 8.0,
        });
        let mut rng = RngStream::from_seed(1);
        b.iter(|| black_box(d.sample(&mut rng)));
    });

    g.finish();
}

criterion_group!(benches, bench_dist);
criterion_main!(benches);
