//! Displacement strategy race: real `Calendar::cancel` tombstoning vs
//! the engine's current lazy generation-check skipping, under heavy
//! displacement (the ROADMAP "engine event cancellation" question).
//!
//! Both strategies run the same simulator-shaped churn: a standing
//! population of events, pop-one/schedule-one, and a displacement rate
//! `d` — the fraction of scheduled events that get invalidated before
//! they fire (what a bound drop or an abort does to in-flight
//! `CpuDone`/`DiskDone`/`RestartBegin` events).
//!
//! * **lazy** — the engine's scheme: the displaced event stays in the
//!   calendar; when it surfaces, a generation check recognizes it as
//!   stale and the handler discards it (one extra pop per displaced
//!   event, no bookkeeping at displacement time).
//! * **cancel** — the displaced event's token is cancelled on the spot:
//!   the payload drops immediately and the entry is reaped inside the
//!   calendar (`settle`/`refill`) without ever reaching the handler.
//!
//! The verdict (recorded in ROADMAP.md) decides whether the engine
//! should adopt real cancellation for displacement-heavy paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use alc_des::rng::RngStream;
use alc_des::{Calendar, EventToken, SimTime};

/// Standing event population, matching a mid-size simulator run.
const POPULATION: usize = 4_096;
/// Pops measured per iteration batch.
const OPS: usize = 20_000;

/// The lazy scheme: displaced events keep their calendar entry; the
/// consumer checks a generation table at fire time and discards stale
/// hits exactly like the engine's `if generation != txns[i].generation`
/// early-outs.
fn run_lazy(displace_per_mille: u32) -> u64 {
    let mut cal: Calendar<(usize, u64)> = Calendar::with_capacity(POPULATION * 2);
    let mut generations = vec![0u64; POPULATION];
    let mut rng = RngStream::from_seed(0xC0FFEE);
    for slot in 0..POPULATION {
        cal.schedule(SimTime::new(rng.uniform(0.0, 1_000.0)), (slot, 0));
    }
    let mut live_fires = 0u64;
    let mut stale_pops = 0u64;
    while (live_fires as usize) < OPS {
        let (at, (slot, generation)) = cal.pop().expect("population never drains");
        if generation != generations[slot] {
            stale_pops += 1; // stale: the lazy skip — costs a pop, nothing else
            continue;
        }
        live_fires += 1;
        // Displace this slot's *next* event with probability d: bump the
        // generation (the old entry stays queued) and reschedule.
        if rng.below(1_000) < u64::from(displace_per_mille) {
            generations[slot] += 1;
            cal.schedule(
                SimTime::new(at.millis() + rng.uniform(0.0, 1_000.0)),
                (slot, generations[slot]),
            );
            // The displaced-then-replaced event: schedule the doomed one
            // too so both strategies process the same schedule count.
            cal.schedule(
                SimTime::new(at.millis() + rng.uniform(0.0, 1_000.0)),
                (slot, generations[slot] - 1),
            );
        } else {
            cal.schedule(
                SimTime::new(at.millis() + rng.uniform(0.0, 1_000.0)),
                (slot, generations[slot]),
            );
        }
    }
    black_box(stale_pops);
    live_fires
}

/// The cancel scheme: displacement cancels the doomed event's token on
/// the spot, so it never surfaces at the consumer.
fn run_cancel(displace_per_mille: u32) -> u64 {
    let mut cal: Calendar<usize> = Calendar::with_capacity(POPULATION * 2);
    let mut rng = RngStream::from_seed(0xC0FFEE);
    for slot in 0..POPULATION {
        cal.schedule(SimTime::new(rng.uniform(0.0, 1_000.0)), slot);
    }
    let mut live_fires = 0u64;
    let mut doomed: Vec<EventToken> = Vec::with_capacity(OPS);
    while (live_fires as usize) < OPS {
        let (at, slot) = cal.pop().expect("population never drains");
        live_fires += 1;
        if rng.below(1_000) < u64::from(displace_per_mille) {
            cal.schedule(SimTime::new(at.millis() + rng.uniform(0.0, 1_000.0)), slot);
            // Schedule the doomed twin, then cancel it immediately —
            // same schedule count as the lazy scheme, but the entry is
            // tombstoned instead of surviving to fire.
            let tok =
                cal.schedule(SimTime::new(at.millis() + rng.uniform(0.0, 1_000.0)), slot);
            cal.cancel(tok);
            doomed.push(tok); // retained so token bookkeeping is honest
        } else {
            cal.schedule(SimTime::new(at.millis() + rng.uniform(0.0, 1_000.0)), slot);
        }
    }
    black_box(&doomed);
    live_fires
}

fn bench_cancellation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cancellation");
    for displace_per_mille in [100u32, 500, 900] {
        g.bench_function(format!("lazy_skip_d{displace_per_mille}"), |b| {
            b.iter(|| black_box(run_lazy(black_box(displace_per_mille))));
        });
        g.bench_function(format!("real_cancel_d{displace_per_mille}"), |b| {
            b.iter(|| black_box(run_cancel(black_box(displace_per_mille))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cancellation);
criterion_main!(benches);
