//! AdaptiveGate acquire/release cost, uncontended and contended — the
//! gate sits on every transaction's admission path.

// Benchmarking the live gate is wall-clock work by nature, and bench
// threads may unwrap join handles.
#![allow(clippy::disallowed_methods, clippy::unwrap_used)]

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use alc_core::gate::AdaptiveGate;

fn bench_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("gate");

    g.bench_function("try_acquire_release_uncontended", |b| {
        let gate = AdaptiveGate::new(64);
        b.iter(|| {
            let p = gate.try_acquire().expect("free slot");
            black_box(&p);
        });
    });

    g.bench_function("acquire_release_uncontended", |b| {
        let gate = AdaptiveGate::new(64);
        b.iter(|| {
            let p = gate.acquire();
            black_box(&p);
        });
    });

    g.bench_function("set_limit", |b| {
        let gate = AdaptiveGate::new(64);
        let mut v = 64u32;
        b.iter(|| {
            v = if v == 64 { 65 } else { 64 };
            gate.set_limit(black_box(v));
        });
    });

    g.bench_function("acquire_release_4_threads", |b| {
        b.iter_custom(|iters| {
            let gate = Arc::new(AdaptiveGate::new(8));
            let per_thread = iters / 4 + 1;
            let start = std::time::Instant::now();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    std::thread::spawn(move || {
                        for _ in 0..per_thread {
                            let p = gate.acquire_owned();
                            black_box(&p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            start.elapsed()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_gate);
criterion_main!(benches);
