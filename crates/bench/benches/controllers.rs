//! Per-update cost of each load controller — the control loop runs once
//! per measurement interval, so these must be (and are) microseconds-cheap
//! compared to the interval.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use alc_core::controller::{
    Hybrid, HybridParams, IncrementalSteps, IsParams, IyerRule, IyerRuleParams, LoadController,
    OuterParams, PaOuterParams, PaParams, ParabolaApproximation, SelfTuningIs, SelfTuningPa,
};
use alc_core::measure::Measurement;

fn measurement(i: u64) -> Measurement {
    let n = 100.0 + (i % 40) as f64;
    Measurement {
        departures: 200,
        aborts: 10,
        conflicts_per_txn: 0.4,
        mean_response_ms: 250.0,
        ..Measurement::basic(i as f64 * 2000.0, 2000.0, 130.0 + (i % 7) as f64, n)
    }
}

fn bench_controllers(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller_update");

    g.bench_function("incremental_steps", |b| {
        let mut ctrl = IncrementalSteps::new(IsParams::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(ctrl.update(&measurement(i)))
        });
    });

    g.bench_function("parabola_approximation", |b| {
        let mut ctrl = ParabolaApproximation::new(PaParams::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(ctrl.update(&measurement(i)))
        });
    });

    g.bench_function("iyer_rule", |b| {
        let mut ctrl = IyerRule::new(IyerRuleParams::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(ctrl.update(&measurement(i)))
        });
    });

    g.bench_function("self_tuning_is", |b| {
        let mut ctrl = SelfTuningIs::new(IsParams::default(), OuterParams::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(ctrl.update(&measurement(i)))
        });
    });

    g.bench_function("self_tuning_pa", |b| {
        let mut ctrl = SelfTuningPa::new(PaParams::default(), PaOuterParams::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(ctrl.update(&measurement(i)))
        });
    });

    g.bench_function("hybrid_is_pa", |b| {
        let mut ctrl = Hybrid::new(HybridParams::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(ctrl.update(&measurement(i)))
        });
    });

    g.finish();
}

fn bench_rls(c: &mut Criterion) {
    use alc_core::estimator::Rls;
    c.bench_function("rls3_update", |b| {
        let mut rls = Rls::<3>::new(0.95, 1e4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let x = (i % 100) as f64 / 100.0;
            black_box(rls.update(&[1.0, x, x * x], 100.0 + x))
        });
    });
}

criterion_group!(benches, bench_controllers, bench_rls);
criterion_main!(benches);
