//! Property tests: scenario specs survive a spec → JSON → spec round
//! trip exactly, and compilation is deterministic.
//!
//! The round trip is the contract that makes specs *data*: anything the
//! typed layer can express serializes to canonical JSON that parses back
//! to the identical value (floats included — the JSON writer emits
//! shortest round-trip representations).

use alc_scenario::compile::compile_value;
use alc_scenario::profile::Profile;
use alc_scenario::spec::{ControllerSpec, ScenarioSpec, StatColumn, VariantSpec, WorkloadSpec};
use alc_tpsim::config::CcKind;
use proptest::prelude::*;
use proptest::{boxed, collection, Union};
use serde::{Serialize as _, Value};

fn arb_name() -> impl Strategy<Value = String> {
    collection::vec(0u32..26, 1..8).prop_map(|v| {
        v.into_iter()
            .map(|i| char::from(b'a' + i as u8))
            .collect::<String>()
    })
}

fn arb_time() -> std::ops::Range<f64> {
    0.0..2_000_000.0
}

fn arb_level() -> std::ops::Range<f64> {
    0.0..64.0
}

fn sorted_by_time<T>(mut v: Vec<(f64, T)>) -> Vec<(f64, T)> {
    v.sort_by(|a, b| a.0.total_cmp(&b.0));
    v
}

fn arb_profile_leaf() -> Union<Profile> {
    prop_oneof![
        arb_level().prop_map(Profile::Constant),
        (arb_time(), arb_level(), arb_level()).prop_map(|(at, before, after)| Profile::Step {
            at,
            before,
            after
        }),
        (arb_level(), arb_level(), arb_time(), 1.0..500_000.0).prop_map(
            |(from, to, t_start, d)| Profile::Ramp {
                from,
                to,
                t_start,
                t_end: t_start + d,
            }
        ),
        (arb_level(), 0.0..16.0, 1.0..1_000_000.0).prop_map(|(mean, amplitude, period)| {
            Profile::Sinusoid {
                mean,
                amplitude,
                period,
            }
        }),
        (arb_level(), arb_level(), arb_time(), 1.0..500_000.0).prop_map(
            |(base, peak, at, duration)| Profile::Burst {
                base,
                peak,
                at,
                duration,
            }
        ),
        collection::vec((arb_time(), arb_level()), 1..6)
            .prop_map(|pts| Profile::Piecewise(sorted_by_time(pts))),
        arb_name().prop_map(|n| Profile::Trace {
            path: format!("traces/{n}.jsonl"),
        }),
    ]
}

fn arb_profile(depth: u32) -> Union<Profile> {
    if depth == 0 {
        return arb_profile_leaf();
    }
    Union::new(vec![
        (3, boxed(arb_profile_leaf())),
        (
            1,
            boxed(
                collection::vec((arb_time(), arb_profile(depth - 1)), 1..4)
                    .prop_map(|ps| Profile::Phases(sorted_by_time(ps))),
            ),
        ),
    ])
}

fn arb_controller() -> Union<ControllerSpec> {
    use alc_core::controller::{IsParams, IyerRuleParams, PaParams};
    prop_oneof![
        Just(ControllerSpec::None),
        Just(ControllerSpec::Unlimited),
        (1u32..900).prop_map(|bound| ControllerSpec::Fixed { bound }),
        (arb_time(), 2u32..900).prop_map(|(at_ms, n_max)| {
            ControllerSpec::FixedAnalyticOptimum { at_ms, n_max }
        }),
        (1u32..64, 64u32..900, 0.1..8.0, 0.1..64.0).prop_map(|(lo, hi, beta, max_step)| {
            ControllerSpec::Is(IsParams {
                initial_bound: lo,
                min_bound: 1,
                max_bound: hi,
                beta,
                max_step,
                ..IsParams::default()
            })
        }),
        (1u32..64, 64u32..900, 0.5..0.999, 0.0..16.0).prop_map(
            |(lo, hi, alpha, dither_amplitude)| {
                ControllerSpec::Pa(PaParams {
                    initial_bound: lo,
                    max_bound: hi,
                    alpha,
                    dither_amplitude,
                    ..PaParams::default()
                })
            }
        ),
        (1u32..64, 64u32..900, 0.1..4.0).prop_map(|(lo, hi, target)| {
            ControllerSpec::Iyer(IyerRuleParams {
                initial_bound: lo,
                max_bound: hi,
                target,
                ..IyerRuleParams::default()
            })
        }),
        (1u32..32, 16u32..900).prop_map(|(k, max_bound)| ControllerSpec::Tay {
            k,
            min_bound: 1,
            max_bound,
        }),
    ]
}

fn arb_cc() -> impl Strategy<Value = CcKind> {
    (0usize..CcKind::ALL.len()).prop_map(|i| CcKind::ALL[i])
}

fn arb_columns() -> impl Strategy<Value = Vec<StatColumn>> {
    collection::vec(0usize..StatColumn::ALL.len(), 1..6).prop_map(|idx| {
        let mut cols: Vec<StatColumn> = idx.into_iter().map(|i| StatColumn::ALL[i]).collect();
        cols.dedup();
        cols
    })
}

/// System/control override pairs drawn from a menu of valid settings.
fn arb_system_overrides() -> impl Strategy<Value = Vec<(String, Value)>> {
    (2u64..64, 100u64..4000, 1u64..17).prop_map(|(cpus, db, think_scale)| {
        vec![
            ("cpus".to_string(), Value::U64(cpus)),
            ("db_size".to_string(), Value::U64(db)),
            (
                "think".to_string(),
                Value::Map(vec![(
                    "Exponential".to_string(),
                    Value::Map(vec![("mean".to_string(), Value::Num(think_scale as f64 * 50.0))]),
                )]),
            ),
        ]
    })
}

fn arb_variants() -> impl Strategy<Value = Vec<VariantSpec>> {
    collection::vec((arb_name(), any::<bool>()), 0..4).prop_map(|raw| {
        let mut out: Vec<VariantSpec> = Vec::new();
        for (i, (name, displacement)) in raw.into_iter().enumerate() {
            // Deduplicate names (the spec rejects duplicates).
            let name = format!("{name}{i}");
            out.push(VariantSpec {
                name,
                set: vec![(
                    "control.displacement".to_string(),
                    Value::Bool(displacement),
                )],
                quick: vec![("horizon_ms".to_string(), Value::Num(5_000.0))],
            });
        }
        out
    })
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            arb_name(),
            any::<u64>(),
            1u32..5,
            1_000.0..3_000_000.0f64,
            arb_cc(),
            arb_system_overrides(),
        ),
        (
            arb_profile(2),
            arb_profile(1),
            arb_controller(),
            any::<bool>(),
            any::<bool>(),
            arb_columns(),
        ),
        arb_variants(),
    )
        .prop_map(
            |(
                (name, seed, replications, horizon_ms, cc, system),
                (k, factor, controller, record_optimum, trajectories, columns),
                variants,
            )| {
                ScenarioSpec {
                    name,
                    description: "generated spec".to_string(),
                    seed,
                    replications,
                    horizon_ms,
                    cc,
                    system,
                    control: vec![(
                        "sample_interval_ms".to_string(),
                        Value::Num(500.0),
                    )],
                    workload: WorkloadSpec {
                        k,
                        arrival_rate_factor: factor,
                        ..WorkloadSpec::default()
                    },
                    controller,
                    record_optimum,
                    trajectories,
                    label_header: "variant".to_string(),
                    columns,
                    variants,
                    quick: vec![("horizon_ms".to_string(), Value::Num(2_000.0))],
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Spec → JSON string → spec is the identity.
    #[test]
    fn spec_round_trips_through_json(spec in arb_spec()) {
        let json = serde_json::to_string_pretty(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{json}"));
        prop_assert_eq!(back, spec, "round trip changed the spec:\n{}", json);
    }

    /// Profile → JSON string → profile is the identity (deeper nesting
    /// than the spec-level test exercises).
    #[test]
    fn profile_round_trips_through_json(p in arb_profile(3)) {
        let json = serde_json::to_string(&p).expect("serialize");
        let back: Profile = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{json}"));
        prop_assert_eq!(back, p, "round trip changed the profile:\n{}", json);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiling the same spec twice yields the identical plan
    /// (trace-free specs: generated traces have no backing files).
    #[test]
    fn compilation_is_deterministic(spec in arb_spec()) {
        let tree = spec.to_value();
        let dir = std::path::PathBuf::from(".");
        let a = compile_value(&tree, &dir, false);
        let b = compile_value(&tree, &dir, false);
        prop_assert_eq!(&a, &b);
        if let Ok(plan) = a {
            let quick_a = compile_value(&tree, &dir, true);
            let quick_b = compile_value(&tree, &dir, true);
            prop_assert_eq!(quick_a, quick_b);
            let groups = if spec.variants.is_empty() { 1 } else { spec.variants.len() };
            prop_assert_eq!(plan.variants.len(), groups);
        }
    }
}
