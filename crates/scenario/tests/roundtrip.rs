//! Property tests: scenario specs survive a spec → JSON → spec round
//! trip exactly, and compilation is deterministic.
//!
//! The round trip is the contract that makes specs *data*: anything the
//! typed layer can express serializes to canonical JSON that parses back
//! to the identical value (floats included — the JSON writer emits
//! shortest round-trip representations).

use alc_scenario::compile::compile_value;
use alc_scenario::profile::Profile;
use alc_scenario::spec::{
    AdaptiveCcSpec, ClientColumn, ColumnSpec, ControllerSpec, DerivedColumn, FaultRecovery,
    FaultSpec, MetaPolicySpec, PivotSpec, ScenarioSpec, StatColumn, SweepAxis, SweepSpec,
    VariantSpec, WorkloadSpec,
};
use alc_tpsim::config::CcKind;
use alc_tpsim::{ClientConfig, LatencyFeedback, RetryPolicy};
use proptest::prelude::*;
use proptest::{boxed, collection, Union};
use serde::{Serialize as _, Value};

fn arb_name() -> impl Strategy<Value = String> {
    collection::vec(0u32..26, 1..8).prop_map(|v| {
        v.into_iter()
            .map(|i| char::from(b'a' + i as u8))
            .collect::<String>()
    })
}

fn arb_time() -> std::ops::Range<f64> {
    0.0..2_000_000.0
}

fn arb_level() -> std::ops::Range<f64> {
    0.0..64.0
}

fn sorted_by_time<T>(mut v: Vec<(f64, T)>) -> Vec<(f64, T)> {
    v.sort_by(|a, b| a.0.total_cmp(&b.0));
    v
}

fn arb_profile_leaf() -> Union<Profile> {
    prop_oneof![
        arb_level().prop_map(Profile::Constant),
        (arb_time(), arb_level(), arb_level()).prop_map(|(at, before, after)| Profile::Step {
            at,
            before,
            after
        }),
        (arb_level(), arb_level(), arb_time(), 1.0..500_000.0).prop_map(
            |(from, to, t_start, d)| Profile::Ramp {
                from,
                to,
                t_start,
                t_end: t_start + d,
            }
        ),
        (arb_level(), 0.0..16.0, 1.0..1_000_000.0).prop_map(|(mean, amplitude, period)| {
            Profile::Sinusoid {
                mean,
                amplitude,
                period,
            }
        }),
        (arb_level(), arb_level(), arb_time(), 1.0..500_000.0).prop_map(
            |(base, peak, at, duration)| Profile::Burst {
                base,
                peak,
                at,
                duration,
            }
        ),
        collection::vec((arb_time(), arb_level()), 1..6)
            .prop_map(|pts| Profile::Piecewise(sorted_by_time(pts))),
        arb_name().prop_map(|n| Profile::Trace {
            path: format!("traces/{n}.jsonl"),
        }),
    ]
}

fn arb_profile(depth: u32) -> Union<Profile> {
    if depth == 0 {
        return arb_profile_leaf();
    }
    Union::new(vec![
        (3, boxed(arb_profile_leaf())),
        (
            1,
            boxed(
                collection::vec((arb_time(), arb_profile(depth - 1)), 1..4)
                    .prop_map(|ps| Profile::Phases(sorted_by_time(ps))),
            ),
        ),
    ])
}

/// Client retry policies across all three families, drawn inside their
/// legal parameter ranges.
fn arb_retry() -> impl Strategy<Value = RetryPolicy> {
    prop_oneof![
        (10.0..1_000.0f64, 1.0..4.0f64, 1_000.0..60_000.0f64, 0.0..1.0f64).prop_map(
            |(base_ms, factor, max_ms, jitter)| RetryPolicy::Backoff {
                base_ms,
                factor,
                max_ms,
                jitter,
            }
        ),
        (0.0..2.0f64, 1.0..64.0f64, 10.0..2_000.0f64).prop_map(
            |(per_commit, burst, delay_ms)| RetryPolicy::Budget {
                per_commit,
                burst,
                delay_ms,
            }
        ),
        (10.0..5_000.0f64).prop_map(|delay_ms| RetryPolicy::Hedged { delay_ms }),
    ]
}

/// Client pool sections: population, impatience timeout, retry policy,
/// shedding flag, and latency→demand feedback.
fn arb_clients() -> impl Strategy<Value = ClientConfig> {
    (
        (1u32..64, 500.0..60_000.0f64, 0u32..8),
        (arb_retry(), any::<bool>(), 0.0..4.0f64, 0.05..1.0f64),
    )
        .prop_map(
            |((population, timeout_mean, max_retries), (retry, shed_retries, gain, weight))| {
                ClientConfig {
                    population,
                    timeout: alc_des::dist::Dist::exponential(timeout_mean),
                    max_retries,
                    retry,
                    shed_retries,
                    feedback: LatencyFeedback {
                        gain,
                        reference_ms: 1_000.0,
                        weight,
                    },
                }
            },
        )
}

fn arb_controller() -> Union<ControllerSpec> {
    use alc_core::controller::{IsParams, IyerRuleParams, PaParams};
    prop_oneof![
        Just(ControllerSpec::None),
        Just(ControllerSpec::Unlimited),
        (1u32..900).prop_map(|bound| ControllerSpec::Fixed { bound }),
        (arb_time(), 2u32..900).prop_map(|(at_ms, n_max)| {
            ControllerSpec::FixedAnalyticOptimum { at_ms, n_max }
        }),
        (1u32..64, 64u32..900, 0.1..8.0, 0.1..64.0).prop_map(|(lo, hi, beta, max_step)| {
            ControllerSpec::Is(IsParams {
                initial_bound: lo,
                min_bound: 1,
                max_bound: hi,
                beta,
                max_step,
                ..IsParams::default()
            })
        }),
        (1u32..64, 64u32..900, 0.5..0.999, 0.0..16.0).prop_map(
            |(lo, hi, alpha, dither_amplitude)| {
                ControllerSpec::Pa(PaParams {
                    initial_bound: lo,
                    max_bound: hi,
                    alpha,
                    dither_amplitude,
                    ..PaParams::default()
                })
            }
        ),
        (1u32..64, 64u32..900, 0.1..4.0).prop_map(|(lo, hi, target)| {
            ControllerSpec::Iyer(IyerRuleParams {
                initial_bound: lo,
                max_bound: hi,
                target,
                ..IyerRuleParams::default()
            })
        }),
        (1u32..32, 16u32..900).prop_map(|(k, max_bound)| ControllerSpec::Tay {
            k,
            min_bound: 1,
            max_bound,
        }),
        (1u32..64, 64u32..900, 0.0..2.0f64, 0.1..0.9f64).prop_map(|(lo, hi, budget, decrease)| {
            ControllerSpec::RetryBudget(alc_core::controller::RetryBudgetParams {
                initial_bound: lo,
                min_bound: 1,
                max_bound: hi,
                budget,
                decrease,
                ..alc_core::controller::RetryBudgetParams::default()
            })
        }),
        (1u32..64, 64u32..900, 0.1..8.0).prop_map(|(lo, hi, beta)| {
            ControllerSpec::SelfTuningIs {
                is: IsParams {
                    initial_bound: lo,
                    min_bound: 1,
                    max_bound: hi,
                    beta,
                    ..IsParams::default()
                },
                outer: alc_core::controller::OuterParams::default(),
            }
        }),
        (1u32..64, 64u32..900, 0.65..0.98).prop_map(|(lo, hi, alpha)| {
            ControllerSpec::SelfTuningPa {
                pa: PaParams {
                    initial_bound: lo,
                    max_bound: hi,
                    alpha,
                    ..PaParams::default()
                },
                outer: alc_core::controller::PaOuterParams::default(),
            }
        }),
        (1u32..64, 64u32..900).prop_map(|(lo, hi)| {
            ControllerSpec::Hybrid(alc_core::controller::HybridParams {
                is: IsParams {
                    initial_bound: lo,
                    min_bound: 1,
                    max_bound: hi,
                    ..IsParams::default()
                },
                pa: PaParams {
                    initial_bound: lo,
                    min_bound: 1,
                    max_bound: hi,
                    ..PaParams::default()
                },
                ..alc_core::controller::HybridParams::default()
            })
        }),
    ]
}

/// Strictly ascending CC switch times after t = 0.
fn arb_cc_phases() -> impl Strategy<Value = Vec<(f64, CcKind)>> {
    collection::vec((1.0..1_000_000.0f64, arb_cc()), 0..3).prop_map(|mut v| {
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v.dedup_by(|a, b| a.0 == b.0);
        v
    })
}

/// Fault windows that can never exceed the generated CPU counts
/// (`cpus ≥ 2` in `arb_system_overrides`, at most two single-CPU kills).
/// Mixes fixed `duration` windows with sampled `repair` distributions.
fn arb_faults() -> impl Strategy<Value = Vec<FaultSpec>> {
    collection::vec(
        (0.0..800_000.0f64, 1_000.0..400_000.0f64, any::<bool>()),
        0..3,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(at_ms, duration_ms, sampled)| FaultSpec {
                at_ms,
                recovery: if sampled {
                    FaultRecovery::Repair(alc_des::dist::Dist::exponential(duration_ms))
                } else {
                    FaultRecovery::Fixed(duration_ms)
                },
                cpus_down: 1,
            })
            .collect()
    })
}

fn arb_cc() -> impl Strategy<Value = CcKind> {
    (0usize..CcKind::ALL.len()).prop_map(|i| CcKind::ALL[i])
}

/// Adaptive CC sections: 2–4 distinct candidates, one of the three
/// policies, and guard parameters across their full legal ranges.
fn arb_adaptive() -> impl Strategy<Value = AdaptiveCcSpec> {
    let policy = prop_oneof![
        (0.05..8.0f64, 0.05..1.0f64).prop_map(|(threshold, ewma_weight)| {
            MetaPolicySpec::ConflictThreshold {
                threshold,
                ewma_weight,
            }
        }),
        (0.05..0.95f64, 0.05..1.0f64).prop_map(|(threshold, ewma_weight)| {
            MetaPolicySpec::RestartRate {
                threshold,
                ewma_weight,
            }
        }),
        (0.05..1.0f64).prop_map(|ewma_weight| MetaPolicySpec::ShadowScore { ewma_weight }),
    ];
    (
        2usize..CcKind::ALL.len() + 1,
        0usize..24,
        policy,
        0.0..300.0f64,
        0.0..60.0f64,
        0.0..0.9f64,
    )
        .prop_map(|(n, rot, policy, min_dwell_s, cooldown_s, hysteresis)| {
            // Distinct candidates: a rotation of the protocol list.
            let candidates: Vec<CcKind> = (0..n)
                .map(|i| CcKind::ALL[(i + rot) % CcKind::ALL.len()])
                .collect();
            AdaptiveCcSpec {
                candidates,
                policy,
                min_dwell_s,
                cooldown_s,
                hysteresis,
            }
        })
}

fn arb_columns() -> impl Strategy<Value = Vec<ColumnSpec>> {
    let stat = (0usize..StatColumn::ALL.len()).prop_map(|i| ColumnSpec::Stat(StatColumn::ALL[i]));
    let derived = prop_oneof![
        Just(ColumnSpec::Derived(DerivedColumn::PostJumpTrackingErr)),
        Just(ColumnSpec::Derived(DerivedColumn::ConflictRatioAtPeak)),
        (0.05..0.9f64, 0.05..0.5f64).prop_map(|(after_frac, band)| {
            ColumnSpec::Derived(DerivedColumn::SettlingTime {
                header: "settle_s".to_string(),
                after_frac,
                band,
            })
        }),
        Just(ColumnSpec::Derived(DerivedColumn::SwitchCount)),
        (arb_cc(), any::<bool>()).prop_map(|(cc, named)| {
            ColumnSpec::Derived(DerivedColumn::TimeInProtocol {
                cc,
                header: named.then(|| "residence_s".to_string()),
            })
        }),
        (0.05..0.5f64).prop_map(|band| {
            ColumnSpec::Derived(DerivedColumn::PostSwitchSettling {
                header: "post_switch_settling_time_s".to_string(),
                band,
            })
        }),
        (1_000.0..500_000.0f64, 0.05..0.95f64).prop_map(|(after_ms, band)| {
            ColumnSpec::Derived(DerivedColumn::TimeToRecover {
                header: "time_to_recover_s".to_string(),
                after_ms,
                band,
            })
        }),
    ];
    let client =
        (0usize..ClientColumn::ALL.len()).prop_map(|i| ColumnSpec::Client(ClientColumn::ALL[i]));
    let literal = arb_name().prop_map(|h| ColumnSpec::Literal {
        header: h,
        value: "-".to_string(),
    });
    collection::vec(
        prop_oneof![4 => stat, 1 => derived, 1 => client, 1 => literal],
        1..6,
    )
}

/// System/control override pairs drawn from a menu of valid settings.
fn arb_system_overrides() -> impl Strategy<Value = Vec<(String, Value)>> {
    (2u64..64, 100u64..4000, 1u64..17).prop_map(|(cpus, db, think_scale)| {
        vec![
            ("cpus".to_string(), Value::U64(cpus)),
            ("db_size".to_string(), Value::U64(db)),
            (
                "think".to_string(),
                Value::Map(vec![(
                    "Exponential".to_string(),
                    Value::Map(vec![("mean".to_string(), Value::Num(think_scale as f64 * 50.0))]),
                )]),
            ),
        ]
    })
}

fn arb_variants() -> impl Strategy<Value = Vec<VariantSpec>> {
    collection::vec((arb_name(), any::<bool>()), 0..4).prop_map(|raw| {
        let mut out: Vec<VariantSpec> = Vec::new();
        for (i, (name, displacement)) in raw.into_iter().enumerate() {
            // Deduplicate names (the spec rejects duplicates).
            let name = format!("{name}{i}");
            out.push(VariantSpec {
                name,
                set: vec![(
                    "control.displacement".to_string(),
                    Value::Bool(displacement),
                )],
                quick: vec![("horizon_ms".to_string(), Value::Num(5_000.0))],
            });
        }
        out
    })
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            arb_name(),
            any::<u64>(),
            1u32..5,
            1_000.0..3_000_000.0f64,
            arb_cc(),
            arb_system_overrides(),
        ),
        (
            arb_profile(2),
            arb_profile(1),
            arb_controller(),
            any::<bool>(),
            any::<bool>(),
            arb_columns(),
        ),
        (
            arb_variants(),
            arb_cc_phases(),
            arb_faults(),
            prop_oneof![2 => Just(None), 1 => arb_adaptive().prop_map(Some)],
            prop_oneof![2 => Just(None), 1 => arb_clients().prop_map(Some)],
        ),
    )
        .prop_map(
            |(
                (name, seed, replications, horizon_ms, cc, system),
                (k, factor, controller, record_optimum, trajectories, columns),
                (variants, cc_phases, faults, adaptive, clients),
            )| {
                // Tracking-error columns require the optimum trajectory.
                let record_optimum =
                    record_optimum || columns.iter().any(ColumnSpec::needs_optimum);
                // Client columns require a clients section.
                let clients = if columns.iter().any(|c| matches!(c, ColumnSpec::Client(_))) {
                    clients.or_else(|| {
                        Some(ClientConfig::new(8, alc_des::dist::Dist::exponential(5_000.0)))
                    })
                } else {
                    clients
                };
                // Adaptive selection replaces scheduled phases (the two
                // are mutually exclusive) and pins `cc` to candidate 0.
                let (cc, cc_phases) = match &adaptive {
                    Some(ad) => (ad.candidates[0], Vec::new()),
                    None => (cc, cc_phases),
                };
                ScenarioSpec {
                    name,
                    description: "generated spec".to_string(),
                    seed,
                    replications,
                    horizon_ms,
                    cc,
                    cc_phases,
                    cc_adaptive: adaptive,
                    faults,
                    clients,
                    system,
                    control: vec![(
                        "sample_interval_ms".to_string(),
                        Value::Num(500.0),
                    )],
                    workload: WorkloadSpec {
                        k,
                        arrival_rate_factor: factor,
                        ..WorkloadSpec::default()
                    },
                    controller,
                    record_optimum,
                    trajectories,
                    label_header: "variant".to_string(),
                    columns,
                    variants,
                    sweep: None,
                    inputs: Vec::new(),
                    label_from: None,
                    quick: vec![("horizon_ms".to_string(), Value::Num(2_000.0))],
                }
            },
        )
}

/// A sweep over distinct paths with distinct values per axis; pivoted
/// sweeps take the last axis as columns.
fn arb_sweep_spec() -> impl Strategy<Value = ScenarioSpec> {
    const PATHS: [(&str, &str); 3] = [
        ("mpl_bound", "control.initial_bound"),
        ("terminals", "system.terminals"),
        ("db", "system.db_size"),
    ];
    (
        arb_name(),
        any::<u64>(),
        1usize..4,
        collection::vec(collection::vec(1u64..500, 1..4), 3..4),
        any::<bool>(),
    )
        .prop_map(|(name, seed, n_axes, value_sets, want_pivot)| {
            let axes: Vec<SweepAxis> = (0..n_axes)
                .map(|i| {
                    // Distinct values per axis (duplicate labels collapse
                    // cells and are rejected at parse).
                    let mut values = value_sets[i].clone();
                    values.sort_unstable();
                    values.dedup();
                    SweepAxis {
                        header: PATHS[i].0.to_string(),
                        path: PATHS[i].1.to_string(),
                        values: values.into_iter().map(Value::U64).collect(),
                        labels: None,
                    }
                })
                .collect();
            let pivot = (want_pivot && n_axes >= 2).then(|| PivotSpec {
                stat: StatColumn::ThroughputPerS,
                prefix: "T_".to_string(),
            });
            ScenarioSpec {
                name,
                description: "generated sweep".to_string(),
                seed,
                replications: 1,
                horizon_ms: 5_000.0,
                cc: CcKind::Certification,
                cc_phases: Vec::new(),
                cc_adaptive: None,
                faults: Vec::new(),
                clients: None,
                system: Vec::new(),
                control: vec![("sample_interval_ms".to_string(), Value::Num(500.0))],
                workload: WorkloadSpec::default(),
                controller: ControllerSpec::None,
                record_optimum: false,
                trajectories: false,
                label_header: "variant".to_string(),
                columns: vec![ColumnSpec::Stat(StatColumn::ThroughputPerS)],
                variants: Vec::new(),
                sweep: Some(SweepSpec { axes, pivot }),
                inputs: Vec::new(),
                label_from: None,
                quick: Vec::new(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Spec → JSON string → spec is the identity.
    #[test]
    fn spec_round_trips_through_json(spec in arb_spec()) {
        let json = serde_json::to_string_pretty(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{json}"));
        prop_assert_eq!(back, spec, "round trip changed the spec:\n{}", json);
    }

    /// Profile → JSON string → profile is the identity (deeper nesting
    /// than the spec-level test exercises).
    #[test]
    fn profile_round_trips_through_json(p in arb_profile(3)) {
        let json = serde_json::to_string(&p).expect("serialize");
        let back: Profile = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{json}"));
        prop_assert_eq!(back, p, "round trip changed the profile:\n{}", json);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiling the same spec twice yields the identical plan
    /// (trace-free specs: generated traces have no backing files).
    /// Generated specs include CC-switch phases, fault windows and
    /// derived columns.
    #[test]
    fn compilation_is_deterministic(spec in arb_spec()) {
        let tree = spec.to_value();
        let dir = std::path::PathBuf::from(".");
        let a = compile_value(&tree, &dir, false);
        let b = compile_value(&tree, &dir, false);
        prop_assert_eq!(&a, &b);
        if let Ok(plan) = a {
            let quick_a = compile_value(&tree, &dir, true);
            let quick_b = compile_value(&tree, &dir, true);
            prop_assert_eq!(quick_a, quick_b);
            let groups = if spec.variants.is_empty() { 1 } else { spec.variants.len() };
            prop_assert_eq!(plan.variants.len(), groups);
            // The lowered switch and fault schedules survive compilation
            // on every variant.
            for v in &plan.variants {
                prop_assert_eq!(v.cc_switches.len(), spec.cc_phases.len());
                match &v.fault_schedules {
                    // Sampled repair times: one timeline per replication,
                    // each ascending with both edges of every window.
                    Some(per_rep) => {
                        prop_assert_eq!(per_rep.len(), v.seeds.len());
                        for timeline in per_rep {
                            prop_assert_eq!(timeline.len(), 2 * spec.faults.len());
                            prop_assert!(timeline.windows(2).all(|w| w[0].0 <= w[1].0));
                        }
                    }
                    None => {
                        prop_assert_eq!(v.faults.len(), 2 * spec.faults.len());
                        prop_assert!(v.faults.windows(2).all(|w| w[0].0 <= w[1].0));
                    }
                }
            }
        }
    }

    /// Sweep specs round-trip through JSON exactly.
    #[test]
    fn sweep_spec_round_trips_through_json(spec in arb_sweep_spec()) {
        let json = serde_json::to_string_pretty(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{json}"));
        prop_assert_eq!(back, spec, "round trip changed the sweep spec:\n{}", json);
    }

    /// Sweep expansion is deterministic, covers the exact cross-product,
    /// and never produces two cells with the same label.
    #[test]
    fn sweep_expansion_covers_the_exact_cross_product(spec in arb_sweep_spec()) {
        let tree = spec.to_value();
        let dir = std::path::PathBuf::from(".");
        let a = compile_value(&tree, &dir, false).expect("sweep must compile");
        let b = compile_value(&tree, &dir, false).expect("sweep must compile");
        prop_assert_eq!(&a, &b, "sweep expansion must be deterministic");

        let sweep = spec.sweep.as_ref().expect("generated sweep");
        let expected: usize = sweep.axes.iter().map(|a| a.values.len()).product();
        prop_assert_eq!(a.variants.len(), expected, "wrong cell count");

        let mut seen = std::collections::HashSet::new();
        for v in &a.variants {
            prop_assert!(seen.insert(v.label.clone()), "duplicate cell `{}`", v.label);
        }

        // Every cell carries its own axis values: re-derive the expected
        // coordinate labels in row-major order and compare.
        let plan_sweep = a.sweep.as_ref().expect("plan keeps the sweep shape");
        for (idx, v) in a.variants.iter().enumerate() {
            let coords = plan_sweep.coords(idx);
            let expected_label: Vec<String> = coords
                .iter()
                .enumerate()
                .map(|(ax, &c)| sweep.axes[ax].label(c))
                .collect();
            prop_assert_eq!(v.label.clone(), expected_label.join("_"));
        }
    }
}
