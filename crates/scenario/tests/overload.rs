//! The metastability regression pin — the acceptance test of the
//! closed-loop client layer.
//!
//! `scenarios/metastable-fault.json` stages a transient CPU outage
//! (2 of 3 CPUs down for 8 s) under an impatient retrying population.
//! Without retry shedding the storm outlives the repair: every timeout
//! spawns a retry, retries keep the MPL pinned above the certification
//! thrash point, responses stay above the client timeout, so every
//! attempt times out again — a self-sustaining metastable state. The
//! fault is *gone* and goodput stays on the floor. The `retry-shed`
//! variant gives the gate a retry budget: it sheds retry attempts before
//! first attempts, drains the storm, and the system falls back to the
//! healthy equilibrium.
//!
//! These tests pin both halves of that demonstration at quick scale and
//! the determinism of the whole run (rerun, serial vs parallel, client
//! counters included) so the pathology can never silently rot into "the
//! storm drains by itself" or "shedding stopped helping".

use std::path::PathBuf;

use alc_scenario::compile::RunPlan;
use alc_scenario::runner::{build_report, run_plan, RunRecord};
use alc_scenario::LoadedSpec;

fn quick_plan() -> RunPlan {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/metastable-fault.json");
    let loaded = LoadedSpec::read(&path).expect("read spec");
    loaded.compile(true).expect("compile quick")
}

fn run_serial(plan: &RunPlan) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for v in &plan.variants {
        let sub = RunPlan {
            variants: vec![v.clone()],
            ..plan.clone()
        };
        records.extend(run_plan(&sub));
    }
    records
}

/// Mean of a trajectory over a time window (ms).
fn window_mean(points: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &(t, x) in points {
        if t >= from && t <= to {
            sum += x;
            n += 1;
        }
    }
    assert!(n > 0, "no samples in [{from}, {to}]");
    sum / n as f64
}

fn find<'a>(records: &'a [RunRecord], label: &str) -> &'a RunRecord {
    records
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("missing variant `{label}`"))
}

#[test]
fn transient_fault_is_metastable_without_shedding_and_recovers_with_it() {
    let plan = quick_plan();
    // The spec's shape is part of the pin: a fault that *ends* long
    // before the horizon, so degradation past the repair is hysteresis,
    // not the fault itself.
    let fault_end = 18_000.0;
    let horizon = plan.variants[0].horizon_ms;
    assert!(
        horizon >= fault_end + 20_000.0,
        "quick horizon must leave a long post-repair window"
    );
    let records = run_plan(&plan);
    let no_shed = find(&records, "no-shed");
    let shed = find(&records, "retry-shed");

    // --- The metastable half: the fault is repaired at t=18s, yet the
    // no-shed system never comes back. Post-repair throughput (with a
    // 2s margin for the repair itself) stays under the recovery band
    // of the healthy baseline, and the retry storm is what holds it
    // down: attempts run far ahead of requests.
    let traj = no_shed.trajectories.as_ref().expect("trajectories retained");
    let baseline = window_mean(traj.throughput.points(), 0.0, 10_000.0);
    let post_repair = window_mean(traj.throughput.points(), fault_end + 2_000.0, horizon);
    assert!(
        baseline > 5.0,
        "healthy baseline too weak to call this a collapse: {baseline:.2}/s"
    );
    assert!(
        post_repair < 0.35 * baseline,
        "no-shed recovered after the repair ({post_repair:.2}/s vs baseline \
         {baseline:.2}/s) — the metastable lock-in is gone, retune the spec"
    );
    let c = no_shed.clients.expect("client counters");
    let amplification = c.attempts as f64 / c.first_attempts.max(1) as f64;
    assert!(
        amplification > 5.0,
        "no-shed retry amplification {amplification:.1} too low for a storm"
    );
    assert!(c.timeouts > 500, "storm produced only {} timeouts", c.timeouts);

    // --- The recovery half: shedding retries at the gate drains the
    // same storm. Goodput at least doubles and the post-repair window
    // actually commits.
    let st = shed.clients.expect("client counters");
    assert!(st.shed > 0, "the gate never shed a retry");
    assert!(
        st.committed as f64 >= 2.0 * c.committed as f64,
        "shedding no longer rescues goodput: {} vs {} committed",
        st.committed,
        c.committed
    );
    let straj = shed.trajectories.as_ref().expect("trajectories retained");
    let shed_post = window_mean(straj.throughput.points(), fault_end + 2_000.0, horizon);
    let shed_base = window_mean(straj.throughput.points(), 0.0, 10_000.0);
    assert!(
        shed_post >= 0.35 * shed_base,
        "retry-shed did not re-enter the recovery band: {shed_post:.2}/s \
         vs baseline {shed_base:.2}/s"
    );

    // --- The report renders the same verdict through the derived
    // column: "never" for the locked-in run, a prompt recovery for the
    // shedding run.
    let report = build_report(&plan, &records);
    let ttr_col = report
        .headers
        .iter()
        .position(|h| h == "time_to_recover_s")
        .expect("time_to_recover_s column");
    let row = |label: &str| {
        report
            .rows
            .iter()
            .find(|r| r[0] == label)
            .unwrap_or_else(|| panic!("missing report row `{label}`"))
    };
    assert_eq!(
        row("no-shed")[ttr_col],
        "never",
        "no-shed must read `never` in the report"
    );
    let shed_ttr: f64 = row("retry-shed")[ttr_col]
        .parse()
        .expect("retry-shed recovery time is a number");
    assert!(
        shed_ttr <= 5.0,
        "retry-shed took {shed_ttr}s to re-enter the band after the repair"
    );
}

/// The whole demonstration is deterministic: rerun and serial execution
/// reproduce every statistic and every client counter exactly, and the
/// rendered report is byte-identical.
#[test]
fn metastable_fault_run_is_deterministic_across_reruns_and_thread_counts() {
    let plan = quick_plan();
    let a = run_plan(&plan);
    let b = run_plan(&plan);
    let serial = run_serial(&plan);
    for (other, what) in [(&b, "rerun"), (&serial, "serial vs parallel")] {
        assert_eq!(a.len(), other.len(), "{what}: record count");
        for (x, y) in a.iter().zip(other.iter()) {
            assert_eq!(x.label, y.label, "{what}: order");
            assert_eq!(x.seed, y.seed, "{what}: seed");
            assert_eq!(x.stats, y.stats, "{what}: stats of `{}`", x.label);
            assert_eq!(x.clients, y.clients, "{what}: clients of `{}`", x.label);
        }
    }
    let csv = |records: &[RunRecord], tag: &str| {
        let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let path = build_report(&plan, records)
            .write_csv(&dir)
            .expect("write csv");
        std::fs::read(path).expect("read csv")
    };
    assert_eq!(
        csv(&a, "overload-a"),
        csv(&b, "overload-b"),
        "rendered report not byte-identical"
    );
}
