//! Property tests for the closed-loop client population: across random
//! pool configurations — timeout distributions, retry policies (backoff,
//! token budget, hedged), abandonment limits, retry shedding, latency
//! feedback, and admission controllers — the client-side conservation
//! identities hold at end of run, and the whole run is deterministic
//! across reruns and across thread counts (rayon fan-out vs one cell
//! per call).
//!
//! The identities are the client analogue of the engine's transaction
//! census: no request is lost or double-counted between issue, commit,
//! and abandonment, and every attempt is either a first attempt or a
//! retry/hedge. They must survive the messy paths — timeouts that
//! cancel queued attempts, sheds bounced at the gate, hedge duplicates,
//! budget-starved abandons — not just the happy commit loop.

use alc_scenario::compile::RunPlan;
use alc_scenario::runner::{run_plan, RunRecord};
use alc_scenario::spec::{ColumnSpec, ControllerSpec, ScenarioSpec, StatColumn, WorkloadSpec};
use alc_tpsim::config::CcKind;
use alc_tpsim::{ClientConfig, LatencyFeedback, RetryPolicy};
use proptest::prelude::*;
use serde::{Serialize as _, Value};

fn arb_retry() -> impl Strategy<Value = RetryPolicy> {
    prop_oneof![
        (5.0..400.0f64, 1.0..3.0f64, 100.0..2_000.0f64, 0.0..1.0f64).prop_map(
            |(base_ms, factor, max_ms, jitter)| RetryPolicy::Backoff {
                base_ms,
                factor,
                max_ms,
                jitter,
            }
        ),
        (0.0..2.0f64, 1.0..16.0f64, 10.0..500.0f64).prop_map(|(per_commit, burst, delay_ms)| {
            RetryPolicy::Budget {
                per_commit,
                burst,
                delay_ms,
            }
        }),
        (10.0..800.0f64).prop_map(|delay_ms| RetryPolicy::Hedged { delay_ms }),
    ]
}

/// Pools tuned so the 5-second horizon actually exercises the edge
/// paths: timeouts short enough to fire against the service times,
/// populations small enough that debug-mode runs stay cheap.
fn arb_clients() -> impl Strategy<Value = ClientConfig> {
    (
        (2u32..24, 80.0..1_500.0f64, 0u32..6),
        (arb_retry(), any::<bool>(), 0.0..2.0f64, 0.05..1.0f64),
    )
        .prop_map(
            |((population, timeout_ms, max_retries), (retry, shed_retries, gain, weight))| {
                ClientConfig {
                    population,
                    timeout: alc_des::dist::Dist::constant(timeout_ms),
                    max_retries,
                    retry,
                    shed_retries,
                    feedback: LatencyFeedback {
                        gain,
                        reference_ms: 500.0,
                        weight,
                    },
                }
            },
        )
}

fn arb_controller() -> impl Strategy<Value = ControllerSpec> {
    use alc_core::controller::RetryBudgetParams;
    prop_oneof![
        Just(ControllerSpec::Unlimited),
        (2u32..32).prop_map(|bound| ControllerSpec::Fixed { bound }),
        (2u32..16, 16u32..64, 0.1..2.0f64).prop_map(|(lo, hi, budget)| {
            ControllerSpec::RetryBudget(RetryBudgetParams {
                initial_bound: lo,
                min_bound: 1,
                max_bound: hi,
                budget,
                ..RetryBudgetParams::default()
            })
        }),
    ]
}

/// A complete runnable spec: small contended system, a client pool, and
/// a shed-flipped variant so the plan has two cells (the serial-vs-
/// parallel comparison needs more than one).
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        any::<u64>(),
        (2u64..5, 60u64..300),
        arb_clients(),
        arb_controller(),
        50.0..400.0f64,
    )
        .prop_map(|(seed, (cpus, db_size), clients, controller, think_ms)| {
            let shed_flipped = !clients.shed_retries;
            ScenarioSpec {
                name: "conservation".to_string(),
                description: "generated client-pool spec".to_string(),
                seed,
                replications: 1,
                horizon_ms: 5_000.0,
                cc: CcKind::Certification,
                cc_phases: Vec::new(),
                cc_adaptive: None,
                faults: Vec::new(),
                clients: Some(clients),
                system: vec![
                    ("cpus".to_string(), Value::U64(cpus)),
                    ("db_size".to_string(), Value::U64(db_size)),
                    (
                        "think".to_string(),
                        Value::Map(vec![(
                            "Exponential".to_string(),
                            Value::Map(vec![("mean".to_string(), Value::Num(think_ms))]),
                        )]),
                    ),
                ],
                control: vec![("sample_interval_ms".to_string(), Value::Num(500.0))],
                workload: WorkloadSpec {
                    k: alc_scenario::profile::Profile::Constant(6.0),
                    ..WorkloadSpec::default()
                },
                controller,
                record_optimum: false,
                trajectories: false,
                label_header: "variant".to_string(),
                columns: vec![ColumnSpec::Stat(StatColumn::ThroughputPerS)],
                variants: vec![
                    alc_scenario::spec::VariantSpec {
                        name: "base".to_string(),
                        set: Vec::new(),
                        quick: Vec::new(),
                    },
                    alc_scenario::spec::VariantSpec {
                        name: "shed-flipped".to_string(),
                        set: vec![(
                            "clients.shed_retries".to_string(),
                            Value::Bool(shed_flipped),
                        )],
                        quick: Vec::new(),
                    },
                ],
                sweep: None,
                inputs: Vec::new(),
                label_from: None,
                quick: Vec::new(),
            }
        })
}

fn compile(spec: &ScenarioSpec) -> RunPlan {
    let tree = spec.to_value();
    alc_scenario::compile::compile_value(&tree, std::path::Path::new("."), false)
        .expect("generated spec compiles")
}

/// One cell per `run_plan` call: with a single job the rayon shim stays
/// on the calling thread, so this is the serial reference execution.
fn run_serial(plan: &RunPlan) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for v in &plan.variants {
        let sub = RunPlan {
            variants: vec![v.clone()],
            ..plan.clone()
        };
        records.extend(run_plan(&sub));
    }
    records
}

fn assert_conserved(rec: &RunRecord) {
    let c = rec
        .clients
        .expect("a spec with a clients section reports client stats");
    assert_eq!(
        c.issued,
        c.committed + c.abandoned + c.in_flight,
        "`{}`: issued != committed + abandoned + in_flight: {c:?}",
        rec.label
    );
    assert_eq!(
        c.attempts,
        c.first_attempts + c.retries,
        "`{}`: attempts != first_attempts + retries: {c:?}",
        rec.label
    );
    assert!(
        c.issued >= c.first_attempts,
        "`{}`: more first attempts than requests: {c:?}",
        rec.label
    );
    assert!(
        c.shed <= c.retries,
        "`{}`: shed a retry that was never counted: {c:?}",
        rec.label
    );
}

fn assert_same(a: &[RunRecord], b: &[RunRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: record count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label, "{what}: order");
        assert_eq!(x.stats, y.stats, "{what}: stats of `{}`", x.label);
        assert_eq!(x.clients, y.clients, "{what}: client stats of `{}`", x.label);
    }
}

proptest! {
    // Every case runs six full simulations (2 variants × rerun × serial);
    // a modest case count still covers all three retry-policy families
    // and both shed settings because the variant pair flips shedding
    // within each case.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn client_accounting_conserves_requests_and_attempts(spec in arb_spec()) {
        let plan = compile(&spec);
        let a = run_plan(&plan);
        for rec in &a {
            assert_conserved(rec);
        }
        let b = run_plan(&plan);
        assert_same(&a, &b, "rerun");
        let serial = run_serial(&plan);
        assert_same(&a, &serial, "parallel vs serial");
    }
}
