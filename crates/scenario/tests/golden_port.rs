//! Golden-port pins: the checked-in scenario specs that port the bespoke
//! dynamic/ablation figure generators must reproduce the **pre-port**
//! golden outputs byte-identically at quick (CI) scale.
//!
//! The golden files under `crates/bench/tests/golden/` were recorded
//! from the hand-written figure generators before the scenario subsystem
//! existed and are still pinned against those generators by
//! `crates/bench/tests/golden.rs`. Matching them from the *declarative*
//! specs proves the DSL subsumes the bespoke Rust: same seeds, same
//! configuration lowering, same engine runs, same bytes.
//!
//! * `fig13` / `fig14` / `sinus` — trajectory CSVs (the run-level pin:
//!   every sample of bound/MPL/throughput/optimum/k identical);
//! * `abl-victim` / `abl-rules` — the report stats tables (per-variant
//!   throughput, abort ratio, displacement counts… identical);
//! * `abl-dither` / `abl-alpha` / `abl-displacement` / `abl-hybrid` —
//!   ablations whose tables mix raw stats with *derived* columns
//!   (post-jump tracking error, settling time) and literal input cells;
//! * `abl-cc` — the six-protocol load–throughput grid, exercising the
//!   sweep axes and the pivoted report layout.
//!
//! With these, every bespoke ablation that runs the simulator is a
//! checked-in JSON spec; `crates/bench/src/figures/ablation.rs` keeps
//! only the experiments that never were engine runs at heart
//! (`abl-interval`, `abl-is-failure`) or have no spec-visible knob yet.

use std::path::{Path, PathBuf};

use alc_scenario::LoadedSpec;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../bench/tests/golden")
}

/// `UPDATE_GOLDEN=1` re-blesses every pinned CSV from the current run
/// instead of comparing — only for *deliberate* realization changes
/// (e.g. the ziggurat default-sampler promotion), never to paper over
/// an unexplained divergence.
fn blessing() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

fn compare_or_bless(golden_path: &Path, actual: &[u8], diverged_msg: &str) {
    if blessing() {
        std::fs::write(golden_path, actual).expect("write golden");
        return;
    }
    let golden = std::fs::read(golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
    assert!(golden == actual, "{diverged_msg}");
}

/// Runs a checked-in spec at quick scale, returning (plan, records).
fn run_quick(
    spec_name: &str,
) -> (
    alc_scenario::compile::RunPlan,
    Vec<alc_scenario::runner::RunRecord>,
) {
    let path = scenarios_dir().join(format!("{spec_name}.json"));
    let loaded = LoadedSpec::read(&path).expect("read spec");
    let plan = loaded.compile(true).expect("compile quick");
    let records = alc_scenario::runner::run_plan(&plan);
    (plan, records)
}

fn assert_trajectories_match(spec_name: &str, golden_names: &[&str], out_tag: &str) {
    let (plan, records) = run_quick(spec_name);
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(out_tag);
    let _ = std::fs::remove_dir_all(&out);
    let written =
        alc_scenario::runner::write_trajectories(&plan, &records, &out).expect("write csvs");
    assert_eq!(
        written,
        golden_names
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        "{spec_name}: unexpected trajectory file set"
    );
    for name in golden_names {
        let actual = std::fs::read(out.join(name)).expect("read actual");
        compare_or_bless(
            &golden_dir().join(name),
            &actual,
            &format!(
                "{name} diverged from the pre-port golden output — the scenario \
                 port no longer reproduces the bespoke figure generator's run"
            ),
        );
    }
}

fn assert_report_matches(spec_name: &str, golden_csv: &str, out_tag: &str) {
    let (plan, records) = run_quick(spec_name);
    let report = alc_scenario::runner::build_report(&plan, &records);
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(out_tag);
    let _ = std::fs::remove_dir_all(&out);
    let path = report.write_csv(Path::new(&out)).expect("write csv");
    let actual = std::fs::read(&path).expect("read actual");
    compare_or_bless(
        &golden_dir().join(golden_csv),
        &actual,
        &format!(
            "{golden_csv} diverged from the pre-port golden output — the scenario \
             port no longer reproduces the bespoke ablation's stats table"
        ),
    );
}

#[test]
fn fig13_port_reproduces_golden_trajectory() {
    assert_trajectories_match("fig13", &["fig13_trajectory.csv"], "port-fig13");
}

#[test]
fn fig14_port_reproduces_golden_trajectory() {
    assert_trajectories_match("fig14", &["fig14_trajectory.csv"], "port-fig14");
}

#[test]
fn sinus_port_reproduces_both_golden_trajectories() {
    assert_trajectories_match(
        "sinus",
        &["sinus_IS_trajectory.csv", "sinus_PA_trajectory.csv"],
        "port-sinus",
    );
}

#[test]
fn abl_victim_port_reproduces_golden_table() {
    assert_report_matches("abl-victim", "abl-victim.csv", "port-abl-victim");
}

#[test]
fn abl_rules_port_reproduces_golden_table() {
    assert_report_matches("abl-rules", "abl-rules.csv", "port-abl-rules");
}

#[test]
fn abl_dither_port_reproduces_golden_table() {
    assert_report_matches("abl-dither", "abl-dither.csv", "port-abl-dither");
}

#[test]
fn abl_alpha_port_reproduces_golden_table() {
    assert_report_matches("abl-alpha", "abl-alpha.csv", "port-abl-alpha");
}

#[test]
fn abl_displacement_port_reproduces_golden_table() {
    assert_report_matches(
        "abl-displacement",
        "abl-displacement.csv",
        "port-abl-displacement",
    );
}

#[test]
fn abl_hybrid_port_reproduces_golden_table() {
    assert_report_matches("abl-hybrid", "abl-hybrid.csv", "port-abl-hybrid");
}

#[test]
fn abl_cc_sweep_port_reproduces_golden_table() {
    assert_report_matches("abl-cc", "abl-cc.csv", "port-abl-cc");
}

/// The `repair` fault vocabulary is golden-pinned: sampled
/// mean-time-to-repair outages must stay byte-identical across builds
/// (the draws come from each replication's dedicated `fault_repair`
/// RNG substream, so nothing else in the engine can shift them).
#[test]
fn fault_repair_spec_reproduces_its_golden_table() {
    let (plan, records) = run_quick("fault-repair");
    let vp = &plan.variants[0];
    assert!(
        vp.fault_schedules.is_some(),
        "repair faults must lower to per-replication timelines"
    );
    // The two replications sample different outage lengths.
    let per_rep = vp.fault_schedules.as_ref().unwrap();
    assert_ne!(per_rep[0], per_rep[1], "replications shared repair draws");
    let report = alc_scenario::runner::build_report(&plan, &records);
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fault-repair");
    let _ = std::fs::remove_dir_all(&out);
    let path = report.write_csv(Path::new(&out)).expect("write csv");
    let actual = std::fs::read(&path).expect("read actual");
    compare_or_bless(
        &PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fault-repair.csv"),
        &actual,
        "fault-repair.csv diverged from its golden pin — the sampled \
         repair times are no longer reproducible",
    );
}

/// Quick-scale report of a checked-in spec vs its own-crate golden pin
/// (`crates/scenario/tests/golden/`).
fn assert_own_golden_matches(spec_name: &str) {
    let (plan, records) = run_quick(spec_name);
    let report = alc_scenario::runner::build_report(&plan, &records);
    let out = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("own-{spec_name}"));
    let _ = std::fs::remove_dir_all(&out);
    let path = report.write_csv(Path::new(&out)).expect("write csv");
    let actual = std::fs::read(&path).expect("read actual");
    compare_or_bless(
        &PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{spec_name}.csv")),
        &actual,
        &format!(
            "{spec_name}.csv diverged from its golden pin — the client-pool \
             run is no longer byte-reproducible"
        ),
    );
}

/// The overload catalog is golden-pinned: client-side counters, retry
/// amplification, the `never`/prompt recovery verdicts, and the
/// retry-budget gate's mean bound must stay byte-identical. These CSVs
/// encode the paper's metastability demonstration — any engine or
/// client-state-machine drift snaps one of them.
#[test]
fn retry_storm_spec_reproduces_its_golden_table() {
    assert_own_golden_matches("retry-storm");
}

#[test]
fn retry_shed_spec_reproduces_its_golden_table() {
    assert_own_golden_matches("retry-shed");
}

#[test]
fn metastable_fault_spec_reproduces_its_golden_table() {
    assert_own_golden_matches("metastable-fault");
}

/// Every checked-in spec must compile (full + quick) and the whole
/// catalog must run end-to-end at quick scale — the acceptance floor for
/// "a new experiment is a JSON file".
#[test]
fn all_checked_in_specs_run_end_to_end_quick() {
    let mut names: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 16,
        "expected at least 16 checked-in scenario specs, found {}",
        names.len()
    );
    for path in names {
        let loaded = LoadedSpec::read(&path).expect("read spec");
        loaded.compile(false).unwrap_or_else(|e| {
            panic!("{} does not compile at full scale: {e}", path.display())
        });
        let plan = loaded.compile(true).unwrap_or_else(|e| {
            panic!("{} does not compile at quick scale: {e}", path.display())
        });
        let records = alc_scenario::runner::run_plan(&plan);
        assert!(!records.is_empty(), "{}: no runs", path.display());
        for r in &records {
            assert!(
                r.stats.commits > 0,
                "{}: variant `{}` starved (0 commits)",
                path.display(),
                r.label
            );
        }
    }
}
