//! Invariant tests for the new experiment classes: per-phase CC
//! switching and station fault events must be deterministic across
//! reruns *and* across thread counts (the rayon pool fans run cells
//! out; a cell-per-call serial execution must produce byte-identical
//! statistics), and the checked-in specs exercising them must do real
//! work on both sides of their boundaries.
//!
//! The transaction-conservation oracle itself (census sums, in-system
//! accounting, no lost or double-counted run while draining) lives at
//! the engine level in `alc_tpsim::engine` tests; here we pin the
//! scenario-visible contract.

use std::path::PathBuf;

use alc_scenario::compile::RunPlan;
use alc_scenario::runner::{run_plan, RunRecord};
use alc_scenario::LoadedSpec;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn quick_plan(name: &str) -> RunPlan {
    let path = scenarios_dir().join(format!("{name}.json"));
    let loaded = LoadedSpec::read(&path).expect("read spec");
    loaded.compile(true).expect("compile quick")
}

/// Runs every cell through its own single-job `run_plan` call: with one
/// job the rayon shim stays on the calling thread, so this is the
/// serial, thread-count-independent reference execution.
fn run_serial(plan: &RunPlan) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for v in &plan.variants {
        let sub = RunPlan {
            variants: vec![v.clone()],
            ..plan.clone()
        };
        records.extend(run_plan(&sub));
    }
    records
}

fn assert_same_records(a: &[RunRecord], b: &[RunRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: record count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label, "{what}: order");
        assert_eq!(x.seed, y.seed, "{what}: seed");
        assert_eq!(x.stats, y.stats, "{what}: stats of `{}`", x.label);
    }
}

#[test]
fn cc_switch_scenario_is_deterministic_and_conserves_work() {
    let plan = quick_plan("cc-switch");
    assert_eq!(
        plan.variants[0].cc_switches.len(),
        2,
        "the spec schedules two switches after t=0"
    );
    let a = run_plan(&plan);
    let b = run_plan(&plan);
    assert_same_records(&a, &b, "rerun");
    let serial = run_serial(&plan);
    assert_same_records(&a, &serial, "parallel vs serial");
    // The run must commit meaningfully under all three protocols: the
    // quick horizon splits 5s/5s/5s, so a wedged drain would crater the
    // total.
    let stats = &a[0].stats;
    assert!(stats.commits > 100, "only {} commits", stats.commits);
    // No run lost or double-counted: the published abort ratio must be
    // exactly the counters' ratio (a drain bug would skew one of them).
    let expect = stats.aborts as f64 / (stats.commits + stats.aborts) as f64;
    assert_eq!(stats.abort_ratio, expect, "finished-run counters diverged");
}

#[test]
fn fault_scenario_is_deterministic_across_reruns_and_thread_counts() {
    let plan = quick_plan("fault-outage");
    assert_eq!(
        plan.variants[0].faults,
        vec![(6_000.0, -2), (11_000.0, 2)],
        "the fault window lowers to a kill/restart delta pair"
    );
    let a = run_plan(&plan);
    let b = run_plan(&plan);
    assert_same_records(&a, &b, "rerun");
    let serial = run_serial(&plan);
    assert_same_records(&a, &serial, "parallel vs serial");
    assert!(a[0].stats.commits > 50, "outage run starved");
}

/// The acceptance pin for closed-loop CC selection: the checked-in
/// `adaptive-cc` spec must *demonstrably switch protocol* in response to
/// its hotspot ramp — escalating certification → 2PL as the ramp drives
/// the conflict ratio across the band and de-escalating once it cools —
/// with every decision visible in the switch-event trace, the dwell
/// guard respected, the counters conserved, and the whole run
/// deterministic across reruns and thread counts.
#[test]
fn adaptive_cc_scenario_switches_on_the_hotspot_ramp() {
    let plan = quick_plan("adaptive-cc");
    let ad = plan.variants[0]
        .adaptive_cc
        .as_ref()
        .expect("adaptive section");
    assert_eq!(ad.candidates.len(), 2);
    let a = run_plan(&plan);
    let b = run_plan(&plan);
    assert_same_records(&a, &b, "rerun");
    let serial = run_serial(&plan);
    assert_same_records(&a, &serial, "parallel vs serial");

    let traj = a[0].trajectories.as_ref().expect("derived columns retain");
    let switches = &traj.switches;
    assert!(
        switches.len() >= 2,
        "the hotspot ramp must force an escalation and a return, saw {switches:?}"
    );
    use alc_tpsim::config::CcKind;
    assert_eq!(switches[0].from, CcKind::Certification);
    assert_eq!(switches[0].to, CcKind::TwoPhaseLocking);
    assert_eq!(switches[1].from, CcKind::TwoPhaseLocking);
    assert_eq!(switches[1].to, CcKind::Certification);
    // Determinism of the trace itself.
    assert_eq!(switches, &b[0].trajectories.as_ref().unwrap().switches);
    // The dwell guard: no two decisions closer than min_dwell_s.
    for w in switches.windows(2) {
        assert!(
            w[1].decided_at_ms - w[0].decided_at_ms >= ad.min_dwell_s * 1000.0 - 1e-9,
            "decisions at {} and {} violate min_dwell",
            w[0].decided_at_ms,
            w[1].decided_at_ms
        );
    }
    // Conservation across policy-driven switches: the published ratio is
    // exactly the counters' ratio (a drain bug would skew one of them).
    let stats = &a[0].stats;
    assert!(stats.commits > 200, "adaptive run starved");
    let expect = stats.aborts as f64 / (stats.commits + stats.aborts) as f64;
    assert_eq!(stats.abort_ratio, expect, "finished-run counters diverged");
}

/// Both storm variants (restart-rate ladder, shadow scoring) switch at
/// least once under the arrival burst and stay deterministic.
#[test]
fn adaptive_storm_variants_switch_and_are_deterministic() {
    let plan = quick_plan("adaptive-cc-storm");
    let a = run_plan(&plan);
    let b = run_plan(&plan);
    assert_same_records(&a, &b, "rerun");
    for rec in &a {
        let switches = &rec.trajectories.as_ref().expect("retained").switches;
        assert!(
            !switches.is_empty(),
            "variant `{}` never switched",
            rec.label
        );
        assert!(rec.stats.commits > 100, "variant `{}` starved", rec.label);
    }
}

/// The hysteresis/dwell ablation reproduces the oscillation pathology:
/// the guardless cell flaps an order of magnitude more than the fully
/// guarded one, and guards are monotone (more guard, fewer switches).
#[test]
fn ablation_guards_suppress_protocol_flapping() {
    let plan = quick_plan("adaptive-cc-ablation");
    assert_eq!(plan.variants.len(), 9, "3 hysteresis x 3 dwell grid");
    let records = run_plan(&plan);
    let count = |label: &str| -> usize {
        records
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("missing cell {label}"))
            .trajectories
            .as_ref()
            .expect("retained")
            .switches
            .len()
    };
    let flapping = count("h0_d0");
    let guarded = count("h0.4_d-long");
    assert!(
        flapping >= 10 * guarded.max(1),
        "guards did not suppress oscillation: guardless {flapping} vs guarded {guarded}"
    );
    // Each guard alone already helps.
    assert!(count("h0_d-long") < flapping, "dwell alone failed to help");
    assert!(count("h0.4_d0") < flapping, "hysteresis alone failed to help");
}

#[test]
fn sweep_grid_is_deterministic_across_thread_counts() {
    // 12 cells: enough to span multiple rayon chunks on any machine.
    let plan = quick_plan("sweep-load");
    assert_eq!(plan.variants.len(), 12);
    let parallel = run_plan(&plan);
    let serial = run_serial(&plan);
    assert_same_records(&parallel, &serial, "sweep parallel vs serial");
}
