//! Conformance pin: the checked-in gate logs under `scenarios/traces/`
//! must replay byte-identically through the `alc-runtime` control core.
//!
//! The logs were captured by `scenario run --quick --gate-log` from the
//! checked-in specs, so each test rebuilds the variant's controller from
//! its spec exactly as the runner did and feeds the recorded event
//! stream through the runtime's `LoopCore`. The decision sequences must
//! match byte-for-byte — this is the contract that makes the simulator
//! the runtime's acceptance harness: any drift in the sampler, the
//! controllers, the telemetry window, or the JSONL format snaps a pin.
//!
//! A third test closes the capture→replay loop live: it runs a fresh
//! quick-scale scenario with gate logging into a temp dir and replays
//! the log it just wrote, proving the pin isn't an artifact of stale
//! fixtures.

use std::path::{Path, PathBuf};

use alc_scenario::conformance::replay_log;
use alc_scenario::runner::{gate_log_file_name, run_plan_logged, GateLogRequest};
use alc_scenario::LoadedSpec;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn assert_replays(spec: &Path, log: &Path) {
    let spec = LoadedSpec::read(spec).expect("read spec");
    let outcome = replay_log(&spec, log).expect("replay");
    assert!(
        outcome.decisions > 0,
        "{}: a conformance pin over zero decisions proves nothing",
        log.display()
    );
    if let Some(at) = outcome.conformance.first_divergence {
        let (rec, rep) = outcome.conformance.decision_lines();
        panic!(
            "{} diverges at decision {at}:\n  recorded: {}\n  replayed: {}",
            log.display(),
            rec.get(at).map_or("<missing>", String::as_str),
            rep.get(at).map_or("<missing>", String::as_str)
        );
    }
}

#[test]
fn fig13_trace_replays_byte_identically() {
    let root = repo_root();
    assert_replays(
        &root.join("scenarios/fig13.json"),
        &root.join("scenarios/traces/fig13_gatelog.jsonl"),
    );
}

#[test]
fn sinus_traces_replay_byte_identically_for_both_controllers() {
    let root = repo_root();
    let spec = root.join("scenarios/sinus.json");
    assert_replays(&spec, &root.join("scenarios/traces/sinus_IS_gatelog.jsonl"));
    assert_replays(&spec, &root.join("scenarios/traces/sinus_PA_gatelog.jsonl"));
}

/// The retry-storm trace pins the retry-budget gate: its spec names the
/// `retry_budget` controller, so `replay_log` rebuilds the decision
/// function from the *runtime's* `RetryBudgetLaw` rather than the
/// simulator's controller. A byte-identical replay therefore proves the
/// two implementations are the same decision function — shed-retry
/// admission refusals stay invisible to the sampler on both sides, and
/// the storm's cut/rebuild arc reproduces exactly.
#[test]
fn retry_storm_trace_replays_byte_identically_through_the_runtime_law() {
    let root = repo_root();
    assert_replays(
        &root.join("scenarios/retry-storm.json"),
        &root.join("scenarios/traces/retry-storm_gatelog.jsonl"),
    );
}

#[test]
fn freshly_captured_logs_replay_byte_identically() {
    let root = repo_root();
    let spec_path = root.join("scenarios/fig13.json");
    let spec = LoadedSpec::read(&spec_path).expect("read spec");
    let plan = spec.compile(true).expect("compile quick");
    let dir = std::env::temp_dir().join("alc_gatelog_conformance_test");
    let _ = std::fs::remove_dir_all(&dir);
    let req = GateLogRequest {
        dir: dir.clone(),
        quick: true,
    };
    run_plan_logged(&plan, Some(&req)).expect("run with capture");
    let log = dir.join(gate_log_file_name(&plan, &plan.variants[0], 0));
    assert_replays(&spec_path, &log);
}
