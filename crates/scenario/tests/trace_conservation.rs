//! Span-conservation property tests for the lifecycle trace.
//!
//! Across random small systems — with and without client pools, with
//! and without capacity faults, under different admission controllers —
//! the trace emitted by a run must be *conservative*: every span that
//! opens closes exactly once (the horizon closes stragglers), every
//! admitted attempt ends in exactly one of commit / displaced / cancel,
//! and the span/instant tallies reconcile with the run's own report
//! counters ([`trace_cell`] checks the full identity list). The written
//! Chrome-trace JSON must parse, hold every counted event, and be
//! byte-identical across reruns — tracing must never perturb or be
//! perturbed by anything nondeterministic.

use alc_scenario::compile::RunPlan;
use alc_scenario::spec::{ColumnSpec, ControllerSpec, ScenarioSpec, StatColumn, WorkloadSpec};
use alc_scenario::trace::{trace_cell, trace_file_name, validate_trace_file};
use alc_tpsim::config::CcKind;
use alc_tpsim::{ClientConfig, LatencyFeedback, RetryPolicy};
use proptest::prelude::*;
use serde::{Serialize as _, Value};

fn arb_clients() -> impl Strategy<Value = ClientConfig> {
    (
        2u32..16,
        80.0..1_200.0f64,
        0u32..5,
        any::<bool>(),
        prop_oneof![
            (5.0..300.0f64).prop_map(|base_ms| RetryPolicy::Backoff {
                base_ms,
                factor: 2.0,
                max_ms: 2_000.0,
                jitter: 0.5,
            }),
            (10.0..600.0f64).prop_map(|delay_ms| RetryPolicy::Hedged { delay_ms }),
        ],
    )
        .prop_map(|(population, timeout_ms, max_retries, shed_retries, retry)| ClientConfig {
            population,
            timeout: alc_des::dist::Dist::constant(timeout_ms),
            max_retries,
            retry,
            shed_retries,
            feedback: LatencyFeedback::default(),
        })
}

fn arb_controller() -> impl Strategy<Value = ControllerSpec> {
    prop_oneof![
        Just(ControllerSpec::Unlimited),
        (2u32..24).prop_map(|bound| ControllerSpec::Fixed { bound }),
    ]
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        any::<u64>(),
        (2u64..5, 60u64..300, 50.0..400.0f64),
        prop_oneof![Just(None), arb_clients().prop_map(Some)],
        arb_controller(),
        any::<bool>(),
        0.0..2_000.0f64,
    )
        .prop_map(
            |(seed, (cpus, db_size, think_ms), clients, controller, fault, warmup_ms)| {
                ScenarioSpec {
                    name: "trace-conservation".to_string(),
                    description: "generated trace-conservation spec".to_string(),
                    seed,
                    replications: 1,
                    horizon_ms: 5_000.0,
                    cc: CcKind::Certification,
                    cc_phases: Vec::new(),
                    cc_adaptive: None,
                    faults: if fault {
                        vec![alc_scenario::spec::FaultSpec {
                            at_ms: 1_500.0,
                            recovery: alc_scenario::spec::FaultRecovery::Fixed(2_000.0),
                            cpus_down: 1,
                        }]
                    } else {
                        Vec::new()
                    },
                    clients,
                    system: vec![
                        ("cpus".to_string(), Value::U64(cpus)),
                        ("db_size".to_string(), Value::U64(db_size)),
                        (
                            "think".to_string(),
                            Value::Map(vec![(
                                "Exponential".to_string(),
                                Value::Map(vec![("mean".to_string(), Value::Num(think_ms))]),
                            )]),
                        ),
                    ],
                    control: vec![
                        ("sample_interval_ms".to_string(), Value::Num(500.0)),
                        ("warmup_ms".to_string(), Value::Num(warmup_ms)),
                    ],
                    workload: WorkloadSpec {
                        k: alc_scenario::profile::Profile::Constant(6.0),
                        ..WorkloadSpec::default()
                    },
                    controller,
                    record_optimum: false,
                    trajectories: false,
                    label_header: "variant".to_string(),
                    columns: vec![ColumnSpec::Stat(StatColumn::ThroughputPerS)],
                    variants: Vec::new(),
                    sweep: None,
                    inputs: Vec::new(),
                    label_from: None,
                    quick: Vec::new(),
                }
            },
        )
}

fn compile(spec: &ScenarioSpec) -> RunPlan {
    let tree = spec.to_value();
    alc_scenario::compile::compile_value(&tree, std::path::Path::new("."), false)
        .expect("generated spec compiles")
}

fn case_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("alc_trace_prop_{}_{tag}", std::process::id()))
}

proptest! {
    // Each case runs two full traced simulations (for the byte-identity
    // rerun); a modest case count still crosses clients × faults ×
    // warmup × controller because each axis is an independent draw.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_trace_balances_reconciles_and_reruns_identically(spec in arb_spec()) {
        let plan = compile(&spec);
        let v = &plan.variants[0];
        let (dir_a, dir_b) = (case_dir("a"), case_dir("b"));
        let a = trace_cell(&plan, v, 0, &dir_a).expect("traced run");
        prop_assert!(a.unbalanced.is_none(), "unbalanced span: {:?}", a.unbalanced);
        prop_assert_eq!(a.span_begins, a.span_ends, "span begin/end totals differ");
        for check in &a.checks {
            prop_assert!(
                check.ok(),
                "identity `{}` broke: report {} vs trace {}",
                check.what, check.report, check.trace
            );
        }
        let file_a = dir_a.join(trace_file_name(&plan, v, 0));
        let parsed = validate_trace_file(&file_a).expect("trace file parses");
        prop_assert_eq!(parsed, a.events, "file event count vs counting sink");

        let b = trace_cell(&plan, v, 0, &dir_b).expect("traced rerun");
        let bytes_a = std::fs::read(&file_a).expect("read first trace");
        let bytes_b =
            std::fs::read(dir_b.join(trace_file_name(&plan, v, 0))).expect("read second trace");
        prop_assert_eq!(a.events, b.events, "rerun event count");
        prop_assert!(bytes_a == bytes_b, "rerun is not byte-identical");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
